//! Quickstart: define a kernel, run it on the hand-designed General
//! Overlay, and print compile / run / reconfigure costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use overgen::{workloads, Overlay};
use overgen_ir::{expr, DataType, KernelBuilder, Suite};

fn main() {
    // 1. The paper's General Overlay: 4 tiles of a 24-PE full-capability
    //    mesh on a VCU118.
    let overlay = Overlay::general();
    println!("General overlay @ {:.1} MHz", overlay.fmax_mhz());
    println!("{}\n", overlay.summary());

    // 2. A custom kernel through the decoupled-spatial compiler: the
    //    Figure 2 vector addition.
    let n = 1 << 16;
    let vecadd = KernelBuilder::new("my-vecadd", Suite::Dsp, DataType::I64)
        .array_input("a", n)
        .array_input("b", n)
        .array_output("c", n)
        .loop_const("i", n)
        .assign(
            "c",
            expr::idx("i"),
            expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
        )
        .build()
        .expect("vecadd is a valid kernel");

    let app = overlay.compile(&vecadd).expect("maps onto the overlay");
    let report = overlay.execute(&app);
    println!(
        "my-vecadd: compiled in {:.2} s (modelled), unroll {}, {} cycles, IPC {:.1}",
        app.compile_seconds,
        app.mdfg.unroll(),
        report.cycles,
        report.ipc
    );
    println!(
        "run time {:.3} ms; overlay reconfiguration {:.1} us (FPGA reflash: ~1.1 s)",
        overlay.run_seconds(&app) * 1e3,
        overlay.reconfig_seconds(&app) * 1e6
    );

    // 3. A paper workload on the same hardware, seconds apart — the whole
    //    point of an overlay.
    let fir = workloads::by_name("fir").expect("fir is a paper workload");
    let fir_app = overlay.compile(&fir).expect("fir maps");
    println!(
        "\nswapped to fir without synthesis: {:.3} ms per run",
        overlay.run_seconds(&fir_app) * 1e3
    );
}
