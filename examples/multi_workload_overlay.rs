//! Generate one overlay for the whole MachSuite domain, run every kernel
//! on it, and demonstrate the flexibility story: a workload the DSE never
//! saw still maps (with modest loss), compiling in seconds instead of
//! hours.
//!
//! ```sh
//! cargo run --release --example multi_workload_overlay
//! ```

use overgen::{generate, workloads, GenerateConfig};
use overgen_dse::DseConfig;
use overgen_ir::Suite;

fn main() {
    let domain = workloads::suite(Suite::MachSuite);
    let held_out = "ellpack";
    let training: Vec<_> = domain
        .iter()
        .filter(|k| k.name() != held_out)
        .cloned()
        .collect();

    println!(
        "generating a MachSuite overlay from {} kernels (holding out `{held_out}`) ...",
        training.len()
    );
    let overlay = generate(
        &training,
        &GenerateConfig {
            dse: DseConfig {
                iterations: 60,
                seed: 11,
                ..Default::default()
            },
        },
    );
    println!("chosen system: {:?}", overlay.sys_adg.sys);
    println!("{}\n", overlay.summary());

    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "kernel", "run (ms)", "unroll", "compile (s)"
    );
    for k in &domain {
        match overlay.compile(k) {
            Ok(app) => {
                let seen = if k.name() == held_out {
                    " (unseen!)"
                } else {
                    ""
                };
                println!(
                    "{:<12} {:>12.4} {:>10} {:>12.2}{seen}",
                    k.name(),
                    overlay.run_seconds(&app) * 1e3,
                    app.mdfg.unroll(),
                    app.compile_seconds,
                );
            }
            Err(e) => println!("{:<12} does not map: {e}", k.name()),
        }
    }

    let app = overlay
        .compile(&workloads::by_name(held_out).expect("exists"))
        .expect("held-out kernel still maps (overlay flexibility)");
    println!(
        "\n`{held_out}` was never seen by the DSE, yet deploys in {:.2} s with a {:.1} us \
         reconfiguration — that is the overlay-vs-HLS usability gap the paper measures.",
        app.compile_seconds,
        overlay.reconfig_seconds(&app) * 1e6
    );
}
