//! Train the MLP FPGA-resource model against the synthesis oracle
//! (paper §V-D / Table I, scaled down) and compare its predictions with the
//! analytic ground truth on the General Overlay's components.
//!
//! ```sh
//! cargo run --release --example resource_model
//! ```

use overgen_adg::{mesh, MeshSpec};
use overgen_model::dataset::MlpResourceModel;
use overgen_model::{features_of, AnalyticModel, ComponentKind, ResourceModel};

fn main() {
    println!("training per-class MLPs on oracle-synthesized datasets ...");
    let model = MlpResourceModel::train_default(42);
    for kind in ComponentKind::ALL {
        let r = model.report(kind).expect("trained");
        println!(
            "  {kind:<20} {} samples  train {:.1}%  val {:.1}%  test {:.1}% rel. err \
             (paper dataset: {} samples)",
            r.samples,
            r.train_rel_err * 100.0,
            r.val_rel_err * 100.0,
            r.test_rel_err * 100.0,
            kind.paper_sample_count(),
        );
    }

    let adg = mesh(&MeshSpec::general());
    let analytic = AnalyticModel;
    let mut mlp_total = 0.0;
    let mut true_total = 0.0;
    for (id, _) in adg.nodes() {
        if let Some(f) = features_of(&adg, id) {
            mlp_total += model.component(&f).lut;
            true_total += analytic.component(&f).lut;
        }
    }
    println!(
        "\nGeneral-overlay accelerator LUTs: MLP predicts {:.0}, analytic truth {:.0} \
         ({:+.1}% — the paper's model is likewise pessimistic by design)",
        mlp_total,
        true_total,
        100.0 * (mlp_total - true_total) / true_total
    );
}
