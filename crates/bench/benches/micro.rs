//! Criterion micro-benchmarks over the hot kernels of every experiment:
//! compilation, spatial scheduling, schedule repair, cycle-level
//! simulation, the MLP resource model, the AutoDSE explorer, and one full
//! DSE iteration cycle.

// Gated: requires the `criterion-bench` feature AND restoring the criterion
// dev-dependency in crates/bench/Cargo.toml (removed for offline builds).
#[cfg(feature = "criterion-bench")]
mod benches {
    use criterion::{criterion_group, Criterion};

    use overgen::Overlay;
    use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
    use overgen_compiler::{compile_variants, lower, CompileOptions, LowerChoices};
    use overgen_dse::{Dse, DseConfig};
    use overgen_hls::{explore, AutoDseConfig};
    use overgen_model::dataset::{generate, MlpResourceModel};
    use overgen_model::ComponentKind;
    use overgen_scheduler::{repair, schedule};
    use overgen_sim::{simulate, SimConfig};
    use overgen_workloads as workloads;

    fn bench_compile(c: &mut Criterion) {
        let fir = workloads::by_name("fir").unwrap();
        c.bench_function("compile_variants/fir", |b| {
            b.iter(|| compile_variants(&fir, &CompileOptions::default()).unwrap())
        });
        let stencil = workloads::by_name("stencil-2d").unwrap();
        c.bench_function("compile_variants/stencil-2d", |b| {
            b.iter(|| compile_variants(&stencil, &CompileOptions::default()).unwrap())
        });
    }

    fn bench_schedule(c: &mut Criterion) {
        let fir = workloads::by_name("fir").unwrap();
        let mdfg = lower(
            &fir,
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        c.bench_function("schedule/fir_u4_on_general", |b| {
            b.iter(|| schedule(&mdfg, &sys, None).unwrap())
        });
        let prior = schedule(&mdfg, &sys, None).unwrap();
        c.bench_function("repair/fir_u4_intact", |b| {
            b.iter(|| repair(&prior, &mdfg, &sys).unwrap())
        });
    }

    fn bench_simulate(c: &mut Criterion) {
        let overlay = Overlay::general();
        let app = overlay.compile(&workloads::by_name("mm").unwrap()).unwrap();
        c.bench_function("simulate/mm_on_general", |b| {
            b.iter(|| {
                simulate(
                    &app.mdfg,
                    &app.schedule,
                    &overlay.sys_adg,
                    &SimConfig::default(),
                )
            })
        });
    }

    fn bench_models(c: &mut Criterion) {
        c.bench_function("oracle/generate_200_switches", |b| {
            b.iter(|| generate(ComponentKind::Switch, 200, 1))
        });
        let model = MlpResourceModel::train_default(3);
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let feats: Vec<_> = sys
            .adg
            .nodes()
            .filter_map(|(id, _)| overgen_model::features_of(&sys.adg, id))
            .collect();
        c.bench_function("mlp/infer_general_overlay", |b| {
            b.iter(|| {
                use overgen_model::ResourceModel;
                feats.iter().map(|f| model.component(f).lut).sum::<f64>()
            })
        });
    }

    fn bench_hls(c: &mut Criterion) {
        let mm = workloads::by_name("mm").unwrap();
        c.bench_function("autodse/mm", |b| {
            b.iter(|| explore(&mm, &AutoDseConfig::default()))
        });
    }

    fn bench_dse(c: &mut Criterion) {
        let domain = vec![workloads::by_name("fir").unwrap()];
        c.bench_function("dse/fir_5_iterations", |b| {
            b.iter(|| {
                Dse::new(
                    domain.clone(),
                    DseConfig {
                        iterations: 5,
                        compile: CompileOptions {
                            max_unroll: 4,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                )
                .run()
                .unwrap()
            })
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = bench_compile, bench_schedule, bench_simulate, bench_models, bench_hls, bench_dse
    }
}

#[cfg(feature = "criterion-bench")]
fn main() {
    benches::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    eprintln!(
        "micro benchmarks are gated behind the `criterion-bench` feature; \
         see crates/bench/Cargo.toml"
    );
}
