//! Trace exporters behind the `overgen-profile` binary.
//!
//! Converts a deterministic (or wall-clock) JSONL telemetry trace into
//! two downstream-friendly forms:
//!
//! - [`chrome_trace`] — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto): every span becomes a complete `"X"` event, every plain
//!   event an instant `"i"` marker;
//! - [`phase_table`] — a flame-style text table: span aggregates grouped
//!   by nesting depth, indented so callers read above callees, with
//!   share-of-root attribution.
//!
//! Both outputs are fully determined by the input trace — rendering the
//! same trace twice yields byte-identical text, which is what lets
//! `scripts/check.sh profile` golden-diff the table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use overgen_telemetry::json::{self, Obj, Value};

/// One parsed trace line we care about (metrics snapshots are skipped by
/// the exporters; `trace-summary` renders those).
enum Line {
    Span {
        name: String,
        depth: u64,
        start: u64,
        dur: u64,
    },
    Event {
        kind: String,
        t: u64,
    },
}

/// Parse the JSONL text into exporter lines. Malformed lines and metrics
/// snapshots are counted, not fatal — a truncated trace should still
/// render what it has.
fn parse_lines(text: &str) -> (Vec<Line>, u64) {
    let mut out = Vec::new();
    let mut skipped = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(v) = json::parse(line) else {
            skipped += 1;
            continue;
        };
        match v.get("type").and_then(Value::as_str) {
            Some("span") => {
                let name = v
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                out.push(Line::Span {
                    name,
                    depth: v.get("depth").and_then(Value::as_u64).unwrap_or(0),
                    start: v.get("start").and_then(Value::as_u64).unwrap_or(0),
                    dur: v.get("dur").and_then(Value::as_u64).unwrap_or(0),
                });
            }
            Some("metrics") => skipped += 1,
            Some(kind) => out.push(Line::Event {
                kind: kind.to_string(),
                t: v.get("t").and_then(Value::as_u64).unwrap_or(0),
            }),
            None => skipped += 1,
        }
    }
    (out, skipped)
}

/// Render the trace as Chrome trace-event JSON (the object form, so a
/// `displayTimeUnit` can ride along). Spans become complete (`"X"`)
/// events; other events become instant (`"i"`) markers. Timestamps are
/// passed through in the trace's own clock — microseconds for wall-clock
/// traces, logical ticks for deterministic ones.
pub fn chrome_trace(text: &str) -> String {
    let (lines, _) = parse_lines(text);
    let events: Vec<String> = lines
        .iter()
        .map(|l| match l {
            Line::Span {
                name,
                depth,
                start,
                dur,
            } => Obj::new()
                .str("name", name)
                .str("cat", "span")
                .str("ph", "X")
                .u64("ts", *start)
                .u64("dur", *dur)
                .u64("pid", 0)
                .u64("tid", 0)
                .raw("args", &Obj::new().u64("depth", *depth).finish())
                .finish(),
            Line::Event { kind, t } => Obj::new()
                .str("name", kind)
                .str("cat", "event")
                .str("ph", "i")
                .str("s", "t")
                .u64("ts", *t)
                .u64("pid", 0)
                .u64("tid", 0)
                .finish(),
        })
        .collect();
    Obj::new()
        .str("displayTimeUnit", "ms")
        .raw("traceEvents", &format!("[{}]", events.join(",")))
        .finish()
}

#[derive(Default)]
struct Agg {
    count: u64,
    total: u64,
    max: u64,
}

/// Render a flame-style phase table: span aggregates keyed by
/// `(depth, name)`, ordered depth-first (callers above callees), within a
/// depth by total descending then name. `share` is relative to the total
/// of depth-0 spans; nested spans overlap their parents, so deeper rows
/// can sum past 100%.
pub fn phase_table(text: &str) -> String {
    let (lines, skipped) = parse_lines(text);
    let mut aggs: BTreeMap<(u64, String), Agg> = BTreeMap::new();
    let mut events = 0u64;
    for l in &lines {
        match l {
            Line::Span {
                name, depth, dur, ..
            } => {
                let a = aggs.entry((*depth, name.clone())).or_default();
                a.count += 1;
                a.total += dur;
                a.max = a.max.max(*dur);
            }
            Line::Event { .. } => events += 1,
        }
    }
    let root_total: u64 = aggs
        .iter()
        .filter(|((d, _), _)| *d == 0)
        .map(|(_, a)| a.total)
        .sum();

    let mut rows: Vec<(&(u64, String), &Agg)> = aggs.iter().collect();
    rows.sort_by(|a, b| {
        (a.0 .0)
            .cmp(&b.0 .0)
            .then(b.1.total.cmp(&a.1.total))
            .then(a.0 .1.cmp(&b.0 .1))
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>8} {:>12} {:>12} {:>12} {:>7}",
        "phase", "count", "total", "mean", "max", "share"
    );
    for ((depth, name), a) in rows {
        let label = format!("{}{}", "  ".repeat(*depth as usize), name);
        let share = if root_total > 0 {
            100.0 * a.total as f64 / root_total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12} {:>12.1} {:>12} {:>6.1}%",
            label,
            a.count,
            a.total,
            a.total as f64 / a.count.max(1) as f64,
            a.max,
            share,
        );
    }
    let _ = writeln!(out, "\nevents: {events}  skipped-lines: {skipped}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"seq":0,"t":1,"type":"bench.run","experiment":"x"}"#,
        "\n",
        r#"{"seq":1,"t":2,"type":"span","name":"dse.run","depth":0,"start":2,"dur":100}"#,
        "\n",
        r#"{"seq":2,"t":3,"type":"span","name":"sched.place","depth":1,"start":3,"dur":40}"#,
        "\n",
        r#"{"seq":3,"t":4,"type":"span","name":"sched.place","depth":1,"start":50,"dur":20}"#,
        "\n",
        r#"{"seq":4,"t":5,"type":"metrics","metrics":{}}"#,
        "\n",
        "not json\n",
    );

    #[test]
    fn chrome_trace_round_trips_spans_and_events() {
        let out = chrome_trace(TRACE);
        let v = json::parse(&out).unwrap();
        let Some(Value::Arr(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents: {out}");
        };
        assert_eq!(events.len(), 4); // 1 instant + 3 spans
        let span = &events[1];
        assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(span.get("name").and_then(Value::as_str), Some("dse.run"));
        assert_eq!(span.get("ts").and_then(Value::as_u64), Some(2));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(100));
        let instant = &events[0];
        assert_eq!(instant.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(
            instant.get("name").and_then(Value::as_str),
            Some("bench.run")
        );
    }

    #[test]
    fn phase_table_orders_by_depth_then_total() {
        let table = phase_table(TRACE);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].starts_with("dse.run"), "{table}");
        assert!(lines[2].starts_with("  sched.place"), "{table}");
        // 2 calls totalling 60 ticks = 60% of the 100-tick root.
        assert!(lines[2].contains("60.0%"), "{table}");
        assert!(table.contains("events: 1"), "{table}");
        // metrics line + malformed line are skipped, not fatal.
        assert!(table.contains("skipped-lines: 2"), "{table}");
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(phase_table(TRACE), phase_table(TRACE));
        assert_eq!(chrome_trace(TRACE), chrome_trace(TRACE));
    }

    #[test]
    fn empty_trace_renders_without_root() {
        let table = phase_table("");
        assert!(table.contains("events: 0"));
        let out = chrome_trace("");
        let v = json::parse(&out).unwrap();
        assert!(matches!(v.get("traceEvents"), Some(Value::Arr(a)) if a.is_empty()));
    }
}
