//! Minimal aligned text tables for experiment output.

use std::fmt;

/// A column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:width$}", c, width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a ratio like the paper ("1.21x", "0.55x").
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["fir", "1.21x"]);
        t.row(["cholesky-long", "0.5x"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.to_string().contains('1'));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(1.214), "1.21x");
    }
}
