//! Figure 19 (Q7): effect of DRAM channel count — speedup of 2- and
//! 4-channel configurations over single-channel, for both AutoDSE and the
//! OverGen workload overlays (the paper runs this part in RTL simulation).

use overgen_adg::SysAdg;
use overgen_sim::SimConfig;
use overgen_workloads as workloads;

use crate::harness::{autodse, og_seconds_with, workload_overlay};
use crate::table::{ratio, Table};

/// One workload's channel sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// AutoDSE speedups for [2, 4] channels over 1.
    pub autodse: [f64; 2],
    /// OverGen workload-overlay speedups for [2, 4] channels over 1.
    pub overgen: [Option<f64>; 2],
}

/// Run the sweep for all 19 workloads.
pub fn run() -> Vec<Row> {
    workloads::all()
        .iter()
        .map(|k| {
            let name = k.name().to_string();
            let a1 = autodse(&name, false, 1).expect("runs").best.seconds;
            let a2 = autodse(&name, false, 2).expect("runs").best.seconds;
            let a4 = autodse(&name, false, 4).expect("runs").best.seconds;

            let overlay = workload_overlay(k);
            let og_at = |channels: u32| -> Option<f64> {
                // Same overlay hardware, more DRAM channels at run time.
                let mut o = overlay.clone();
                o.sys_adg = SysAdg::new(
                    o.sys_adg.adg.clone(),
                    overgen_adg::SystemParams {
                        dram_channels: channels,
                        ..o.sys_adg.sys
                    },
                );
                og_seconds_with(&o, &name, true, &SimConfig::default())
            };
            let o1 = og_at(1);
            let o2 = og_at(2);
            let o4 = og_at(4);
            let spd = |base: Option<f64>, x: Option<f64>| match (base, x) {
                (Some(b), Some(v)) => Some(b / v),
                _ => None,
            };
            Row {
                name,
                autodse: [a1 / a2, a1 / a4],
                overgen: [spd(o1, o2), spd(o1, o4)],
            }
        })
        .collect()
}

/// Render.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["workload", "ad-2", "ad-4", "og-2", "og-4"]);
    let f = |v: Option<f64>| v.map(ratio).unwrap_or_else(|| "-".into());
    let mut ad_gain = Vec::new();
    let mut og_gain = Vec::new();
    for r in rows {
        t.row([
            r.name.clone(),
            ratio(r.autodse[0]),
            ratio(r.autodse[1]),
            f(r.overgen[0]),
            f(r.overgen[1]),
        ]);
        ad_gain.push(r.autodse[1]);
        if let Some(g) = r.overgen[1] {
            og_gain.push(g);
        }
    }
    format!(
        "Figure 19: Effects of DRAM channels (speedup over 1 channel)\n\n{t}\n\
         mean 4-channel gains: AutoDSE {:.0}% (paper ~25%), OverGen {:.0}% (paper ~19%)\n",
        (crate::harness::geomean(&ad_gain) - 1.0) * 100.0,
        (crate::harness::geomean(&og_gain) - 1.0) * 100.0,
    )
}
