//! Table III: specification of suite-specific overlays — the system and
//! accelerator parameters the DSE chose per suite, next to the paper's.

use overgen_adg::AdgSummary;
use overgen_ir::Suite;

use crate::harness::suite_overlay;
use crate::table::Table;

/// One suite's generated specification.
#[derive(Debug, Clone)]
pub struct Column {
    /// Suite.
    pub suite: Suite,
    /// Chosen system parameters.
    pub tiles: u32,
    /// L2 banks.
    pub l2_banks: u32,
    /// NoC bandwidth (bytes).
    pub noc_bw: u32,
    /// Accelerator summary.
    pub accel: AdgSummary,
}

/// Generate the three suite overlays and summarise them.
pub fn run() -> Vec<Column> {
    Suite::ALL
        .into_iter()
        .map(|suite| {
            let overlay = suite_overlay(suite);
            Column {
                suite,
                tiles: overlay.sys_adg.sys.tiles,
                l2_banks: overlay.sys_adg.sys.l2_banks,
                noc_bw: overlay.sys_adg.sys.noc_bw_bytes,
                accel: overlay.summary(),
            }
        })
        .collect()
}

/// Render the table (rows = spec fields, columns = suites, as the paper).
pub fn render(cols: &[Column]) -> String {
    let mut t = Table::new(
        std::iter::once("Spec.".to_string())
            .chain(cols.iter().map(|c| c.suite.to_string()))
            .chain(std::iter::once("paper (Mach/Vitis/DSP)".to_string())),
    );
    let field = |t: &mut Table, name: &str, f: &dyn Fn(&Column) -> String, paper: &str| {
        let mut row = vec![name.to_string()];
        row.extend(cols.iter().map(f));
        row.push(paper.to_string());
        t.row(row);
    };
    field(&mut t, "Tile Count", &|c| c.tiles.to_string(), "10/13/7");
    field(&mut t, "L2 #Bank", &|c| c.l2_banks.to_string(), "16/16/8");
    field(
        &mut t,
        "NoC B/W (Byte)",
        &|c| c.noc_bw.to_string(),
        "64/64/64",
    );
    field(&mut t, "PEs", &|c| c.accel.pes.to_string(), "20/16/10");
    field(
        &mut t,
        "Switches",
        &|c| c.accel.switches.to_string(),
        "17/11/27",
    );
    field(
        &mut t,
        "Avg. Radix",
        &|c| format!("{:.2}", c.accel.avg_switch_radix),
        "2.9/2.61/2.85",
    );
    field(
        &mut t,
        "Int +/x/÷",
        &|c| {
            format!(
                "{}/{}/{}",
                c.accel.int_add, c.accel.int_mul, c.accel.int_div
            )
        },
        "16,14,0 | 16,15,13 | 0,0,0",
    );
    field(
        &mut t,
        "Flt +/x/÷/sqrt",
        &|c| {
            format!(
                "{}/{}/{}/{}",
                c.accel.flt_add, c.accel.flt_mul, c.accel.flt_div, c.accel.flt_sqrt
            )
        },
        "4,4,0,0 | 0,0,0,0 | 6,6,5,2",
    );
    field(
        &mut t,
        "Spad Cap (KB)",
        &|c| {
            if c.accel.spad_caps_kb.is_empty() {
                "-".into()
            } else {
                c.accel
                    .spad_caps_kb
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        },
        "64 | - | 8,32",
    );
    field(
        &mut t,
        "GEN/REC/REG",
        &|c| format!("{}/{}/{}", c.accel.gen, c.accel.rec, c.accel.reg),
        "0/0/0 | 0/0/0 | 0/1/0",
    );
    field(
        &mut t,
        "In Ports B/W (B)",
        &|c| c.accel.in_port_bw.to_string(),
        "160/112/152",
    );
    field(
        &mut t,
        "Out Ports B/W (B)",
        &|c| c.accel.out_port_bw.to_string(),
        "96/48/104",
    );
    format!("Table III: Specification of Suite Specific Overlays\n\n{t}")
}
