//! Table II: workload specification — size, datatype, and best-DFG shape
//! (#ivp, #ovp, #arr, and multiply/add/divide scalar-op counts).

use overgen_compiler::{compile_variants, CompileOptions};
use overgen_ir::{Op, Suite};
use overgen_mdfg::Mdfg;
use overgen_workloads as workloads;

use crate::table::Table;

/// One workload row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// Datatype label.
    pub dtype: String,
    /// Input value ports.
    pub ivp: usize,
    /// Output value ports.
    pub ovp: usize,
    /// Array nodes.
    pub arr: usize,
    /// Scalar multiply / add / divide-class ops in the best DFG.
    pub mad: (u32, u32, u32),
    /// Unroll of the best DFG.
    pub unroll: u32,
}

fn scalar_ops(m: &Mdfg, class: &[Op]) -> u32 {
    m.nodes()
        .filter_map(|(_, n)| n.as_inst())
        .filter(|i| class.contains(&i.op))
        .map(|i| i.lanes)
        .sum()
}

/// Run: compile every workload at its suite's Table II unroll and report
/// the best (widest scheduled-shape) DFG statistics.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for k in workloads::all() {
        let unroll = workloads::table_unroll(k.suite());
        let vs = compile_variants(
            &k,
            &CompileOptions {
                max_unroll: unroll,
                ..Default::default()
            },
        )
        .expect("workload compiles");
        let best = &vs[0];
        rows.push(Row {
            name: k.name().to_string(),
            suite: k.suite(),
            dtype: k.dtype().to_string(),
            ivp: best.input_stream_count(),
            ovp: best.output_stream_count(),
            arr: best.array_count(),
            mad: (
                scalar_ops(best, &[Op::Mul]),
                scalar_ops(best, &[Op::Add, Op::Sub, Op::Min, Op::Max]),
                scalar_ops(best, &[Op::Div, Op::Sqrt, Op::Shr, Op::Shl]),
            ),
            unroll: best.unroll(),
        });
    }
    rows
}

/// Render the table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new([
        "Workload", "Suite", "Type", "#ivp", "#ovp", "#arr", "#m,a,d", "unroll",
    ]);
    for r in rows {
        t.row([
            r.name.clone(),
            r.suite.to_string(),
            r.dtype.clone(),
            r.ivp.to_string(),
            r.ovp.to_string(),
            r.arr.to_string(),
            format!("{},{},{}", r.mad.0, r.mad.1, r.mad.2),
            r.unroll.to_string(),
        ]);
    }
    format!("Table II: Workload specification (best DFG per suite unroll)\n\n{t}")
}
