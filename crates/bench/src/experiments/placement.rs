//! Spatial placement sweep over tile counts (`BENCH_placement.json`).
//!
//! The placement model ([`overgen_model::placement`]) prices the axis the
//! scalar resource model cannot see: where tiles land on the VCU118's
//! clock-region/SLR grid, and what that does to the achievable clock
//! (§VI-D — the paper's quad-tile design closes at 92.87 MHz because of
//! multi-die congestion, not LUT count). This benchmark sweeps tile count
//! 1..=[`MAX_TILES`] for every paper workload on the general overlay,
//! places each point with [`SimpleGridPlacer`], and scores it as
//! estimated IPC scaled by the placed clock. Two invariants are recorded
//! for the CI gate:
//!
//! * **winner stability** — sweeping tile counts ascending and descending
//!   picks the same winner for every workload (the placement-aware score
//!   has no order-dependent ties);
//! * the congestion/wirelength medians, which pin the model's scale so a
//!   calibration change cannot slip through silently.

use std::time::Instant;

use overgen::Overlay;
use overgen_adg::{SysAdg, SystemParams};
use overgen_model::{
    accelerator_resources, estimate_ipc, AnalyticModel, ClockRegionGrid, PlacerKind,
};
use overgen_telemetry::{fs::write_atomic, json};
use overgen_workloads as workloads;

use crate::harness::{results_dir, seed};
use crate::table::Table;

/// Largest tile count the sweep considers (matches the system-DSE default).
const MAX_TILES: u32 = 8;

/// One workload's winning placement point.
#[derive(Debug, Clone)]
pub struct PlacementRow {
    pub name: String,
    /// Winning tile count (ascending sweep).
    pub tiles: u32,
    /// Clock regions per tile footprint at the winner.
    pub span: u32,
    /// NoC wirelength at the winner, in clock-region hops.
    pub wirelength: f64,
    /// Peak clock-region congestion at the winner.
    pub congestion: f64,
    /// SLR boundary crossings at the winner.
    pub slr_crossings: u64,
    /// Placed clock at the winner.
    pub fmax_mhz: f64,
    /// `ipc * fmax/100` at the winner.
    pub score: f64,
    /// Ascending and descending sweeps agree on the winner.
    pub winner_stable: bool,
    /// Wall-clock seconds for the whole sweep (all tile counts, both
    /// directions) — placement must stay negligible against scheduling.
    pub sweep_s: f64,
}

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct PlacementReportBench {
    pub rows: Vec<PlacementRow>,
    pub winner_stable_all: bool,
    pub median_congestion: f64,
    pub median_wirelength: f64,
    pub max_congestion: f64,
    pub mean_fmax_mhz: f64,
}

/// Score one tile count: place, then scale estimated IPC by the placed
/// clock against a 100 MHz base.
fn score_point(
    overlay: &Overlay,
    app: &overgen::CompiledApp,
    tile: &overgen_model::Resources,
    grid: &ClockRegionGrid,
    tiles: u32,
) -> (f64, overgen_model::PlacementReport) {
    let sys = SystemParams {
        tiles,
        ..overlay.sys_adg.sys
    };
    let sys_adg = SysAdg::new(overlay.sys_adg.adg.clone(), sys);
    let rep = PlacerKind::SimpleGrid.placer().place(&sys_adg, tile, grid);
    let spad_bw: f64 = overlay
        .sys_adg
        .adg
        .nodes()
        .filter_map(|(_, n)| n.as_spad().map(|sp| f64::from(sp.bw_bytes)))
        .sum();
    let est = estimate_ipc(&app.mdfg, &sys, spad_bw, &app.schedule.placement);
    (est.ipc * rep.fmax_mhz / 100.0, rep)
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

/// Run the sweep and write `results/BENCH_placement.json`.
pub fn run() -> PlacementReportBench {
    let overlay = Overlay::general();
    let grid = ClockRegionGrid::vcu118();
    let tile = accelerator_resources(&overlay.sys_adg.adg, &AnalyticModel);
    let mut rows = Vec::new();
    for k in workloads::all() {
        let app = overlay
            .compile(&k)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", k.name()));

        let t = Instant::now();
        let mut best: Option<(u32, f64, overgen_model::PlacementReport)> = None;
        for tiles in 1..=MAX_TILES {
            let (score, rep) = score_point(&overlay, &app, &tile, &grid, tiles);
            if best.as_ref().is_none_or(|(_, b, _)| score > *b) {
                best = Some((tiles, score, rep));
            }
        }
        let mut best_desc: Option<(u32, f64)> = None;
        for tiles in (1..=MAX_TILES).rev() {
            let (score, _) = score_point(&overlay, &app, &tile, &grid, tiles);
            if best_desc.as_ref().is_none_or(|(_, b)| score > *b) {
                best_desc = Some((tiles, score));
            }
        }
        let sweep_s = t.elapsed().as_secs_f64();

        let (tiles, score, rep) = best.expect("MAX_TILES >= 1");
        let winner_stable = best_desc.map(|(t, _)| t) == Some(tiles);
        rows.push(PlacementRow {
            name: k.name().to_string(),
            tiles,
            span: rep.span,
            wirelength: rep.wirelength,
            congestion: rep.congestion,
            slr_crossings: rep.slr_crossings,
            fmax_mhz: rep.fmax_mhz,
            score,
            winner_stable,
            sweep_s,
        });
    }

    let mut congestions: Vec<f64> = rows.iter().map(|r| r.congestion).collect();
    congestions.sort_by(f64::total_cmp);
    let mut wirelengths: Vec<f64> = rows.iter().map(|r| r.wirelength).collect();
    wirelengths.sort_by(f64::total_cmp);
    let report = PlacementReportBench {
        winner_stable_all: rows.iter().all(|r| r.winner_stable),
        median_congestion: median(&congestions),
        median_wirelength: median(&wirelengths),
        max_congestion: congestions.last().copied().unwrap_or(0.0),
        mean_fmax_mhz: rows.iter().map(|r| r.fmax_mhz).sum::<f64>() / rows.len().max(1) as f64,
        rows,
    };

    let workloads_json: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            json::Obj::new()
                .str("name", &r.name)
                .u64("tiles", u64::from(r.tiles))
                .u64("span", u64::from(r.span))
                .f64("wirelength", r.wirelength)
                .f64("congestion", r.congestion)
                .u64("slr_crossings", r.slr_crossings)
                .f64("fmax_mhz", r.fmax_mhz)
                .f64("score", r.score)
                .bool("winner_stable", r.winner_stable)
                .f64("sweep_seconds", r.sweep_s)
                .finish()
        })
        .collect();
    let summary = json::Obj::new()
        .u64("workloads", report.rows.len() as u64)
        .u64("winner_stable", u64::from(report.winner_stable_all))
        .f64("median_congestion", report.median_congestion)
        .f64("median_wirelength", report.median_wirelength)
        .f64("max_congestion", report.max_congestion)
        .f64("mean_fmax_mhz", report.mean_fmax_mhz)
        .finish();
    let grid_json = json::Obj::new()
        .str("placer", PlacerKind::SimpleGrid.name())
        .str("device", grid.device.name)
        .u64("cols", u64::from(grid.cols))
        .u64("rows", u64::from(grid.rows))
        .u64("rows_per_slr", u64::from(grid.rows_per_slr))
        .u64("max_tiles", u64::from(MAX_TILES))
        .finish();
    let record = json::Obj::new()
        .str("bench", "placement")
        .u64("seed", seed())
        .raw("grid", &grid_json)
        .raw("workloads", &format!("[{}]", workloads_json.join(",")))
        .raw("summary", &summary)
        .finish();
    let path = results_dir().join("BENCH_placement.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &PlacementReportBench) -> String {
    let mut t = Table::new([
        "workload",
        "tiles",
        "span",
        "wirelen",
        "congest",
        "slr xings",
        "fmax (MHz)",
        "score",
        "stable",
    ]);
    for row in &r.rows {
        t.row([
            row.name.clone(),
            row.tiles.to_string(),
            row.span.to_string(),
            format!("{:.0}", row.wirelength),
            format!("{:.2}", row.congestion),
            row.slr_crossings.to_string(),
            format!("{:.1}", row.fmax_mhz),
            format!("{:.2}", row.score),
            if row.winner_stable { "ok" } else { "UNSTABLE" }.into(),
        ]);
    }
    format!(
        "Spatial placement sweep: tile count vs placed clock on the VCU118 grid\n\n{t}\n\
         median congestion {:.2}, median wirelength {:.0}, mean fmax {:.1} MHz, winners {}\n\
         Record: results/BENCH_placement.json\n",
        r.median_congestion,
        r.median_wirelength,
        r.mean_fmax_mhz,
        if r.winner_stable_all {
            "stable in both sweep directions"
        } else {
            "UNSTABLE"
        },
    )
}
