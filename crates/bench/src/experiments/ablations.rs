//! Ablation studies beyond the paper's figures (called out in DESIGN.md):
//!
//! 1. the stream-table **one-hot bypass** (Figure 11's microarchitecture
//!    claim) measured end-to-end on real workloads;
//! 2. **reuse-aware array placement** vs. forcing every array through the
//!    DMA (the value of spatial memories, §IV);
//! 3. the **MLP resource model** vs. the analytic oracle mean on a real
//!    overlay's components.

use overgen::Overlay;
use overgen_model::dataset::MlpResourceModel;
use overgen_model::{estimate_ipc, features_of, AnalyticModel, Placement, ResourceModel};
use overgen_sim::SimConfig;
use overgen_workloads as workloads;

use crate::table::{ratio, Table};

/// One-hot bypass ablation: cycles without / with the bypass per workload
/// on the General Overlay.
pub fn one_hot_bypass() -> Table {
    let overlay = Overlay::general();
    let mut t = Table::new(["workload", "bypass off/on cycles"]);
    for k in workloads::all() {
        let Ok(app) = overlay.compile(&k) else {
            continue;
        };
        let on = overlay.execute_with(&app, &SimConfig::default());
        let off = overlay.execute_with(
            &app,
            &SimConfig {
                one_hot_bypass: false,
                ..Default::default()
            },
        );
        t.row([
            k.name().to_string(),
            ratio(off.cycles as f64 / on.cycles as f64),
        ]);
    }
    t
}

/// Reuse-aware placement ablation: estimated IPC with the scheduler's
/// placement vs. everything-through-DMA.
pub fn placement_value() -> Table {
    let overlay = Overlay::general();
    let mut t = Table::new(["workload", "placed ipc", "all-DMA ipc", "gain"]);
    for k in workloads::all() {
        let Ok(app) = overlay.compile(&k) else {
            continue;
        };
        let spad_bw: f64 = overlay
            .sys_adg
            .adg
            .nodes()
            .filter_map(|(_, n)| n.as_spad().map(|s| f64::from(s.bw_bytes)))
            .sum();
        let with = estimate_ipc(
            &app.mdfg,
            &overlay.sys_adg.sys,
            spad_bw,
            &app.schedule.placement,
        );
        let without = estimate_ipc(
            &app.mdfg,
            &overlay.sys_adg.sys,
            spad_bw,
            &Placement::default(),
        );
        t.row([
            k.name().to_string(),
            format!("{:.1}", with.ipc),
            format!("{:.1}", without.ipc),
            ratio(with.ipc / without.ipc.max(1e-9)),
        ]);
    }
    t
}

/// MLP vs. analytic resource model on the General Overlay's components.
pub fn mlp_vs_analytic() -> String {
    let model = MlpResourceModel::train_default(13);
    let overlay = Overlay::general();
    let mut mlp_lut = 0.0;
    let mut true_lut = 0.0;
    for (id, _) in overlay.sys_adg.adg.nodes() {
        if let Some(f) = features_of(&overlay.sys_adg.adg, id) {
            mlp_lut += model.component(&f).lut;
            true_lut += AnalyticModel.component(&f).lut;
        }
    }
    format!(
        "MLP predicts {:.0} accelerator LUTs vs analytic {:.0} ({:+.1}%)\n",
        mlp_lut,
        true_lut,
        100.0 * (mlp_lut - true_lut) / true_lut
    )
}
