//! Kill-and-resume checkpoint benchmark (`BENCH_checkpoint.json`).
//!
//! Three legs over the same domain and seed:
//!
//! 1. **Baseline** — a plain DSE run with checkpointing off, for the
//!    reference wall time and final result.
//! 2. **Checkpointed** — the identical run with periodic checkpoint writes
//!    at the default interval. The result must be bit-identical to the
//!    baseline (checkpoint writes are trace- and result-invisible), and
//!    the summed `dse.checkpoint.write_us` counter over the leg's wall
//!    time is the reported overhead — the acceptance gate is < 5%.
//! 3. **Kill + resume** — the same run again, but a
//!    [`overgen_dse::DseConfig::max_proposals`] budget stops it gracefully
//!    halfway, finalizing a checkpoint; the run is then resumed from that
//!    file. Objective, stats, and chosen variants must match the
//!    uninterrupted run bit-for-bit (`resume_match`).

use std::time::Instant;

use overgen_dse::{Checkpoint, CheckpointConfig, Dse, DseResult, DseStats};
use overgen_ir::Kernel;
use overgen_telemetry::{fs::write_atomic, json};
use overgen_workloads as workloads;

use crate::harness::{dse_config, dse_iters, results_dir, seed};
use crate::table::Table;

/// Domain for all three legs (a MachSuite slice, same as the repair bench).
pub const DOMAIN: [&str; 3] = ["stencil-2d", "gemm", "ellpack"];

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Wall seconds of the plain run.
    pub base_wall_s: f64,
    /// Wall seconds of the checkpointed run.
    pub ck_wall_s: f64,
    /// Periodic + final checkpoint writes during leg 2.
    pub writes: u64,
    /// Microseconds spent serializing + atomically writing checkpoints.
    pub write_us: u64,
    /// `write_us` as a share of leg 2's wall time (percent).
    pub overhead_pct: f64,
    /// Checkpoint interval in proposals.
    pub interval: usize,
    /// Leg 2 result is bit-identical to leg 1.
    pub ck_invisible: bool,
    /// Proposal count at which leg 3 was stopped.
    pub killed_at: usize,
    /// Resumed run reproduced the uninterrupted result bit-for-bit.
    pub resume_match: bool,
    /// Final objective (weighted geomean IPC).
    pub objective: f64,
    /// Stats of the uninterrupted run.
    pub stats: DseStats,
}

fn domain() -> Vec<Kernel> {
    DOMAIN
        .iter()
        .map(|n| workloads::by_name(n).expect("workload exists"))
        .collect()
}

/// Bit-level result equality: objective, per-workload variants, history
/// curve, and activity counters.
fn same_result(a: &DseResult, b: &DseResult) -> bool {
    a.objective.to_bits() == b.objective.to_bits()
        && a.variants == b.variants
        && a.history.len() == b.history.len()
        && a.history
            .iter()
            .zip(&b.history)
            .all(|(x, y)| x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits())
        && a.stats == b.stats
}

/// Counter value on the ambient registry (0 when telemetry is off).
fn counter(name: &'static str) -> u64 {
    overgen_telemetry::current().map_or(0, |c| c.registry().counter(name).get())
}

/// Run all three legs and write `results/BENCH_checkpoint.json`.
pub fn run() -> CheckpointReport {
    let iters = dse_iters();
    let run_seed = seed() ^ 0xC4EC_7013;
    let ck_path = results_dir().join("BENCH_checkpoint.state.json");

    // Leg 1: plain run.
    let wall = Instant::now();
    let base = Dse::new(domain(), dse_config(iters, run_seed))
        .run()
        .expect("domain schedules");
    let base_wall_s = wall.elapsed().as_secs_f64();

    // Leg 2: checkpointed run at the default interval.
    let ckc = CheckpointConfig::new(ck_path.clone());
    let interval = ckc.interval;
    let mut cfg = dse_config(iters, run_seed);
    cfg.checkpoint = Some(ckc);
    let (w0, us0) = (
        counter("dse.checkpoint.write"),
        counter("dse.checkpoint.write_us"),
    );
    let wall = Instant::now();
    let full = Dse::new(domain(), cfg.clone())
        .run()
        .expect("domain schedules");
    let ck_wall_s = wall.elapsed().as_secs_f64();
    let writes = counter("dse.checkpoint.write") - w0;
    let write_us = counter("dse.checkpoint.write_us") - us0;
    let overhead_pct = write_us as f64 / (ck_wall_s * 1e6).max(1.0) * 100.0;
    let ck_invisible = same_result(&base, &full);

    // Leg 3: kill halfway (graceful stop finalizes the checkpoint), then
    // resume from the file and compare against the uninterrupted leg.
    let killed_at = iters / 2;
    let mut kill_cfg = cfg;
    kill_cfg.max_proposals = Some(killed_at);
    let partial = Dse::new(domain(), kill_cfg)
        .run()
        .expect("domain schedules");
    assert!(!partial.completed, "budgeted run must stop early");
    let resumed = Checkpoint::load(&ck_path)
        .expect("graceful stop left a checkpoint")
        .resume(domain())
        .expect("resume succeeds");
    let resume_match = resumed.completed && same_result(&full, &resumed);

    let report = CheckpointReport {
        base_wall_s,
        ck_wall_s,
        writes,
        write_us,
        overhead_pct,
        interval,
        ck_invisible,
        killed_at,
        resume_match,
        objective: full.objective,
        stats: full.stats,
    };

    let record = json::Obj::new()
        .str("bench", "checkpoint")
        .u64("seed", seed())
        .u64("dse_iters", iters as u64)
        .u64("interval", report.interval as u64)
        .f64("base_wall_seconds", report.base_wall_s)
        .f64("checkpointed_wall_seconds", report.ck_wall_s)
        .u64("writes", report.writes)
        .u64("write_us", report.write_us)
        .f64("overhead_pct", report.overhead_pct)
        .bool("checkpoint_invisible", report.ck_invisible)
        .u64("killed_at", report.killed_at as u64)
        .bool("resume_match", report.resume_match)
        .f64("objective", report.objective)
        .finish();
    let path = results_dir().join("BENCH_checkpoint.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &CheckpointReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row(["DSE proposals".into(), r.stats.iterations.to_string()]);
    t.row(["checkpoint interval".into(), r.interval.to_string()]);
    t.row(["checkpoint writes".into(), r.writes.to_string()]);
    t.row([
        "write time (us)".into(),
        format!("{} ({:.2}% of wall)", r.write_us, r.overhead_pct),
    ]);
    t.row([
        "wall plain / checkpointed (s)".into(),
        format!("{:.3} / {:.3}", r.base_wall_s, r.ck_wall_s),
    ]);
    t.row([
        "result unperturbed".to_string(),
        (if r.ck_invisible { "yes" } else { "NO" }).to_string(),
    ]);
    t.row([
        format!("killed at proposal {}", r.killed_at),
        (if r.resume_match {
            "resume bit-identical"
        } else {
            "RESUME DIVERGED"
        })
        .to_string(),
    ]);
    t.row(["objective".into(), format!("{:.3}", r.objective)]);
    format!(
        "Crash-safe checkpoint/resume: write overhead and equivalence\n\n{t}\n\
         A graceful stop at the kill point finalizes a checkpoint; resuming\n\
         from it must reproduce the uninterrupted run bit-for-bit.\n\
         Record: results/BENCH_checkpoint.json\n"
    )
}
