//! Engine throughput benchmark (`BENCH_dse.json`).
//!
//! One wall-clocked preserving DSE run over the repair benchmark's
//! MachSuite domain, recorded as a machine-readable throughput baseline:
//! proposals/sec, acceptance and cache behaviour, and — when the profiler
//! is on (`OVERGEN_PROFILE`, default) — per-phase wall-time totals with
//! attribution coverage. `bench-compare` gates CI on this record: the
//! deterministic ratios (fast share, cache hit rate, coverage) get hard
//! tolerance bands; the wall-clock numbers only get `require:` presence
//! checks, since absolute throughput varies across machines.

use std::time::Instant;

use overgen_dse::{Dse, DseStats};
use overgen_telemetry::{current_profiler, fs::write_atomic, json, Phase};
use overgen_workloads as workloads;

use crate::experiments::repair::DOMAIN;
use crate::harness::{dse_config, dse_iters, results_dir, seed};
use crate::table::Table;

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct DseReport {
    pub stats: DseStats,
    pub wall_seconds: f64,
    pub proposals_per_sec: f64,
    /// `(phase name, total µs)` for every phase that recorded samples;
    /// empty when the profiler is disabled.
    pub phase_totals: Vec<(&'static str, u64)>,
    /// Attribution coverage (attributed / eval total); `1.0` when the
    /// profiler is off or nothing was evaluated.
    pub coverage: f64,
}

/// Run the DSE and write `results/BENCH_dse.json`.
pub fn run() -> DseReport {
    let domain: Vec<_> = DOMAIN
        .iter()
        .map(|n| workloads::by_name(n).expect("workload exists"))
        .collect();
    let cfg = dse_config(dse_iters(), seed() ^ 0x0D5E_0BE2);
    let wall = Instant::now();
    let r = Dse::new(domain, cfg).run().expect("domain schedules");
    let wall_seconds = wall.elapsed().as_secs_f64();
    let stats = r.stats;

    let (phase_totals, coverage) = match current_profiler() {
        Some(p) => {
            let snap = p.snapshot();
            let totals = Phase::ALL
                .iter()
                .map(|&ph| (ph.name(), snap.phase_total_us(ph)))
                .filter(|(_, us)| *us > 0)
                .collect();
            (totals, snap.coverage())
        }
        None => (Vec::new(), 1.0),
    };

    let report = DseReport {
        stats,
        wall_seconds,
        proposals_per_sec: stats.iterations as f64 / wall_seconds.max(1e-9),
        phase_totals,
        coverage,
    };

    let decisions = stats.repair_fast + stats.repair_fallback + stats.full_schedules;
    let lookups = stats.cache_hits + stats.cache_misses;
    let dse = json::Obj::new()
        .u64("iterations", stats.iterations as u64)
        .u64("accepted", stats.accepted as u64)
        .u64("invalid", stats.invalid as u64)
        .u64("cache_hits", stats.cache_hits as u64)
        .u64("cache_misses", stats.cache_misses as u64)
        .f64(
            "cache_hit_rate",
            stats.cache_hits as f64 / lookups.max(1) as f64,
        )
        .u64("repair_fast", stats.repair_fast as u64)
        .u64("repair_fallback", stats.repair_fallback as u64)
        .u64("full_schedules", stats.full_schedules as u64)
        .f64(
            "fast_share",
            stats.repair_fast as f64 / decisions.max(1) as f64,
        )
        .finish();
    let mut phases = json::Obj::new();
    for (name, us) in &report.phase_totals {
        phases = phases.u64(name, *us);
    }
    let profile = json::Obj::new()
        .f64("coverage", report.coverage)
        .raw("phase_total_us", &phases.finish())
        .finish();
    let record = json::Obj::new()
        .str("bench", "dse")
        .u64("seed", seed())
        .f64("wall_seconds", report.wall_seconds)
        .f64("proposals_per_sec", report.proposals_per_sec)
        .raw("dse", &dse)
        .raw("profile", &profile)
        .finish();
    let path = results_dir().join("BENCH_dse.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &DseReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row(["proposals".into(), r.stats.iterations.to_string()]);
    t.row(["  accepted".into(), r.stats.accepted.to_string()]);
    t.row(["  invalid".into(), r.stats.invalid.to_string()]);
    t.row([
        "proposals/sec".into(),
        format!("{:.1}", r.proposals_per_sec),
    ]);
    t.row([
        "cache hits / misses".into(),
        format!("{} / {}", r.stats.cache_hits, r.stats.cache_misses),
    ]);
    for (name, us) in &r.phase_totals {
        t.row([format!("phase {name} (us)"), us.to_string()]);
    }
    t.row([
        "attribution coverage".into(),
        format!("{:.1}%", r.coverage * 100.0),
    ]);
    format!(
        "DSE engine throughput\n\n{t}\n\
         Phase totals are profiler wall time; coverage is the share of the\n\
         eval umbrella attributed to a named phase (serial runs stay <= 1).\n\
         Record: results/BENCH_dse.json\n"
    )
}
