//! Figure 13 (Q1): overall performance comparison — per-workload speedups
//! over untuned AutoDSE for Tuned-AD, general-OG, suite-OG, and w/l-OG,
//! plus per-suite geomeans.

use overgen::Overlay;
use overgen_ir::Suite;
use overgen_workloads as workloads;

use crate::harness::{autodse, geomean, og_seconds, suite_overlay, workload_overlay};
use crate::table::{ratio, Table};

/// One workload's normalized results (all speedups over untuned AutoDSE).
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// Tuned AutoDSE speedup.
    pub tuned_ad: f64,
    /// General overlay speedup (None when the kernel does not map).
    pub general_og: Option<f64>,
    /// Suite overlay speedup.
    pub suite_og: Option<f64>,
    /// Workload overlay speedup.
    pub wl_og: Option<f64>,
}

/// Run the full experiment, returning per-workload rows.
pub fn run() -> Vec<Row> {
    let general = Overlay::general();
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let sov = suite_overlay(suite);
        for k in workloads::suite(suite) {
            let name = k.name().to_string();
            let base = autodse(&name, false, 1).expect("baseline").best.seconds;
            let tuned = autodse(&name, true, 1).expect("tuned").best.seconds;
            let wov = workload_overlay(&k);
            let spd = |s: Option<f64>| s.map(|s| base / s);
            rows.push(Row {
                name: name.clone(),
                suite,
                tuned_ad: base / tuned,
                general_og: spd(og_seconds(&general, &name, true)),
                suite_og: spd(og_seconds(&sov, &name, true)),
                wl_og: spd(og_seconds(&wov, &name, true)),
            });
        }
    }
    rows
}

/// Per-suite geomean of one column.
pub fn suite_geomean(rows: &[Row], suite: Suite, col: impl Fn(&Row) -> Option<f64>) -> f64 {
    let xs: Vec<f64> = rows
        .iter()
        .filter(|r| r.suite == suite)
        .filter_map(col)
        .collect();
    geomean(&xs)
}

/// Render the figure as a table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new([
        "workload",
        "suite",
        "Tuned-AD",
        "AutoDSE",
        "general-OG",
        "suite-OG",
        "w/l-OG",
    ]);
    let fmt = |v: Option<f64>| v.map(ratio).unwrap_or_else(|| "-".into());
    for r in rows {
        t.row([
            r.name.clone(),
            r.suite.to_string(),
            ratio(r.tuned_ad),
            "1.00x".into(),
            fmt(r.general_og),
            fmt(r.suite_og),
            fmt(r.wl_og),
        ]);
    }
    let mut out = String::from(
        "Figure 13: Overall Performance Comparison (speedup over untuned AutoDSE)\n\n",
    );
    out.push_str(&t.to_string());
    out.push('\n');
    let mut g = Table::new([
        "suite",
        "Tuned-AD",
        "general-OG",
        "suite-OG",
        "w/l-OG",
        "paper suite-OG",
    ]);
    let paper = [("dsp", 1.21), ("machsuite", 1.13), ("vision", 1.25)];
    for (i, suite) in Suite::ALL.into_iter().enumerate() {
        g.row([
            suite.to_string(),
            ratio(suite_geomean(rows, suite, |r| Some(r.tuned_ad))),
            ratio(suite_geomean(rows, suite, |r| r.general_og)),
            ratio(suite_geomean(rows, suite, |r| r.suite_og)),
            ratio(suite_geomean(rows, suite, |r| r.wl_og)),
            ratio(paper[i].1),
        ]);
    }
    out.push_str("Geomeans per suite:\n");
    out.push_str(&g.to_string());
    out
}
