//! Figure 20 (Q8): do schedule-preserving transformations improve the DSE?
//! Convergence (estimated IPC vs. simulated hours) with and without them,
//! per suite.

use overgen_dse::Dse;
use overgen_ir::Suite;
use overgen_workloads as workloads;

use crate::harness::{dse_config, dse_iters, seed};
use crate::table::Table;

/// One suite's two convergence curves.
#[derive(Debug, Clone)]
pub struct Curves {
    /// Suite.
    pub suite: Suite,
    /// (hours, best estimated IPC) with preserving transforms.
    pub preserved: Vec<(f64, f64)>,
    /// Without.
    pub non_preserved: Vec<(f64, f64)>,
    /// Final DSE hours (with, without).
    pub hours: (f64, f64),
    /// Final estimated IPC (with, without).
    pub final_ipc: (f64, f64),
}

/// Run both DSE modes per suite. Simulated annealing is noisy, so each
/// mode runs over a small seed ensemble and the median-final run is
/// reported (the paper's curves are likewise single representative runs).
pub fn run() -> Vec<Curves> {
    const SEEDS: u64 = 3;
    Suite::ALL
        .into_iter()
        .map(|suite| {
            let domain = workloads::suite(suite);
            let run_mode = |preserving: bool| {
                let mut runs: Vec<_> = (0..SEEDS)
                    .map(|i| {
                        let mut cfg =
                            dse_config(dse_iters(), seed() ^ 0xF1620 ^ suite as u64 ^ (i << 8));
                        cfg.schedule_preserving = preserving;
                        Dse::new(domain.clone(), cfg)
                            .run()
                            .expect("suite domain schedules on the seed mesh")
                    })
                    .collect();
                runs.sort_by(|a, b| a.objective.total_cmp(&b.objective));
                runs.swap_remove(runs.len() / 2) // median by final objective
            };
            let with = run_mode(true);
            let without = run_mode(false);
            Curves {
                suite,
                preserved: with.history.clone(),
                non_preserved: without.history.clone(),
                hours: (with.dse_hours, without.dse_hours),
                final_ipc: (with.objective, without.objective),
            }
        })
        .collect()
}

/// Sample a curve at `n` evenly spaced points for plotting as text.
fn sample(curve: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if curve.is_empty() {
        return Vec::new();
    }
    (0..n)
        .map(|i| curve[(i * (curve.len() - 1)) / (n - 1).max(1)])
        .collect()
}

/// Render.
pub fn render(rows: &[Curves]) -> String {
    let mut out = String::from(
        "Figure 20: The effects of schedule-preserving transforms (est. IPC vs DSE hours)\n\n",
    );
    for c in rows {
        let mut t = Table::new(["point", "preserved (h, ipc)", "non-preserved (h, ipc)"]);
        let p = sample(&c.preserved, 8);
        let np = sample(&c.non_preserved, 8);
        for i in 0..p.len().max(np.len()) {
            let fmt = |v: Option<&(f64, f64)>| {
                v.map(|(h, ipc)| format!("{h:.2}h {ipc:.1}"))
                    .unwrap_or_default()
            };
            t.row([format!("{i}"), fmt(p.get(i)), fmt(np.get(i))]);
        }
        out.push_str(&format!(
            "{}: final IPC {:.1} vs {:.1} ({:.2}x, paper 1.09x); DSE hours {:.2} vs {:.2} ({:.0}% saved, paper ~15%)\n{}\n",
            c.suite,
            c.final_ipc.0,
            c.final_ipc.1,
            c.final_ipc.0 / c.final_ipc.1.max(1e-9),
            c.hours.0,
            c.hours.1,
            100.0 * (1.0 - c.hours.0 / c.hours.1.max(1e-9)),
            t
        ));
    }
    out
}
