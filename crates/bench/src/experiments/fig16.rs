//! Figure 16 (Q4): FPGA resource breakdown — overlay designs by component
//! group, and AutoDSE designs, as fractions of the XCVU9P.

use overgen_ir::Suite;
use overgen_model::{ResourceBreakdown, XCVU9P};
use overgen_workloads as workloads;

use crate::harness::{autodse, suite_overlay, workload_overlay};
use crate::table::Table;

/// One overlay design's breakdown.
#[derive(Debug, Clone)]
pub struct OverlayRow {
    /// Design label (workload name or "suite").
    pub label: String,
    /// Suite it belongs to.
    pub suite: Suite,
    /// Breakdown by component group.
    pub breakdown: ResourceBreakdown,
}

/// One AutoDSE design's resource fractions.
#[derive(Debug, Clone)]
pub struct AutoDseRow {
    /// Kernel name.
    pub label: String,
    /// LUT/FF/BRAM/DSP fractions of the device.
    pub fracs: [f64; 4],
}

/// Run: per-workload + suite overlays for one suite (whole-paper sweep is
/// expensive; the binary loops suites).
pub fn run_suite(suite: Suite) -> (Vec<OverlayRow>, Vec<AutoDseRow>) {
    let mut overlays = Vec::new();
    for k in workloads::suite(suite) {
        let o = workload_overlay(&k);
        overlays.push(OverlayRow {
            label: k.name().to_string(),
            suite,
            breakdown: o.resources(),
        });
    }
    let o = suite_overlay(suite);
    overlays.push(OverlayRow {
        label: "suite".into(),
        suite,
        breakdown: o.resources(),
    });

    let autodse_rows = workloads::suite(suite)
        .iter()
        .map(|k| {
            let r = autodse(k.name(), true, 1).expect("autodse runs");
            let u = XCVU9P.utilization(&r.best.resources);
            AutoDseRow {
                label: k.name().to_string(),
                fracs: [u.lut, u.ff, u.bram, u.dsp],
            }
        })
        .collect();
    (overlays, autodse_rows)
}

/// Render one suite's figure section.
pub fn render(suite: Suite, overlays: &[OverlayRow], hls: &[AutoDseRow]) -> String {
    let mut t = Table::new([
        "design", "lut%", "ff%", "bram%", "dsp%", "pe%", "n/w%", "vp%", "spad%", "dma%", "core%",
        "noc%",
    ]);
    for r in overlays {
        let total = r.breakdown.total();
        let u = XCVU9P.utilization(&total);
        let lut_frac =
            |x: overgen_model::Resources| format!("{:.1}", 100.0 * x.lut / XCVU9P.total.lut);
        t.row([
            r.label.clone(),
            format!("{:.1}", u.lut * 100.0),
            format!("{:.1}", u.ff * 100.0),
            format!("{:.1}", u.bram * 100.0),
            format!("{:.1}", u.dsp * 100.0),
            lut_frac(r.breakdown.pe),
            lut_frac(r.breakdown.network),
            lut_frac(r.breakdown.ports),
            lut_frac(r.breakdown.spad),
            lut_frac(r.breakdown.dma),
            lut_frac(r.breakdown.core),
            lut_frac(r.breakdown.noc),
        ]);
    }
    let mut h = Table::new(["AutoDSE design", "lut%", "ff%", "bram%", "dsp%"]);
    for r in hls {
        h.row([
            r.label.clone(),
            format!("{:.1}", r.fracs[0] * 100.0),
            format!("{:.1}", r.fracs[1] * 100.0),
            format!("{:.1}", r.fracs[2] * 100.0),
            format!("{:.1}", r.fracs[3] * 100.0),
        ]);
    }
    format!(
        "Figure 16 ({suite}): FPGA resource breakdown\n\n(a) Overlay designs \
         (component columns are % of device LUTs)\n{t}\n(b) AutoDSE designs (kernel-tuned)\n{h}\n"
    )
}
