//! Incremental-vs-full repair benchmark (`BENCH_repair.json`).
//!
//! Two measurements back the repair engine's claims:
//!
//! 1. **Coverage** — a real preserving DSE run over a MachSuite domain,
//!    counting how many repair invocations resolved on the incremental
//!    fast path (`scheduler.repair.fast`) versus fell back to a seeded
//!    full placement or a from-scratch schedule. The fast share is the
//!    fraction of all per-workload scheduling decisions that needed no
//!    placement search at all.
//!
//! 2. **Speedup** — a deterministic mutation chain replayed outside the
//!    DSE: per proposal, every workload's prior schedule is repaired
//!    incrementally *and* re-placed from scratch (no prior — what every
//!    proposal costs without the repair engine), both wall-clocked. The
//!    per-proposal speedup is the summed full-placement time over the
//!    summed repair time; the record reports the median across proposals.
//!
//! The timing loop always exercises *both* paths explicitly, so the
//! emitted trace does not depend on `OVERGEN_REPAIR` — only the DSE run of
//! part 1 honors the env switch (that is the half the determinism gate
//! diffs).

use std::time::Instant;

use overgen_adg::{SysAdg, SystemParams};
use overgen_compiler::{lower, LowerChoices};
use overgen_dse::{random_mutation, Dse, DseStats, TransformCtx};
use overgen_ir::Kernel;
use overgen_mdfg::Mdfg;
use overgen_scheduler::{repair_with, schedule, RepairOptions, Schedule, ScheduleFootprint};
use overgen_telemetry::{fs::write_atomic, json, Rng};
use overgen_workloads as workloads;

use crate::harness::{dse_config, dse_iters, repair_enabled, results_dir, seed};
use crate::table::Table;

/// Domain for both measurements (a MachSuite slice, as in Figure 18).
pub const DOMAIN: [&str; 3] = ["stencil-2d", "gemm", "ellpack"];

/// Proposals replayed by the timing chain.
const PROPOSALS: usize = 60;
/// Timing repetitions per path (minimum wins, to shed scheduler noise).
const REPS: usize = 3;

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Stats of the coverage DSE run.
    pub stats: DseStats,
    /// Fast-path share of all scheduling decisions in the DSE run.
    pub fast_share: f64,
    /// Per-proposal speedups (full seconds / repair seconds), sorted.
    pub speedups: Vec<f64>,
    /// Median of `speedups`.
    pub median_speedup: f64,
    /// Proposals whose repair resolved without moving anything.
    pub intact_proposals: usize,
    /// Proposals where a workload became unschedulable (reverted).
    pub reverted_proposals: usize,
    /// Median per-proposal full-placement / repair wall times (seconds).
    pub median_full_s: f64,
    /// See `median_full_s`.
    pub median_repair_s: f64,
}

fn domain() -> Vec<Kernel> {
    DOMAIN
        .iter()
        .map(|n| workloads::by_name(n).expect("workload exists"))
        .collect()
}

/// Part 1: coverage counters from a real DSE run.
fn coverage() -> (DseStats, f64) {
    let cfg = dse_config(dse_iters(), seed() ^ 0xBE7C_4EA1);
    let r = Dse::new(domain(), cfg).run().expect("domain schedules");
    let stats = r.stats;
    let decisions = stats.repair_fast + stats.repair_fallback + stats.full_schedules;
    let share = stats.repair_fast as f64 / decisions.max(1) as f64;
    (stats, share)
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

/// Wall-clock one closure, best of [`REPS`].
fn best_of<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.expect("REPS >= 1"), best)
}

/// Part 2: the deterministic mutation chain, timing repair vs full
/// re-placement per proposal.
fn timing_chain() -> (Vec<f64>, usize, usize, f64, f64) {
    let kernels = domain();
    let mdfgs: Vec<Mdfg> = kernels
        .iter()
        .map(|k| {
            lower(
                k,
                0,
                &LowerChoices {
                    unroll: 1,
                    ..Default::default()
                },
            )
            .expect("unroll-1 lowering succeeds")
        })
        .collect();
    let caps = Dse::cap_pool(&kernels);
    let mut adg = Dse::seed_adg(&kernels);
    let sys_of = |adg: &overgen_adg::Adg| SysAdg::new(adg.clone(), SystemParams::default());
    let sys = sys_of(&adg);
    let mut schedules: Vec<Schedule> = mdfgs
        .iter()
        .map(|m| schedule(m, &sys, None).expect("seed mesh schedules the domain"))
        .collect();

    let mut rng = Rng::seed_from_u64(seed() ^ 0x7131_0CAB);
    let mut speedups = Vec::new();
    let mut fulls = Vec::new();
    let mut repairs = Vec::new();
    let mut intact = 0usize;
    let mut reverted = 0usize;
    for _ in 0..PROPOSALS {
        let backup_adg = adg.clone();
        let backup_scheds = schedules.clone();
        let mut footprint = ScheduleFootprint::Pure;
        for _ in 0..2 {
            let preserving = rng.gen_bool(0.7);
            let mut ctx = TransformCtx {
                cap_pool: &caps,
                schedules: &mut schedules,
                preserving,
            };
            let (_, fp) = random_mutation(&mut adg, &mut ctx, &mut rng);
            footprint = footprint.merge(fp);
        }
        let sys = sys_of(&adg);
        if sys.validate().is_err() {
            adg = backup_adg;
            schedules = backup_scheds;
            reverted += 1;
            continue;
        }

        let opts = RepairOptions {
            incremental: true,
            footprint: Some(footprint),
            scope: None,
        };
        let mut repair_s = 0.0;
        let mut full_s = 0.0;
        let mut next = Vec::with_capacity(schedules.len());
        let mut moved_any = false;
        let mut broke = false;
        for (m, prior) in mdfgs.iter().zip(&schedules) {
            // What the DSE's common path runs.
            let (rep, t) = best_of(|| repair_with(prior, m, &sys, &opts));
            repair_s += t;
            // What every proposal would cost without the repair engine:
            // a from-scratch placement (the DSE's no-prior path).
            let (_, t) = best_of(|| schedule(m, &sys, None));
            full_s += t;
            match rep {
                Ok((s, outcome)) => {
                    moved_any |= outcome != overgen_scheduler::RepairOutcome::Intact;
                    next.push(s);
                }
                Err(_) => {
                    broke = true;
                    break;
                }
            }
        }
        if broke {
            adg = backup_adg;
            schedules = backup_scheds;
            reverted += 1;
            continue;
        }
        schedules = next;
        if !moved_any {
            intact += 1;
        }
        speedups.push(full_s / repair_s.max(1e-12));
        fulls.push(full_s);
        repairs.push(repair_s);
    }
    speedups.sort_by(f64::total_cmp);
    fulls.sort_by(f64::total_cmp);
    repairs.sort_by(f64::total_cmp);
    let (mf, mr) = (median(&fulls), median(&repairs));
    (speedups, intact, reverted, mf, mr)
}

/// Run both measurements and write `results/BENCH_repair.json`.
pub fn run() -> RepairReport {
    let (stats, fast_share) = coverage();
    let (speedups, intact_proposals, reverted_proposals, median_full_s, median_repair_s) =
        timing_chain();
    let median_speedup = median(&speedups);
    let report = RepairReport {
        stats,
        fast_share,
        speedups,
        median_speedup,
        intact_proposals,
        reverted_proposals,
        median_full_s,
        median_repair_s,
    };

    let dse = json::Obj::new()
        .u64("iterations", report.stats.iterations as u64)
        .u64("repair_fast", report.stats.repair_fast as u64)
        .u64("repair_fallback", report.stats.repair_fallback as u64)
        .u64("full_schedules", report.stats.full_schedules as u64)
        .f64("fast_share", report.fast_share)
        .finish();
    let timing = json::Obj::new()
        .u64("proposals", report.speedups.len() as u64)
        .u64("intact_proposals", report.intact_proposals as u64)
        .u64("reverted_proposals", report.reverted_proposals as u64)
        .f64("median_speedup", report.median_speedup)
        .f64(
            "min_speedup",
            report.speedups.first().copied().unwrap_or(0.0),
        )
        .f64(
            "max_speedup",
            report.speedups.last().copied().unwrap_or(0.0),
        )
        .f64("median_full_seconds", report.median_full_s)
        .f64("median_repair_seconds", report.median_repair_s)
        .finish();
    let record = json::Obj::new()
        .str("bench", "repair")
        .u64("seed", seed())
        .bool("repair_enabled", repair_enabled())
        .raw("dse", &dse)
        .raw("timing", &timing)
        .finish();
    let path = results_dir().join("BENCH_repair.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &RepairReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row([
        "DSE scheduling decisions".into(),
        (r.stats.repair_fast + r.stats.repair_fallback + r.stats.full_schedules).to_string(),
    ]);
    t.row([
        "  fast-path repairs".into(),
        r.stats.repair_fast.to_string(),
    ]);
    t.row([
        "  fallback repairs".into(),
        r.stats.repair_fallback.to_string(),
    ]);
    t.row([
        "  full schedules".into(),
        r.stats.full_schedules.to_string(),
    ]);
    t.row(["fast share".into(), format!("{:.1}%", r.fast_share * 100.0)]);
    t.row(["timed proposals".into(), r.speedups.len().to_string()]);
    t.row(["  fully intact".into(), r.intact_proposals.to_string()]);
    t.row(["  reverted".into(), r.reverted_proposals.to_string()]);
    t.row([
        "median per-proposal speedup".into(),
        format!("{:.1}x", r.median_speedup),
    ]);
    t.row([
        "median full / repair (us)".into(),
        format!(
            "{:.0} / {:.0}",
            r.median_full_s * 1e6,
            r.median_repair_s * 1e6
        ),
    ]);
    format!(
        "Repair fast path: incremental vs full re-placement\n\n{t}\n\
         The fast path reconstructs and re-scores the prior mapping when the\n\
         dirty set is empty; the fallback re-places from the prior seed.\n\
         Record: results/BENCH_repair.json\n"
    )
}
