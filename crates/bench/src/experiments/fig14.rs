//! Figure 14 (Q2): effect of kernel tuning across frameworks — speedup of
//! each framework's tuned variant over *vanilla (untuned) AutoDSE*, for the
//! nine tuning-sensitive workloads.

use crate::harness::{autodse, og_seconds, workload_overlay};
use crate::table::{ratio, Table};
use overgen_workloads as workloads;

/// One workload's tuning comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// Untuned AutoDSE seconds (the normaliser).
    pub autodse_untuned: f64,
    /// Tuned AutoDSE speedup over untuned AutoDSE.
    pub autodse_tuned_speedup: f64,
    /// Whether the HLS side was actually tuned for this kernel.
    pub hls_tuned_exists: bool,
    /// w/l-OverGen (untuned kernel) speedup over untuned AutoDSE.
    pub og_untuned_speedup: Option<f64>,
    /// w/l-OverGen with OverGen kernel tuning.
    pub og_tuned_speedup: Option<f64>,
    /// Whether the OverGen side has a tuned variant.
    pub og_tuned_exists: bool,
}

/// Run over the nine tuning-sensitive kernels (Figure 14's x-axis).
pub fn run() -> Vec<Row> {
    workloads::TUNING_SENSITIVE
        .iter()
        .map(|name| {
            let base = autodse(name, false, 1).expect("baseline").best.seconds;
            let tuned = autodse(name, true, 1).expect("tuned").best.seconds;
            let overlay = workload_overlay(&workloads::by_name(name).expect("exists"));
            let og_plain = og_seconds(&overlay, name, false);
            let og_tuned = og_seconds(&overlay, name, true);
            Row {
                name: name.to_string(),
                autodse_untuned: base,
                autodse_tuned_speedup: base / tuned,
                hls_tuned_exists: workloads::hls_tuned(name).is_some(),
                og_untuned_speedup: og_plain.map(|s| base / s),
                og_tuned_speedup: og_tuned.map(|s| base / s),
                og_tuned_exists: workloads::og_tuned(name).is_some(),
            }
        })
        .collect()
}

/// Render.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new([
        "workload",
        "AutoDSE (tuned)",
        "w/l-OG (untuned)",
        "w/l-OG (tuned)",
        "HLS tuned?",
        "OG tuned?",
    ]);
    let f = |v: Option<f64>| v.map(ratio).unwrap_or_else(|| "-".into());
    for r in rows {
        t.row([
            r.name.clone(),
            ratio(r.autodse_tuned_speedup),
            f(r.og_untuned_speedup),
            f(r.og_tuned_speedup),
            if r.hls_tuned_exists { "yes" } else { "no" }.into(),
            if r.og_tuned_exists { "yes" } else { "no" }.into(),
        ]);
    }
    format!(
        "Figure 14: Effect of tuned kernels (speedup over vanilla AutoDSE)\n\n{t}\n\
         Takeaway check: HLS should gain much more from tuning than OverGen\n\
         (the paper: 7 kernels need HLS tuning, only 4 need OverGen tuning).\n"
    )
}
