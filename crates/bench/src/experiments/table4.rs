//! Table IV: HLS initiation-interval optimization — untuned vs. tuned II
//! for the seven pathological kernels, with the cause column.

use overgen_hls::initiation_interval;
use overgen_workloads as workloads;

use crate::table::Table;

/// One kernel's II row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// Cause (paper's grouping).
    pub cause: &'static str,
    /// Untuned II.
    pub untuned: u32,
    /// Tuned II.
    pub tuned: u32,
}

/// The seven Table IV kernels with their causes.
pub const KERNELS: [(&str, &str); 7] = [
    ("cholesky", "Var. Loop TC"),
    ("crs", "Var. Loop TC"),
    ("fft", "Var. Loop TC"),
    ("bgr2grey", "Ineff. Strided Access"),
    ("blur", "Ineff. Strided Access"),
    ("channel-ext", "Ineff. Strided Access"),
    ("stencil-3d", "Ineff. Strided Access"),
];

/// Run the experiment.
pub fn run() -> Vec<Row> {
    KERNELS
        .iter()
        .map(|(name, cause)| {
            let plain = workloads::by_name(name).expect("workload exists");
            let tuned = workloads::hls_tuned(name).expect("tuned variant exists");
            Row {
                name: name.to_string(),
                cause,
                untuned: initiation_interval(&plain),
                tuned: initiation_interval(&tuned),
            }
        })
        .collect()
}

/// Render the table (paper values inline for comparison).
pub fn render(rows: &[Row]) -> String {
    let paper: std::collections::BTreeMap<&str, (u32, u32)> = [
        ("cholesky", (10, 5)),
        ("crs", (4, 2)),
        ("fft", (2, 1)),
        ("bgr2grey", (9, 1)),
        ("blur", (6, 1)),
        ("channel-ext", (8, 1)),
        ("stencil-3d", (6, 1)),
    ]
    .into();
    let mut t = Table::new([
        "Workload",
        "Cause",
        "Untuned II",
        "Tuned II",
        "Paper (untuned/tuned)",
    ]);
    for r in rows {
        let p = paper[r.name.as_str()];
        t.row([
            r.name.clone(),
            r.cause.to_string(),
            r.untuned.to_string(),
            r.tuned.to_string(),
            format!("{}/{}", p.0, p.1),
        ]);
    }
    format!("Table IV: HLS Initiation Interval (II) Optimization\n\n{t}")
}
