//! Table I: hardware modules synthesized per component class to train the
//! ML-based FPGA resource model (§V-D), plus the training quality the
//! paper's pipeline achieves against the synthesis oracle.

use std::collections::BTreeMap;

use overgen_model::dataset::MlpResourceModel;
use overgen_model::ComponentKind;

use crate::table::Table;

/// Result of the model-training experiment.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// (class, samples used, paper samples, test relative error).
    pub rows: Vec<(ComponentKind, usize, usize, f64)>,
}

/// Run with a sample budget per class. `paper_scale` uses Table I's exact
/// counts (hours of dataset generation); otherwise a scaled-down dataset
/// exercises the identical pipeline.
pub fn run(paper_scale: bool) -> Outcome {
    let sizes: BTreeMap<ComponentKind, usize> = ComponentKind::ALL
        .into_iter()
        .map(|k| {
            let n = if paper_scale {
                k.paper_sample_count()
            } else {
                // proportional 1:50 scale-down, min 500
                (k.paper_sample_count() / 50).max(500)
            };
            (k, n)
        })
        .collect();
    let model = MlpResourceModel::train(&sizes, 7);
    let rows = ComponentKind::ALL
        .into_iter()
        .map(|k| {
            let r = model.report(k).expect("trained");
            (k, sizes[&k], k.paper_sample_count(), r.test_rel_err)
        })
        .collect();
    Outcome { rows }
}

/// Render the table.
pub fn render(o: &Outcome) -> String {
    let mut t = Table::new([
        "Hardware Unit",
        "Synthesized (this run)",
        "Paper Total",
        "MLP test rel. err",
    ]);
    for (k, n, paper, err) in &o.rows {
        t.row([
            k.to_string(),
            n.to_string(),
            paper.to_string(),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    format!(
        "Table I: Number of Hardware Modules Synthesized (per-class MLP, 80/10/10 split)\n\n{t}"
    )
}
