//! Figure 17 (Q5): "leave-one-out" flexibility — generate a MachSuite
//! overlay without one workload, then map that workload onto it; report
//! relative performance vs. the full suite overlay, compile-time speedup
//! over the HLS flow, and reconfiguration-time speedup over FPGA
//! reflashing.

use overgen_ir::Suite;
use overgen_model::{TimeModel, XCVU9P};
use overgen_workloads as workloads;

use crate::harness::{autodse, domain_overlay, og_seconds, suite_overlay};
use crate::table::Table;

/// One left-out workload's results.
#[derive(Debug, Clone)]
pub struct Row {
    /// The left-out workload.
    pub name: String,
    /// Its run time on the leave-one-out overlay relative to the full
    /// suite overlay (1.0 = no loss). `None` when it fails to map.
    pub relative_perf: Option<f64>,
    /// Compile-time speedup vs. the HLS flow for a new application.
    pub compile_speedup: Option<f64>,
    /// Reconfiguration-time speedup vs. FPGA bitstream reflash.
    pub reconfig_speedup: Option<f64>,
}

/// Run the MachSuite leave-one-out study.
pub fn run() -> Vec<Row> {
    let suite = Suite::MachSuite;
    let full = suite_overlay(suite);
    let all = workloads::suite(suite);
    let time = TimeModel::default();
    let mut rows = Vec::new();
    for leave in &all {
        let name = leave.name().to_string();
        let rest: Vec<_> = all.iter().filter(|k| k.name() != name).cloned().collect();
        let overlay = domain_overlay(&rest, 0x100 + rows.len() as u64);
        let loo = og_seconds(&overlay, &name, true);
        let full_secs = og_seconds(&full, &name, true);
        let (compile_speedup, reconfig_speedup) = match overlay.compile(leave) {
            Ok(app) => {
                let hls = autodse(&name, false, 1).expect("autodse runs");
                let hls_compile_s = time.hls_flow_hours(&hls.best.resources, &XCVU9P) * 3600.0;
                let reconf = overlay.reconfig_seconds(&app);
                (
                    Some(hls_compile_s / app.compile_seconds),
                    Some(time.fpga_reconfig_seconds / reconf),
                )
            }
            Err(_) => (None, None),
        };
        rows.push(Row {
            name,
            relative_perf: match (loo, full_secs) {
                (Some(l), Some(f)) => Some(f / l),
                _ => None,
            },
            compile_speedup,
            reconfig_speedup,
        });
    }
    rows
}

/// Render.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new([
        "left-out",
        "perf vs suite-OG",
        "compile speedup o/ HLS",
        "reconfig speedup o/ FPGA",
    ]);
    let pct = |v: Option<f64>| {
        v.map(|x| format!("{:.0}%", x * 100.0))
            .unwrap_or_else(|| "unmapped".into())
    };
    let mag = |v: Option<f64>| v.map(|x| format!("{x:.0}x")).unwrap_or_else(|| "-".into());
    let mut perf = Vec::new();
    let mut comp = Vec::new();
    let mut reconf = Vec::new();
    for r in rows {
        t.row([
            r.name.clone(),
            pct(r.relative_perf),
            mag(r.compile_speedup),
            mag(r.reconfig_speedup),
        ]);
        if let Some(p) = r.relative_perf {
            perf.push(p);
        }
        if let Some(c) = r.compile_speedup {
            comp.push(c);
        }
        if let Some(x) = r.reconfig_speedup {
            reconf.push(x);
        }
    }
    format!(
        "Figure 17: Leave-one-out flexibility (MachSuite)\n\n{t}\n\
         geomeans: perf {:.0}% (paper ~50.5%), compile {:.0}x (paper ~10^4x), \
         reconfig {:.0}x (paper ~54000x)\n",
        crate::harness::geomean(&perf) * 100.0,
        crate::harness::geomean(&comp),
        crate::harness::geomean(&reconf),
    )
}
