//! Figure 18 (Q6): incremental design optimization — add MachSuite
//! workloads one at a time, rerun the DSE, and track per-tile LUT use by
//! component group plus the chosen tile count.

use overgen_model::XCVU9P;
use overgen_workloads as workloads;

use crate::harness::{domain_overlay, og_seconds};
use crate::table::Table;

/// The incremental order the paper uses.
pub const ORDER: [&str; 5] = ["stencil-2d", "gemm", "stencil-3d", "ellpack", "crs"];

/// One incremental step.
#[derive(Debug, Clone)]
pub struct Step {
    /// Workload added at this step.
    pub added: String,
    /// Tiles the system DSE chose.
    pub tiles: u32,
    /// Per-tile LUT fraction by group `[pe, n/w, vp, spad, dma, core]`.
    pub per_tile_lut: [f64; 6],
    /// NoC+L2 LUT fraction (shared).
    pub noc_lut: f64,
    /// Geomean slowdown of the previously-supported workloads vs. their
    /// value at the previous step (>= 1 means no loss).
    pub geomean_runtime_s: f64,
}

/// Run the incremental experiment.
pub fn run() -> Vec<Step> {
    let mut steps = Vec::new();
    let mut domain = Vec::new();
    for (i, name) in ORDER.iter().enumerate() {
        domain.push(workloads::by_name(name).expect("workload exists"));
        let overlay = domain_overlay(&domain, 0x180 + i as u64);
        let b = overlay.resources();
        let tiles = f64::from(overlay.sys_adg.sys.tiles);
        let frac = |r: overgen_model::Resources| r.lut / tiles / XCVU9P.total.lut;
        let mut secs = Vec::new();
        for k in &domain {
            if let Some(s) = og_seconds(&overlay, k.name(), true) {
                secs.push(s);
            }
        }
        steps.push(Step {
            added: name.to_string(),
            tiles: overlay.sys_adg.sys.tiles,
            per_tile_lut: [
                frac(b.pe),
                frac(b.network),
                frac(b.ports),
                frac(b.spad),
                frac(b.dma),
                frac(b.core),
            ],
            noc_lut: b.noc.lut / XCVU9P.total.lut,
            geomean_runtime_s: crate::harness::geomean(&secs),
        });
    }
    steps
}

/// Render.
pub fn render(steps: &[Step]) -> String {
    let mut t = Table::new([
        "+workload",
        "tiles",
        "pe%",
        "n/w%",
        "vp%",
        "spad%",
        "dma%",
        "core%",
        "noc% (shared)",
        "geomean runtime (ms)",
    ]);
    for s in steps {
        let p = |x: f64| format!("{:.2}", x * 100.0);
        t.row([
            format!("+{}", s.added),
            s.tiles.to_string(),
            p(s.per_tile_lut[0]),
            p(s.per_tile_lut[1]),
            p(s.per_tile_lut[2]),
            p(s.per_tile_lut[3]),
            p(s.per_tile_lut[4]),
            p(s.per_tile_lut[5]),
            p(s.noc_lut),
            format!("{:.3}", s.geomean_runtime_s * 1e3),
        ]);
    }
    format!(
        "Figure 18: Incremental design optimization (MachSuite)\n\n{t}\n\
         Paper takeaway: per-tile datapath grows with generality while the tile\n\
         count falls (15 -> 10), costing ~8% mean performance.\n"
    )
}
