//! Figure 15 (Q3): DSE + synthesis time — AutoDSE per application vs. one
//! OverGen suite overlay, in (simulated) hours.

use overgen::generation_hours;
use overgen_ir::Suite;
use overgen_workloads as workloads;

use crate::harness::{autodse, suite_overlay};
use crate::table::Table;

/// One suite's time accounting.
#[derive(Debug, Clone)]
pub struct SuiteTimes {
    /// Suite.
    pub suite: Suite,
    /// (kernel, dse hours, synth hours) per application for AutoDSE.
    pub autodse: Vec<(String, f64, f64)>,
    /// OverGen: (dse hours, synth+pnr hours).
    pub overgen: (f64, f64),
}

impl SuiteTimes {
    /// Total AutoDSE hours across the suite's applications.
    pub fn autodse_total(&self) -> f64 {
        self.autodse.iter().map(|(_, d, s)| d + s).sum()
    }

    /// Total OverGen hours (one-time, per suite).
    pub fn overgen_total(&self) -> f64 {
        self.overgen.0 + self.overgen.1
    }
}

/// Run the experiment for all three suites.
pub fn run() -> Vec<SuiteTimes> {
    Suite::ALL
        .into_iter()
        .map(|suite| {
            let autodse_rows = workloads::suite(suite)
                .iter()
                .map(|k| {
                    let r = autodse(k.name(), false, 1).expect("autodse runs");
                    (k.name().to_string(), r.dse_hours, r.synth_hours)
                })
                .collect();
            let overlay = suite_overlay(suite);
            let dse_hours = overlay.dse.as_ref().map(|d| d.dse_hours).unwrap_or(0.0);
            let total = generation_hours(&overlay);
            SuiteTimes {
                suite,
                autodse: autodse_rows,
                overgen: (dse_hours, total - dse_hours),
            }
        })
        .collect()
}

/// Render.
pub fn render(rows: &[SuiteTimes]) -> String {
    let mut out = String::from("Figure 15: DSE and synthesis time comparison (hours)\n\n");
    let paper_totals = [("dsp", 52.6), ("machsuite", 69.2), ("vision", 92.8)];
    for (i, s) in rows.iter().enumerate() {
        let mut t = Table::new(["kernel", "dse (h)", "synth (h)", "total (h)"]);
        for (name, d, sy) in &s.autodse {
            t.row([
                name.clone(),
                format!("{d:.1}"),
                format!("{sy:.1}"),
                format!("{:.1}", d + sy),
            ]);
        }
        t.row([
            "OverGen suite".into(),
            format!("{:.1}", s.overgen.0),
            format!("{:.1}", s.overgen.1),
            format!("{:.1}", s.overgen_total()),
        ]);
        out.push_str(&format!(
            "{} — AutoDSE total {:.1} h (paper: {} h); OverGen suite {:.1} h ({:.0}% of AutoDSE)\n{}\n",
            s.suite,
            s.autodse_total(),
            paper_totals[i].1,
            s.overgen_total(),
            100.0 * s.overgen_total() / s.autodse_total(),
            t
        ));
    }
    out.push_str(
        "Paper takeaway: OverGen's one-time suite DSE uses ~47% of AutoDSE's combined time.\n",
    );
    out
}
