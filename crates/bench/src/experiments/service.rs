//! Multi-tenant DSE service benchmark (`BENCH_service.json`).
//!
//! Two legs over the shared persistent evaluation store (DESIGN.md §13):
//!
//! 1. **Warm-cache speedup** — per trial, a job runs against a fresh
//!    store root (cold), then an identical job runs against the same
//!    root through a brand-new server (warm: every evaluation is served
//!    from disk). The reported `summary.median_warm_speedup` is the
//!    median cold/warm wall-time ratio over all trials; the acceptance
//!    gate is ≥ 2x. The warm leg must be a *full* warm set — any store
//!    miss fails the benchmark.
//! 2. **Concurrent-vs-sequential identity** — one four-tenant fleet
//!    (three workloads plus a duplicate tenant, so co-tenants share
//!    store entries) runs twice in separate roots: workers=1 and
//!    workers=4. Every tenant's `trace.jsonl` and `result.json` must be
//!    byte-identical across the two runs (`summary.identity`); worker
//!    count and co-tenant scheduling may change wall-clock only.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use overgen_dse::{DseConfig, StoreStats};
use overgen_ir::Kernel;
use overgen_service::{JobRequest, JobServer, JobStatus, ServiceConfig};
use overgen_telemetry::{fs::write_atomic, json};
use overgen_workloads as workloads;

use crate::harness::{dse_config, dse_iters, results_dir, seed};
use crate::table::Table;

/// Workloads for both legs (a MachSuite slice, same as the checkpoint
/// bench). The warm-speedup job explores all three at once; the identity
/// fleet gives each tenant one of them.
pub const DOMAIN: [&str; 3] = ["stencil-2d", "gemm", "ellpack"];

/// Cold/warm pairs measured for the speedup leg.
pub const TRIALS: usize = 3;

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-trial (cold, warm) wall seconds.
    pub trials: Vec<(f64, f64)>,
    /// Median of the per-trial cold/warm ratios.
    pub median_warm_speedup: f64,
    /// Store accounting summed over the warm runs.
    pub warm_stats: StoreStats,
    /// Tenants in the identity fleet.
    pub fleet_jobs: usize,
    /// Per-job artifacts are byte-identical at workers=1 and workers=4.
    pub identity: bool,
    /// Cross-tenant serves observed in the sequential fleet run.
    pub shared_serves: u64,
}

fn domain() -> Vec<Kernel> {
    DOMAIN
        .iter()
        .map(|n| workloads::by_name(n).expect("workload exists"))
        .collect()
}

/// Run one job on a single-worker server rooted at `root` and return its
/// wall seconds (submit to completion) plus the server's store stats.
fn run_job(root: &Path, name: &str, kernels: Vec<Kernel>, config: DseConfig) -> (f64, StoreStats) {
    let server = JobServer::start(ServiceConfig {
        root: root.to_path_buf(),
        workers: 1,
        store: true,
    })
    .expect("service root");
    let wall = Instant::now();
    let id = server
        .submit(JobRequest {
            name: name.to_string(),
            kernels,
            config,
        })
        .expect("fresh job name");
    assert_eq!(server.wait(id), Some(JobStatus::Done), "job {name} failed");
    let wall_s = wall.elapsed().as_secs_f64();
    let report = server.shutdown();
    (wall_s, report.store.expect("store enabled"))
}

/// The identity-leg fleet: one tenant per workload plus a duplicate of
/// the first, so the duplicate is served from its sibling's entries.
fn fleet(run_seed: u64) -> Vec<JobRequest> {
    let iters = dse_iters();
    let mut jobs: Vec<JobRequest> = DOMAIN
        .iter()
        .enumerate()
        .map(|(i, k)| JobRequest {
            name: format!("tenant-{}", (b'a' + i as u8) as char),
            kernels: vec![workloads::by_name(k).expect("workload exists")],
            config: dse_config(iters, run_seed),
        })
        .collect();
    jobs.push(JobRequest {
        name: "tenant-dup".to_string(),
        kernels: vec![workloads::by_name(DOMAIN[0]).expect("workload exists")],
        config: dse_config(iters, run_seed),
    });
    jobs
}

/// Run a fleet to completion and return each tenant's on-disk artifacts
/// (trace.jsonl, result.json) by name, plus the server's store stats.
fn run_fleet(
    root: &Path,
    workers: usize,
    jobs: Vec<JobRequest>,
) -> (BTreeMap<String, (String, String)>, StoreStats) {
    let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
    let server = JobServer::start(ServiceConfig {
        root: root.to_path_buf(),
        workers,
        store: true,
    })
    .expect("service root");
    let ids: Vec<_> = jobs
        .into_iter()
        .map(|j| server.submit(j).expect("fresh job name"))
        .collect();
    for id in ids {
        assert_eq!(server.wait(id), Some(JobStatus::Done), "fleet job failed");
    }
    let report = server.shutdown();
    let artifacts = names
        .into_iter()
        .map(|name| {
            let dir = root.join("jobs").join(&name);
            let trace = std::fs::read_to_string(dir.join("trace.jsonl")).expect("job trace");
            let result = std::fs::read_to_string(dir.join("result.json")).expect("job result");
            (name, (trace, result))
        })
        .collect();
    (artifacts, report.store.expect("store enabled"))
}

fn scratch() -> PathBuf {
    results_dir().join("BENCH_service.work")
}

/// Run both legs and write `results/BENCH_service.json`.
pub fn run() -> ServiceReport {
    let iters = dse_iters();
    let run_seed = seed() ^ 0x5E7F_1CE0;
    let work = scratch();
    let _ = std::fs::remove_dir_all(&work);

    // Leg 1: cold run populates a fresh store, a new server over the same
    // root replays the identical job fully warm.
    let mut trials = Vec::new();
    let mut warm_stats = StoreStats::default();
    for t in 0..TRIALS {
        let root = work.join(format!("trial-{t}"));
        let cfg = dse_config(iters, run_seed.wrapping_add(t as u64));
        let (cold_s, _) = run_job(&root, "cold", domain(), cfg.clone());
        let (warm_s, stats) = run_job(&root, "warm", domain(), cfg);
        assert_eq!(
            stats.misses, 0,
            "trial {t}: an identical job must be fully warm: {stats:?}"
        );
        warm_stats.lookups += stats.lookups;
        warm_stats.hits += stats.hits;
        warm_stats.misses += stats.misses;
        warm_stats.publishes += stats.publishes;
        warm_stats.shared_serves += stats.shared_serves;
        warm_stats.warm_entries += stats.warm_entries;
        trials.push((cold_s, warm_s));
    }
    let mut speedups: Vec<f64> = trials.iter().map(|(c, w)| c / w.max(1e-9)).collect();
    speedups.sort_by(f64::total_cmp);
    let median_warm_speedup = speedups[speedups.len() / 2];

    // Leg 2: the same fleet at workers=1 and workers=4 in separate roots
    // must leave byte-identical per-tenant artifacts.
    let (sequential, seq_stats) = run_fleet(&work.join("seq"), 1, fleet(run_seed));
    let (concurrent, _) = run_fleet(&work.join("conc"), 4, fleet(run_seed));
    let fleet_jobs = sequential.len();
    let identity = sequential.iter().all(|(name, (trace, result))| {
        let (ctrace, cresult) = &concurrent[name];
        !trace.is_empty() && trace == ctrace && result == cresult
    });

    let _ = std::fs::remove_dir_all(&work);

    let report = ServiceReport {
        trials,
        median_warm_speedup,
        warm_stats,
        fleet_jobs,
        identity,
        shared_serves: seq_stats.shared_serves,
    };

    let cold_median = median(report.trials.iter().map(|t| t.0));
    let warm_median = median(report.trials.iter().map(|t| t.1));
    let record = json::Obj::new()
        .str("bench", "service")
        .u64("seed", seed())
        .u64("dse_iters", iters as u64)
        .u64("trials", TRIALS as u64)
        .u64("fleet_jobs", report.fleet_jobs as u64)
        .f64("cold_wall_seconds", cold_median)
        .f64("warm_wall_seconds", warm_median)
        .raw(
            "store",
            &json::Obj::new()
                .u64("lookups", report.warm_stats.lookups)
                .u64("hits", report.warm_stats.hits)
                .u64("misses", report.warm_stats.misses)
                .u64("warm_entries", report.warm_stats.warm_entries)
                .u64("fleet_shared_serves", report.shared_serves)
                .finish(),
        )
        .raw(
            "summary",
            &json::Obj::new()
                .f64("median_warm_speedup", report.median_warm_speedup)
                .bool("identity", report.identity)
                .finish(),
        )
        .finish();
    let path = results_dir().join("BENCH_service.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Render.
pub fn render(r: &ServiceReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    for (i, (cold, warm)) in r.trials.iter().enumerate() {
        t.row([
            format!("trial {i} cold / warm (s)"),
            format!("{cold:.3} / {warm:.3} ({:.1}x)", cold / warm.max(1e-9)),
        ]);
    }
    t.row([
        "median warm-cache speedup".into(),
        format!("{:.1}x", r.median_warm_speedup),
    ]);
    t.row([
        "warm store lookups (hits/misses)".into(),
        format!(
            "{} ({}/{})",
            r.warm_stats.lookups, r.warm_stats.hits, r.warm_stats.misses
        ),
    ]);
    t.row([
        format!("fleet of {}: workers=1 vs workers=4", r.fleet_jobs),
        (if r.identity {
            "byte-identical"
        } else {
            "DIVERGED"
        })
        .to_string(),
    ]);
    t.row([
        "cross-tenant shared serves".into(),
        r.shared_serves.to_string(),
    ]);
    format!(
        "DSE-as-a-service: shared persistent evaluation store\n\n{t}\n\
         A warm store must serve an identical tenant entirely from disk\n\
         (zero misses) and concurrency may change wall-clock only.\n\
         Record: results/BENCH_service.json\n"
    )
}
