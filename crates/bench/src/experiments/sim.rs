//! Batched/pruned simulator sweep vs the cold exhaustive baseline
//! (`BENCH_sim.json`).
//!
//! The simulator-backed system DSE (`system_dse_sim`) earns its keep two
//! ways: grid points share one warm [`SimBatch`] template per compiled
//! schedule instead of rebuilding stream state from the mDFG at every
//! point, and the analytic lower bound prunes points that provably cannot
//! beat the incumbent. This benchmark wall-clocks both against what every
//! proposal would cost without them — a cold exhaustive fold that calls
//! `simulate()` (fresh `SysAdg`, fresh stream extraction) on every
//! feasible grid point — across all 19 paper workloads on the general
//! overlay, and asserts the winner never moves.
//!
//! The per-workload speedup is baseline seconds over pruned seconds (best
//! of [`REPS`] each); the record reports the median, minimum, and a
//! `winner_match_all` flag the CI gate pins at 1.

use std::time::Instant;

use overgen::Overlay;
use overgen_adg::{SysAdg, SystemParams};
use overgen_dse::{system_dse_sim, SystemDseConfig};
use overgen_model::{breakdown, weighted_geomean_ipc, AnalyticModel};
use overgen_sim::{simulate, SimConfig};
use overgen_telemetry::{fs::write_atomic, json};
use overgen_workloads as workloads;

use crate::harness::{results_dir, seed};
use crate::table::Table;

/// Timing repetitions per path (minimum wins, to shed scheduler noise).
const REPS: usize = 2;

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct SimRow {
    pub name: String,
    /// Grid points that fit the device budget.
    pub feasible: u64,
    /// Feasible points skipped by the analytic bound.
    pub pruned: u64,
    /// Feasible points the pruned sweep actually simulated.
    pub admitted: u64,
    /// Admitted points answered from the sibling-reuse cache.
    pub reused: u64,
    /// Cold exhaustive fold seconds (best of [`REPS`]).
    pub baseline_s: f64,
    /// `system_dse_sim` with pruning, seconds (best of [`REPS`]).
    pub pruned_s: f64,
    /// `baseline_s / pruned_s`.
    pub speedup: f64,
    /// Same winning parameters and exact score bits on both paths.
    pub winner_match: bool,
}

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct SimReportBench {
    pub rows: Vec<SimRow>,
    pub median_speedup: f64,
    pub min_speedup: f64,
    pub max_speedup: f64,
    pub winner_match_all: bool,
}

/// The sweep grid: a realistic system-DSE sweep — the full tile range the
/// device budget can admit plus four-point memory-system axes (512 points,
/// 64 memory configurations per tile count). Batching pays off exactly when
/// many sibling points share one compiled schedule, so the grid must be
/// sized like the searches `system_dse_sim` actually serves, not like the
/// unit-test grids.
fn grid() -> SystemDseConfig {
    SystemDseConfig {
        max_tiles: 8,
        l2_banks_grid: vec![2, 4, 8, 16],
        l2_kb_grid: vec![256, 512, 1024, 2048],
        noc_bw_grid: vec![16, 32, 64, 128],
        ..Default::default()
    }
}

/// The selection predicate of the system DSE fold, replicated here so the
/// baseline is a true differential check against `system_dse_sim` rather
/// than a call into the code under test: prefer strictly better scores; on
/// (near-)ties prefer more tiles. Must mirror `beats` in
/// `crates/dse/src/system.rs`.
fn beats(best: &Option<(SystemParams, f64)>, sys: &SystemParams, score: f64) -> bool {
    match best {
        None => true,
        Some((b_sys, b_score)) => {
            score > b_score * 1.001 || (score >= b_score * 0.999 && sys.tiles > b_sys.tiles)
        }
    }
}

/// The pre-batching cost model: walk the full grid in canonical order and
/// call the public `simulate()` entry point on every feasible point — a
/// fresh `SysAdg` and a fresh stream extraction per point, no warm state,
/// no pruning. Returns the winner and the feasible-point count.
fn exhaustive_cold(
    overlay: &Overlay,
    app: &overgen::CompiledApp,
    cfg: &SystemDseConfig,
    sim_cfg: &SimConfig,
) -> (Option<(SystemParams, f64)>, u64) {
    let mut best: Option<(SystemParams, f64)> = None;
    let mut feasible = 0u64;
    for tiles in 1..=cfg.max_tiles {
        for &l2_banks in &cfg.l2_banks_grid {
            for &l2_kb in &cfg.l2_kb_grid {
                for &noc_bw in &cfg.noc_bw_grid {
                    let sys = SystemParams {
                        tiles,
                        l2_banks,
                        l2_kb,
                        noc_bw_bytes: noc_bw,
                        dram_channels: cfg.dram_channels,
                    };
                    let sys_adg = SysAdg::new(overlay.sys_adg.adg.clone(), sys);
                    let used = breakdown(&sys_adg, &AnalyticModel).total();
                    if !cfg.device.fits(&used, cfg.util_cap) {
                        continue;
                    }
                    feasible += 1;
                    let report = simulate(&app.mdfg, &app.schedule, &sys_adg, sim_cfg);
                    let score = weighted_geomean_ipc(&[(report.ipc, 1.0)]);
                    if beats(&best, &sys, score) {
                        best = Some((sys, score));
                    }
                }
            }
        }
    }
    (best, feasible)
}

/// Wall-clock one closure, best of [`REPS`].
fn best_of<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.expect("REPS >= 1"), best)
}

fn counter(name: &str) -> u64 {
    overgen_telemetry::current().map_or(0, |c| c.registry().counter_value(name))
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

/// Run the comparison and write `results/BENCH_sim.json`.
pub fn run() -> SimReportBench {
    let overlay = Overlay::general();
    let cfg = grid();
    let sim_cfg = SimConfig::default();
    let mut rows = Vec::new();
    for k in workloads::all() {
        let app = overlay
            .compile(&k)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", k.name()));

        let ((baseline, feasible), baseline_s) =
            best_of(|| exhaustive_cold(&overlay, &app, &cfg, &sim_cfg));

        let per = vec![(&app.mdfg, &app.schedule, 1.0)];
        let (pruned_before, admitted_before, reused_before) = (
            counter("sim.analytic.pruned"),
            counter("sim.analytic.admitted"),
            counter("sim.batch.reuse"),
        );
        let (candidate, pruned_s) = best_of(|| {
            system_dse_sim(
                &overlay.sys_adg.adg,
                &per,
                &AnalyticModel,
                &cfg,
                &sim_cfg,
                true,
            )
        });
        // Each repetition adds the same deterministic tallies.
        let pruned = (counter("sim.analytic.pruned") - pruned_before) / REPS as u64;
        let admitted = (counter("sim.analytic.admitted") - admitted_before) / REPS as u64;
        let reused = (counter("sim.batch.reuse") - reused_before) / REPS as u64;

        let winner_match = match (&baseline, &candidate) {
            (None, None) => true,
            (Some((s_b, v_b)), Some((s_c, v_c))) => s_b == s_c && v_b.to_bits() == v_c.to_bits(),
            _ => false,
        };
        rows.push(SimRow {
            name: k.name().to_string(),
            feasible,
            pruned,
            admitted,
            reused,
            baseline_s,
            pruned_s,
            speedup: baseline_s / pruned_s.max(1e-12),
            winner_match,
        });
    }

    let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    speedups.sort_by(f64::total_cmp);
    let report = SimReportBench {
        median_speedup: median(&speedups),
        min_speedup: speedups.first().copied().unwrap_or(0.0),
        max_speedup: speedups.last().copied().unwrap_or(0.0),
        winner_match_all: rows.iter().all(|r| r.winner_match),
        rows,
    };

    let grid_json = json::Obj::new()
        .u64(
            "points",
            u64::from(cfg.max_tiles)
                * (cfg.l2_banks_grid.len() * cfg.l2_kb_grid.len() * cfg.noc_bw_grid.len()) as u64,
        )
        .u64("max_tiles", u64::from(cfg.max_tiles))
        .finish();
    let workloads_json: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            json::Obj::new()
                .str("name", &r.name)
                .u64("feasible", r.feasible)
                .u64("pruned", r.pruned)
                .u64("admitted", r.admitted)
                .u64("reused", r.reused)
                .f64("baseline_seconds", r.baseline_s)
                .f64("pruned_seconds", r.pruned_s)
                .f64("speedup", r.speedup)
                .bool("winner_match", r.winner_match)
                .finish()
        })
        .collect();
    let summary = json::Obj::new()
        .u64("workloads", report.rows.len() as u64)
        .f64("median_speedup", report.median_speedup)
        .f64("min_speedup", report.min_speedup)
        .f64("max_speedup", report.max_speedup)
        .bool("winner_match_all", report.winner_match_all)
        .u64("pruned", report.rows.iter().map(|r| r.pruned).sum())
        .u64("admitted", report.rows.iter().map(|r| r.admitted).sum())
        .u64("reused", report.rows.iter().map(|r| r.reused).sum())
        .finish();
    let record = json::Obj::new()
        .str("bench", "sim")
        .u64("seed", seed())
        .raw("grid", &grid_json)
        .raw("workloads", &format!("[{}]", workloads_json.join(",")))
        .raw("summary", &summary)
        .finish();
    let path = results_dir().join("BENCH_sim.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &SimReportBench) -> String {
    let mut t = Table::new([
        "workload",
        "feasible",
        "pruned",
        "admitted",
        "reused",
        "cold (ms)",
        "warm (ms)",
        "speedup",
        "winner",
    ]);
    for row in &r.rows {
        t.row([
            row.name.clone(),
            row.feasible.to_string(),
            row.pruned.to_string(),
            row.admitted.to_string(),
            row.reused.to_string(),
            format!("{:.1}", row.baseline_s * 1e3),
            format!("{:.1}", row.pruned_s * 1e3),
            format!("{:.1}x", row.speedup),
            if row.winner_match { "ok" } else { "DIVERGED" }.into(),
        ]);
    }
    format!(
        "Simulator-backed system DSE: pruned warm batches vs cold exhaustive\n\n{t}\n\
         median speedup {:.1}x (min {:.1}x, max {:.1}x), winners {}\n\
         Record: results/BENCH_sim.json\n",
        r.median_speedup,
        r.min_speedup,
        r.max_speedup,
        if r.winner_match_all {
            "identical on every workload"
        } else {
            "DIVERGED"
        },
    )
}
