//! Rewrite-engine benchmark (`BENCH_rewrite.json`).
//!
//! Three measurements back the rewrite engine's claims:
//!
//! 1. **Fast-path share, compound off** — one small DSE run per paper
//!    workload (all 19) with single-rule proposals (the default,
//!    `compound: 1`), pooling how many scheduling decisions resolved on
//!    the repair fast path. The inferred footprints and delta-derived
//!    repair scopes must keep this share at the level the hand-maintained
//!    classification achieved (`BENCH_repair.json`'s ~0.83).
//!
//! 2. **Fast-path share + amortization, compound on** — the same runs
//!    with `compound: 3`. Follow-up rules draw from the benign subset, so
//!    the share must stay at its single-rule level; because each proposal
//!    carries several rule applications but only one evaluation, the
//!    wall-clock *per application* drops — reported as the per-application
//!    speedup of compound mode over single-rule mode.
//!
//! 3. **Inference oracle** — an explicit release-mode pass (the
//!    `debug_assert!` in `RuleSet::apply_index` is compiled out here)
//!    applying seeded random rules on every workload's seed mesh and
//!    counting applications whose inferred footprint is *weaker* than the
//!    legacy hand classification. The count must be zero; the record also
//!    reports how many were exactly equal (all of them, for the ported
//!    rules).

use std::time::Instant;

use overgen_adg::{SysAdg, SystemParams};
use overgen_compiler::{lower, LowerChoices};
use overgen_dse::{Dse, DseConfig, RuleSet, TransformCtx};
use overgen_ir::Kernel;
use overgen_scheduler::schedule;
use overgen_telemetry::{fs::write_atomic, json, Rng};
use overgen_workloads as workloads;

use crate::harness::{dse_config, dse_iters, results_dir, seed};
use crate::table::Table;

/// Rule applications per workload in the oracle pass.
const ORACLE_STEPS: u64 = 40;

/// Pooled coverage of one compound setting across all workloads.
#[derive(Debug, Clone, Default)]
pub struct ModeReport {
    /// The `DseConfig::compound` cap this mode ran with.
    pub compound: usize,
    /// Pooled proposals (DSE iterations) across all workloads.
    pub proposals: usize,
    /// Pooled rule applications (`dse.rewrite.applied`).
    pub applications: u64,
    /// Pooled multi-rule proposals (`dse.rewrite.compound`).
    pub compound_proposals: u64,
    /// Pooled fast-path repairs / fallback repairs / full schedules.
    pub fast: usize,
    /// See `fast`.
    pub fallback: usize,
    /// See `fast`.
    pub full: usize,
    /// `fast / (fast + fallback + full)`.
    pub fast_share: f64,
    /// Summed wall seconds of the DSE runs.
    pub wall_seconds: f64,
}

/// Per-workload fast shares for both modes.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Workload name.
    pub name: String,
    /// Fast-path share with `compound: 1`.
    pub share_off: f64,
    /// Fast-path share with `compound: 3`.
    pub share_on: f64,
}

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    /// Coverage with compound proposals off (`compound: 1`).
    pub off: ModeReport,
    /// Coverage with compound proposals on (`compound: 3`).
    pub on: ModeReport,
    /// Per-workload shares.
    pub rows: Vec<WorkloadRow>,
    /// Wall micro-seconds per rule application, off / on.
    pub per_application_us: (f64, f64),
    /// Per-application speedup of compound mode (off us / on us).
    pub per_application_speedup: f64,
    /// Oracle pass: total applications checked.
    pub oracle_applications: usize,
    /// Applications whose inferred footprint was weaker than hand.
    pub oracle_weaker: usize,
    /// Applications whose inferred footprint equalled the hand class.
    pub oracle_exact: usize,
}

fn counter(name: &str) -> u64 {
    overgen_telemetry::current().map_or(0, |c| c.registry().counter_value(name))
}

/// One small DSE run; returns (fast, fallback, full, proposals, seconds).
fn coverage_run(kernel: &Kernel, compound: usize) -> (usize, usize, usize, usize, f64) {
    // The share definition counts the run's seed full schedules, so short
    // runs under-report it; the full iteration budget amortizes them the
    // way `BENCH_repair.json`'s coverage run does.
    let iters = dse_iters();
    let cfg = DseConfig {
        compound,
        ..dse_config(iters, seed() ^ 0x9E1F_12A7 ^ compound as u64)
    };
    let t = Instant::now();
    let r = Dse::new(vec![kernel.clone()], cfg)
        .run()
        .expect("workload schedules on its seed mesh");
    let secs = t.elapsed().as_secs_f64();
    let s = r.stats;
    (
        s.repair_fast,
        s.repair_fallback,
        s.full_schedules,
        s.iterations,
        secs,
    )
}

/// Pooled coverage of one mode over every paper workload; also fills the
/// per-workload share column via `col`.
fn coverage(
    compound: usize,
    rows: &mut Vec<WorkloadRow>,
    col: impl Fn(&mut WorkloadRow) -> &mut f64,
) -> ModeReport {
    let applied0 = counter("dse.rewrite.applied");
    let compound0 = counter("dse.rewrite.compound");
    let mut m = ModeReport {
        compound,
        ..Default::default()
    };
    for (i, k) in workloads::all().iter().enumerate() {
        let (fast, fallback, full, proposals, secs) = coverage_run(k, compound);
        let decisions = (fast + fallback + full).max(1);
        if rows.len() <= i {
            rows.push(WorkloadRow {
                name: k.name().to_string(),
                share_off: 0.0,
                share_on: 0.0,
            });
        }
        *col(&mut rows[i]) = fast as f64 / decisions as f64;
        m.fast += fast;
        m.fallback += fallback;
        m.full += full;
        m.proposals += proposals;
        m.wall_seconds += secs;
    }
    m.applications = counter("dse.rewrite.applied") - applied0;
    m.compound_proposals = counter("dse.rewrite.compound") - compound0;
    let decisions = (m.fast + m.fallback + m.full).max(1);
    m.fast_share = m.fast as f64 / decisions as f64;
    m
}

/// The explicit release-mode inference oracle.
fn oracle() -> (usize, usize, usize) {
    let set = RuleSet::legacy();
    let mut rng = Rng::seed_from_u64(seed() ^ 0x04AC_1E00);
    let (mut total, mut weaker, mut exact) = (0, 0, 0);
    for k in workloads::all() {
        let kernels = std::slice::from_ref(&k);
        let caps = Dse::cap_pool(kernels);
        let mut adg = Dse::seed_adg(kernels);
        let sys = SysAdg::new(adg.clone(), SystemParams::default());
        let mdfg = lower(&k, 0, &LowerChoices::default()).expect("unroll-1 lowering succeeds");
        let Ok(prior) = schedule(&mdfg, &sys, None) else {
            continue;
        };
        let mut schedules = vec![prior];
        for step in 0..ORACLE_STEPS {
            let preserving = rng.gen_bool(0.5);
            let mut ctx = TransformCtx {
                cap_pool: &caps,
                schedules: &mut schedules,
                preserving,
            };
            let app = set.apply_random(&mut adg, &mut ctx, &mut rng, step);
            total += 1;
            if app.inferred < app.hand {
                weaker += 1;
            }
            if app.inferred == app.hand {
                exact += 1;
            }
        }
    }
    (total, weaker, exact)
}

/// Run all three measurements and write `results/BENCH_rewrite.json`.
pub fn run() -> RewriteReport {
    let mut rows = Vec::new();
    let off = coverage(1, &mut rows, |r| &mut r.share_off);
    let on = coverage(3, &mut rows, |r| &mut r.share_on);
    let us = |m: &ModeReport| m.wall_seconds * 1e6 / (m.applications.max(1) as f64);
    let per_application_us = (us(&off), us(&on));
    let per_application_speedup = per_application_us.0 / per_application_us.1.max(1e-12);
    let (oracle_applications, oracle_weaker, oracle_exact) = oracle();
    let report = RewriteReport {
        off,
        on,
        rows,
        per_application_us,
        per_application_speedup,
        oracle_applications,
        oracle_weaker,
        oracle_exact,
    };

    let mode_json = |m: &ModeReport| {
        json::Obj::new()
            .u64("compound", m.compound as u64)
            .u64("proposals", m.proposals as u64)
            .u64("applications", m.applications)
            .u64("compound_proposals", m.compound_proposals)
            .u64("repair_fast", m.fast as u64)
            .u64("repair_fallback", m.fallback as u64)
            .u64("full_schedules", m.full as u64)
            .f64("fast_share", m.fast_share)
            .f64("wall_seconds", m.wall_seconds)
            .finish()
    };
    let rows_json: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            json::Obj::new()
                .str("name", &r.name)
                .f64("fast_share_off", r.share_off)
                .f64("fast_share_on", r.share_on)
                .finish()
        })
        .collect();
    let oracle_json = json::Obj::new()
        .u64("applications", report.oracle_applications as u64)
        .u64("weaker", report.oracle_weaker as u64)
        .u64("exact", report.oracle_exact as u64)
        .finish();
    let summary = json::Obj::new()
        .u64("workloads", report.rows.len() as u64)
        .f64("fast_share_off", report.off.fast_share)
        .f64("fast_share_on", report.on.fast_share)
        .f64("per_application_speedup", report.per_application_speedup)
        .u64("oracle_weaker", report.oracle_weaker as u64)
        .finish();
    let record = json::Obj::new()
        .str("bench", "rewrite")
        .u64("seed", seed())
        .raw("compound_off", &mode_json(&report.off))
        .raw("compound_on", &mode_json(&report.on))
        .raw("workloads", &format!("[{}]", rows_json.join(",")))
        .raw("oracle", &oracle_json)
        .raw("summary", &summary)
        .finish();
    let path = results_dir().join("BENCH_rewrite.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &RewriteReport) -> String {
    let mut t = Table::new(["metric", "compound off", "compound on"]);
    t.row([
        "proposals".into(),
        r.off.proposals.to_string(),
        r.on.proposals.to_string(),
    ]);
    t.row([
        "rule applications".into(),
        r.off.applications.to_string(),
        r.on.applications.to_string(),
    ]);
    t.row([
        "multi-rule proposals".into(),
        r.off.compound_proposals.to_string(),
        r.on.compound_proposals.to_string(),
    ]);
    t.row([
        "fast-path repairs".into(),
        r.off.fast.to_string(),
        r.on.fast.to_string(),
    ]);
    t.row([
        "fast share".into(),
        format!("{:.1}%", r.off.fast_share * 100.0),
        format!("{:.1}%", r.on.fast_share * 100.0),
    ]);
    t.row([
        "us per application".into(),
        format!("{:.0}", r.per_application_us.0),
        format!("{:.0}", r.per_application_us.1),
    ]);
    format!(
        "Rewrite engine: inferred footprints and compound proposals over \
         {} workloads\n\n{t}\n\
         Per-application speedup of compound mode: {:.2}x\n\
         Inference oracle: {} applications, {} weaker than hand (must be 0), \
         {} exact\nRecord: results/BENCH_rewrite.json\n",
        r.rows.len(),
        r.per_application_speedup,
        r.oracle_applications,
        r.oracle_weaker,
        r.oracle_exact,
    )
}
