//! Constraint-aware DSE benchmark (`BENCH_pareto.json`).
//!
//! Two legs over the same domain and seed:
//!
//! 1. **Unconstrained** — the default weighted-geomean-IPC objective. Its
//!    [`ParetoFront`] (estimated IPC against the four accelerator resource
//!    channels) is the reference trade-off curve; each surviving point is
//!    emitted as a `bench.pareto.point` trace event.
//! 2. **Budgeted** — [`Objective::ConstrainedIpc`] under a deliberately
//!    tight device budget: the seed accelerator's footprint scaled by
//!    1.02, so almost any growth proposal overflows a channel. The leg
//!    must reject at least one proposal before system DSE
//!    (`dse.eval.infeasible > 0`) and land on a winner that admits under
//!    the budget — both are recorded as acceptance gates in the JSON.

use overgen_dse::{Dse, DseStats, Objective, ParetoFront};
use overgen_ir::Kernel;
use overgen_model::{accelerator_resources, AnalyticModel, DeviceBudget, Resources};
use overgen_telemetry::{event, fs::write_atomic, json};
use overgen_workloads as workloads;

use crate::harness::{dse_config, dse_iters, results_dir, seed};
use crate::table::Table;

/// Domain for both legs (a MachSuite slice, same as the repair and
/// checkpoint benches).
pub const DOMAIN: [&str; 3] = ["stencil-2d", "gemm", "ellpack"];

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct ParetoReport {
    /// Final objective of the unconstrained leg.
    pub default_objective: f64,
    /// Final objective of the budgeted leg.
    pub constrained_objective: f64,
    /// The unconstrained leg's IPC-vs-resources frontier.
    pub frontier: ParetoFront,
    /// Frontier size of the budgeted leg.
    pub constrained_frontier: usize,
    /// The tight budget the second leg ran under.
    pub budget: DeviceBudget,
    /// Proposals the budget rejected before system DSE (gate: > 0).
    pub infeasible: usize,
    /// The budgeted winner fits its own budget (gate: true).
    pub winner_admitted: bool,
    /// Stats of the budgeted leg.
    pub stats: DseStats,
}

fn domain() -> Vec<Kernel> {
    DOMAIN
        .iter()
        .map(|n| workloads::by_name(n).expect("workload exists"))
        .collect()
}

fn res_json(r: Resources) -> String {
    json::Obj::new()
        .f64("lut", r.lut)
        .f64("ff", r.ff)
        .f64("bram", r.bram)
        .f64("dsp", r.dsp)
        .finish()
}

/// Run both legs and write `results/BENCH_pareto.json`.
pub fn run() -> ParetoReport {
    let iters = dse_iters();
    let run_seed = seed() ^ 0x9A2E_70F1;

    // Leg 1: unconstrained reference run.
    let base = Dse::new(domain(), dse_config(iters, run_seed))
        .run()
        .expect("domain schedules");
    for p in base.pareto.points() {
        event!(
            "bench.pareto.point",
            ipc = p.ipc,
            lut = p.resources.lut,
            ff = p.resources.ff,
            bram = p.resources.bram,
            dsp = p.resources.dsp,
        );
    }

    // Leg 2: the same search under a budget barely above the seed design,
    // so growth proposals trip the feasibility gate.
    let seed_res = accelerator_resources(&Dse::seed_adg(&domain()), &AnalyticModel);
    let budget = DeviceBudget {
        name: "bench-tight",
        limit: seed_res * 1.02,
        ..DeviceBudget::vcu118()
    };
    let mut cfg = dse_config(iters, run_seed);
    cfg.objective = Objective::ConstrainedIpc(budget);
    let constrained = Dse::new(domain(), cfg).run().expect("domain schedules");
    let winner_res = accelerator_resources(&constrained.sys_adg.adg, &AnalyticModel);

    let report = ParetoReport {
        default_objective: base.objective,
        constrained_objective: constrained.objective,
        frontier: base.pareto,
        constrained_frontier: constrained.pareto.len(),
        winner_admitted: budget.admits(&winner_res),
        budget,
        infeasible: constrained.stats.infeasible,
        stats: constrained.stats,
    };

    let mut frontier = String::from("[");
    for (i, p) in report.frontier.points().iter().enumerate() {
        if i > 0 {
            frontier.push(',');
        }
        frontier.push_str(
            &json::Obj::new()
                .f64("ipc", p.ipc)
                .raw("resources", &res_json(p.resources))
                .finish(),
        );
    }
    frontier.push(']');

    let record = json::Obj::new()
        .str("bench", "pareto")
        .u64("seed", seed())
        .u64("dse_iters", iters as u64)
        .f64("default_objective", report.default_objective)
        .f64("constrained_objective", report.constrained_objective)
        .str("budget", report.budget.name)
        .raw("budget_limit", &res_json(report.budget.limit))
        .u64("infeasible", report.infeasible as u64)
        .bool("winner_admitted", report.winner_admitted)
        .u64("frontier_points", report.frontier.len() as u64)
        .u64(
            "constrained_frontier_points",
            report.constrained_frontier as u64,
        )
        .raw("frontier", &frontier)
        .finish();
    let path = results_dir().join("BENCH_pareto.json");
    if let Err(e) = write_atomic(&path, format!("{record}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
    report
}

/// Render.
pub fn render(r: &ParetoReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row([
        "objective (default / budgeted)".into(),
        format!(
            "{:.3} / {:.3}",
            r.default_objective, r.constrained_objective
        ),
    ]);
    t.row([
        "budget".into(),
        format!("{} (seed footprint x 1.02)", r.budget.name),
    ]);
    t.row([
        "infeasible rejections".into(),
        format!(
            "{} ({})",
            r.infeasible,
            if r.infeasible > 0 {
                "gate met"
            } else {
                "GATE MISSED"
            }
        ),
    ]);
    t.row([
        "budgeted winner fits".into(),
        (if r.winner_admitted { "yes" } else { "NO" }).to_string(),
    ]);
    t.row([
        "frontier points (default / budgeted)".into(),
        format!("{} / {}", r.frontier.len(), r.constrained_frontier),
    ]);
    if let Some(best) = r.frontier.points().first() {
        t.row([
            "frontier head (best IPC)".into(),
            format!("ipc {:.3} @ {:.0} LUT", best.ipc, best.resources.lut),
        ]);
    }
    if let Some(lean) = r.frontier.points().last() {
        t.row([
            "frontier tail (leanest)".into(),
            format!("ipc {:.3} @ {:.0} LUT", lean.ipc, lean.resources.lut),
        ]);
    }
    format!(
        "Constraint-aware DSE: device budgets and the IPC/resource frontier\n\n{t}\n\
         The budgeted leg must reject at least one growth proposal before\n\
         system DSE (dse.eval.infeasible > 0) and still land on a feasible\n\
         winner. Record: results/BENCH_pareto.json\n"
    )
}
