//! One module per paper table/figure (see DESIGN.md section 4 for the index).

pub mod ablations;
pub mod checkpoint;
pub mod dse;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod pareto;
pub mod placement;
pub mod repair;
pub mod rewrite;
pub mod service;
pub mod sim;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
