//! Experiment harness reproducing every table and figure of the OverGen
//! paper's evaluation (§VIII). One binary per table/figure lives in
//! `src/bin/`; shared machinery (overlay generation, AutoDSE runs, text
//! tables) lives here so the criterion micro-benches and the binaries stay
//! consistent.
//!
//! Scale knobs (environment variables):
//!
//! - `OVERGEN_DSE_ITERS`: spatial-DSE iterations per overlay (default 60;
//!   the paper-scale runs used in EXPERIMENTS.md set 200+).
//! - `OVERGEN_SEED`: RNG seed (default 2022).

pub mod compare;
pub mod experiments;
pub mod harness;
pub mod profile_export;
pub mod table;

pub use harness::*;
pub use table::Table;
