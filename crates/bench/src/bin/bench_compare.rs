//! `bench-compare` — diff two benchmark records with tolerance bands.
//!
//! ```text
//! bench-compare baseline.json candidate.json \
//!     min:dse.fast_share=0.5 \
//!     max-drop:timing.median_speedup=0.5 \
//!     require:timing.proposals
//! ```
//!
//! Both files are flattened to dotted numeric paths and every rule is
//! checked against the candidate (relative rules also read the baseline).
//! Exit status: 0 when every rule holds, 1 on any violation (the CI
//! perf-regression gate keys off this), 2 on usage errors.

use overgen_bench::compare::{compare, Rule};
use overgen_telemetry::json::{self, Value};

fn load(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-compare: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-compare: {path} is not valid JSON: {e:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: bench-compare <baseline.json> <candidate.json> <rule>...");
        eprintln!("rules: min:PATH=V  max:PATH=V  max-drop:PATH=F  max-rise:PATH=F  require:PATH");
        std::process::exit(2);
    }
    let baseline = load(&args[0]);
    let candidate = load(&args[1]);
    let rules: Vec<Rule> = args[2..]
        .iter()
        .map(|s| match Rule::parse(s) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-compare: {e}");
                std::process::exit(2);
            }
        })
        .collect();

    let report = compare(&baseline, &candidate, &rules);
    for line in &report.passed {
        println!("ok   {line}");
    }
    for line in &report.violations {
        println!("FAIL {line}");
    }
    if report.ok() {
        println!("bench-compare: {} rule(s) passed", report.passed.len());
    } else {
        println!(
            "bench-compare: {} of {} rule(s) violated",
            report.violations.len(),
            rules.len()
        );
        std::process::exit(1);
    }
}
