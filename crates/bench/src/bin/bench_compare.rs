//! `bench-compare` — diff two benchmark records with tolerance bands.
//!
//! ```text
//! bench-compare baseline.json candidate.json \
//!     min:dse.fast_share=0.5 \
//!     max-drop:timing.median_speedup=0.5 \
//!     require:timing.proposals
//! ```
//!
//! Both files are flattened to dotted numeric paths and every rule is
//! checked against the candidate (relative rules also read the baseline).
//!
//! Exit status distinguishes *why* the gate failed, so CI can treat a
//! genuine regression differently from a missing baseline artifact:
//!
//! - `0` — every rule holds;
//! - `1` — at least one rule violated (each `FAIL` line names the rule
//!   that fired, e.g. `[min:summary.identity=1] ...`);
//! - `2` — usage error (bad arguments or an unparseable rule);
//! - `3` — baseline file missing, unreadable, or not valid JSON;
//! - `4` — candidate file missing, unreadable, or not valid JSON.

use overgen_bench::compare::{compare, Rule};
use overgen_telemetry::json::{self, Value};

/// Load one record; `role` is "baseline" or "candidate" and picks the
/// exit code (3 or 4) so a wrapper can tell which side was absent.
fn load(path: &str, role: &str, code: i32) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-compare: cannot read {role} {path}: {e}");
            std::process::exit(code);
        }
    };
    match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-compare: {role} {path} is not valid JSON: {e:?}");
            std::process::exit(code);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: bench-compare <baseline.json> <candidate.json> <rule>...");
        eprintln!("rules: min:PATH=V  max:PATH=V  max-drop:PATH=F  max-rise:PATH=F  require:PATH");
        std::process::exit(2);
    }
    let baseline = load(&args[0], "baseline", 3);
    let candidate = load(&args[1], "candidate", 4);
    let rules: Vec<Rule> = args[2..]
        .iter()
        .map(|s| match Rule::parse(s) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-compare: {e}");
                std::process::exit(2);
            }
        })
        .collect();

    let report = compare(&baseline, &candidate, &rules);
    for line in &report.passed {
        println!("ok   {line}");
    }
    for line in &report.violations {
        println!("FAIL {line}");
    }
    if report.ok() {
        println!("bench-compare: {} rule(s) passed", report.passed.len());
    } else {
        println!(
            "bench-compare: {} of {} rule(s) violated",
            report.violations.len(),
            rules.len()
        );
        std::process::exit(1);
    }
}
