//! Benchmarks the incremental repair fast path against full re-placement
//! and records the speedup in `results/BENCH_repair.json`.

fn main() {
    overgen_bench::run_experiment("repair", || {
        let report = overgen_bench::experiments::repair::run();
        overgen_bench::experiments::repair::render(&report)
    });
}
