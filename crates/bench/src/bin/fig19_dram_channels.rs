//! Regenerates Figure 19 (Q7): effects of DRAM channels.

fn main() {
    let rows = overgen_bench::experiments::fig19::run();
    print!("{}", overgen_bench::experiments::fig19::render(&rows));
}
