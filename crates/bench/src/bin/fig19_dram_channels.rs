//! Regenerates Figure 19 (Q7): effects of DRAM channels.

fn main() {
    overgen_bench::run_experiment("fig19", || {
        let rows = overgen_bench::experiments::fig19::run();
        overgen_bench::experiments::fig19::render(&rows)
    });
}
