//! Benchmarks the pruned warm-batch simulator sweep against the cold
//! exhaustive baseline and records the speedup in `results/BENCH_sim.json`.

fn main() {
    overgen_bench::run_experiment("sim", || {
        let report = overgen_bench::experiments::sim::run();
        overgen_bench::experiments::sim::render(&report)
    });
}
