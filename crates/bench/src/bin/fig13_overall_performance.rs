//! Regenerates Figure 13 (Q1): overall performance comparison.

fn main() {
    overgen_bench::run_experiment("fig13", || {
        let rows = overgen_bench::experiments::fig13::run();
        overgen_bench::experiments::fig13::render(&rows)
    });
}
