//! Regenerates Figure 13 (Q1): overall performance comparison.

fn main() {
    let rows = overgen_bench::experiments::fig13::run();
    print!("{}", overgen_bench::experiments::fig13::render(&rows));
}
