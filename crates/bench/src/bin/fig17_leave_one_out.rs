//! Regenerates Figure 17 (Q5): leave-one-out flexibility evaluation.

fn main() {
    overgen_bench::run_experiment("fig17", || {
        let rows = overgen_bench::experiments::fig17::run();
        overgen_bench::experiments::fig17::render(&rows)
    });
}
