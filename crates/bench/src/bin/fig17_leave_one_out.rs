//! Regenerates Figure 17 (Q5): leave-one-out flexibility evaluation.

fn main() {
    let rows = overgen_bench::experiments::fig17::run();
    print!("{}", overgen_bench::experiments::fig17::render(&rows));
}
