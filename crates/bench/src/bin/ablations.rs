//! Runs the ablation studies DESIGN.md calls out beyond the paper's own
//! figures: one-hot bypass end-to-end, reuse-aware placement value, and
//! MLP-vs-analytic resource model fidelity.

fn main() {
    println!("Ablation 1: stream-table one-hot bypass (Figure 11, end-to-end)\n");
    println!("{}", overgen_bench::experiments::ablations::one_hot_bypass());
    println!("Ablation 2: reuse-aware array placement (value of spatial memories)\n");
    println!("{}", overgen_bench::experiments::ablations::placement_value());
    println!("Ablation 3: MLP vs analytic resource model\n");
    println!("{}", overgen_bench::experiments::ablations::mlp_vs_analytic());
}
