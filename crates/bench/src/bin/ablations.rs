//! Runs the ablation studies DESIGN.md calls out beyond the paper's own
//! figures: one-hot bypass end-to-end, reuse-aware placement value, and
//! MLP-vs-analytic resource model fidelity.

fn main() {
    overgen_bench::run_experiment("ablations", || {
        format!(
            "Ablation 1: stream-table one-hot bypass (Figure 11, end-to-end)\n\n{}\
             Ablation 2: reuse-aware array placement (value of spatial memories)\n\n{}\
             Ablation 3: MLP vs analytic resource model\n\n{}",
            overgen_bench::experiments::ablations::one_hot_bypass(),
            overgen_bench::experiments::ablations::placement_value(),
            overgen_bench::experiments::ablations::mlp_vs_analytic(),
        )
    });
}
