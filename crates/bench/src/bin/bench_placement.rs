//! Sweeps tile counts through the spatial placement model on every paper
//! workload and records the winners in `results/BENCH_placement.json`.

fn main() {
    overgen_bench::run_experiment("placement", || {
        let report = overgen_bench::experiments::placement::run();
        overgen_bench::experiments::placement::render(&report)
    });
}
