//! Regenerates Figure 15 (Q3): DSE and synthesis time comparison.

fn main() {
    let rows = overgen_bench::experiments::fig15::run();
    print!("{}", overgen_bench::experiments::fig15::render(&rows));
}
