//! Regenerates Figure 15 (Q3): DSE and synthesis time comparison.

fn main() {
    overgen_bench::run_experiment("fig15", || {
        let rows = overgen_bench::experiments::fig15::run();
        overgen_bench::experiments::fig15::render(&rows)
    });
}
