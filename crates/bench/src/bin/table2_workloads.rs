//! Regenerates Table II: workload specification.

fn main() {
    let rows = overgen_bench::experiments::table2::run();
    print!("{}", overgen_bench::experiments::table2::render(&rows));
}
