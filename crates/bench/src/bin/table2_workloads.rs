//! Regenerates Table II: workload specification.

fn main() {
    overgen_bench::run_experiment("table2", || {
        let rows = overgen_bench::experiments::table2::run();
        overgen_bench::experiments::table2::render(&rows)
    });
}
