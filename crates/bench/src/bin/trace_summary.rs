//! `trace-summary` — digest a JSONL telemetry trace into a per-phase
//! time/attribution table.
//!
//! ```text
//! trace-summary results/fig13.trace.jsonl
//! ```
//!
//! Reads the trace produced by an `OVERGEN_TRACE=1` experiment run (or any
//! file of `overgen-telemetry` event lines) and prints:
//!
//! - per-span-name aggregates: count, total/mean duration, share of the
//!   root span;
//! - event-type counts;
//! - the final metrics-registry snapshot, when the trace carries one.
//!
//! Durations are in the trace's own clock units: microseconds for
//! wall-clock traces, logical event ticks for deterministic ones.

use std::collections::BTreeMap;

use overgen_telemetry::json::{self, Value};

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total: u64,
    max: u64,
    min_depth: u64,
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace-summary <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-summary: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut phases: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    let mut events: BTreeMap<String, u64> = BTreeMap::new();
    let mut metrics: Option<Value> = None;
    let mut lines = 0u64;
    let mut malformed = 0u64;

    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        lines += 1;
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                malformed += 1;
                continue;
            }
        };
        match v.get("type").and_then(Value::as_str) {
            Some("span") => {
                let name = v
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                let dur = v.get("dur").and_then(Value::as_u64).unwrap_or(0);
                let depth = v.get("depth").and_then(Value::as_u64).unwrap_or(0);
                let agg = phases.entry(name).or_insert(PhaseAgg {
                    min_depth: u64::MAX,
                    ..Default::default()
                });
                agg.count += 1;
                agg.total += dur;
                agg.max = agg.max.max(dur);
                agg.min_depth = agg.min_depth.min(depth);
            }
            Some("metrics") => metrics = v.get("metrics").cloned(),
            Some(kind) => *events.entry(kind.to_string()).or_insert(0) += 1,
            None => malformed += 1,
        }
    }

    println!("trace: {path} ({lines} lines, {malformed} malformed)");

    if phases.is_empty() {
        println!("\nno span events found");
    } else {
        // Root time = total of the shallowest spans; attribution is
        // relative to it (nested spans overlap, so shares can exceed 100%).
        let root_depth = phases.values().map(|a| a.min_depth).min().unwrap_or(0);
        let root_total: u64 = phases
            .values()
            .filter(|a| a.min_depth == root_depth)
            .map(|a| a.total)
            .sum();
        let mut rows: Vec<(&String, &PhaseAgg)> = phases.iter().collect();
        rows.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));
        println!(
            "\n{:<24} {:>8} {:>12} {:>10} {:>10} {:>7}",
            "phase", "count", "total", "mean", "max", "share"
        );
        for (name, a) in rows {
            let share = if root_total > 0 {
                100.0 * a.total as f64 / root_total as f64
            } else {
                0.0
            };
            println!(
                "{:<24} {:>8} {:>12} {:>10.1} {:>10} {:>6.1}%",
                name,
                a.count,
                a.total,
                a.total as f64 / a.count.max(1) as f64,
                a.max,
                share,
            );
        }
    }

    if !events.is_empty() {
        let mut rows: Vec<(&String, &u64)> = events.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        println!("\n{:<24} {:>8}", "event", "count");
        for (kind, n) in rows {
            println!("{kind:<24} {n:>8}");
        }
    }

    if let Some(Value::Obj(pairs)) = metrics {
        println!("\n{:<24} {:>14}", "metric", "value");
        for (k, v) in pairs {
            match v {
                Value::Num(n) => println!("{k:<24} {n:>14}"),
                Value::Obj(hist) => {
                    // Histogram snapshot: print the headline stats.
                    let g = |key: &str| hist.get(key).and_then(Value::as_f64).unwrap_or(0.0);
                    let count = g("count");
                    let mean = if count > 0.0 { g("sum") / count } else { 0.0 };
                    println!(
                        "{k:<24} count={count} mean={mean:.1} p50={} p90={} p99={} max={}",
                        g("p50"),
                        g("p90"),
                        g("p99"),
                        g("max"),
                    );
                }
                other => println!("{k:<24} {other:>14?}"),
            }
        }
    }
}
