//! Regenerates Table III: suite-specific overlay specifications.

fn main() {
    let cols = overgen_bench::experiments::table3::run();
    print!("{}", overgen_bench::experiments::table3::render(&cols));
}
