//! Regenerates Table III: suite-specific overlay specifications.

fn main() {
    overgen_bench::run_experiment("table3", || {
        let cols = overgen_bench::experiments::table3::run();
        overgen_bench::experiments::table3::render(&cols)
    });
}
