//! Regenerates Figure 14 (Q2): effect of tuned kernels.

fn main() {
    overgen_bench::run_experiment("fig14", || {
        let rows = overgen_bench::experiments::fig14::run();
        overgen_bench::experiments::fig14::render(&rows)
    });
}
