//! Regenerates Figure 14 (Q2): effect of tuned kernels.

fn main() {
    let rows = overgen_bench::experiments::fig14::run();
    print!("{}", overgen_bench::experiments::fig14::render(&rows));
}
