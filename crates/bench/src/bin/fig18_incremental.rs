//! Regenerates Figure 18 (Q6): incremental design optimization.

fn main() {
    let steps = overgen_bench::experiments::fig18::run();
    print!("{}", overgen_bench::experiments::fig18::render(&steps));
}
