//! Regenerates Figure 18 (Q6): incremental design optimization.

fn main() {
    overgen_bench::run_experiment("fig18", || {
        let steps = overgen_bench::experiments::fig18::run();
        overgen_bench::experiments::fig18::render(&steps)
    });
}
