//! Regenerates Table IV: HLS initiation-interval optimization.

fn main() {
    overgen_bench::run_experiment("table4", || {
        let rows = overgen_bench::experiments::table4::run();
        overgen_bench::experiments::table4::render(&rows)
    });
}
