//! Regenerates Table IV: HLS initiation-interval optimization.

fn main() {
    let rows = overgen_bench::experiments::table4::run();
    print!("{}", overgen_bench::experiments::table4::render(&rows));
}
