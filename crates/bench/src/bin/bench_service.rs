//! Measures the warm-cache speedup of the shared persistent evaluation
//! store and verifies concurrent-vs-sequential job identity, recording
//! both in `results/BENCH_service.json`.

fn main() {
    overgen_bench::run_experiment("service", || {
        let report = overgen_bench::experiments::service::run();
        overgen_bench::experiments::service::render(&report)
    });
}
