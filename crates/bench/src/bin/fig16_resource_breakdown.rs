//! Regenerates Figure 16 (Q4): FPGA resource breakdown per suite.

fn main() {
    overgen_bench::run_experiment("fig16", || {
        let mut out = String::new();
        for suite in overgen_ir::Suite::ALL {
            let (ov, hls) = overgen_bench::experiments::fig16::run_suite(suite);
            out.push_str(&overgen_bench::experiments::fig16::render(suite, &ov, &hls));
        }
        out
    });
}
