//! Regenerates Figure 16 (Q4): FPGA resource breakdown per suite.

fn main() {
    for suite in overgen_ir::Suite::ALL {
        let (ov, hls) = overgen_bench::experiments::fig16::run_suite(suite);
        print!("{}", overgen_bench::experiments::fig16::render(suite, &ov, &hls));
    }
}
