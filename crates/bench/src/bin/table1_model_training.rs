//! Regenerates Table I: resource-model training dataset + quality.
//! Pass `--full` for the paper-scale sample counts (slow).

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let o = overgen_bench::experiments::table1::run(full);
    print!("{}", overgen_bench::experiments::table1::render(&o));
}
