//! Regenerates Table I: resource-model training dataset + quality.
//! Pass `--full` for the paper-scale sample counts (slow).

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    overgen_bench::run_experiment("table1", || {
        let o = overgen_bench::experiments::table1::run(full);
        overgen_bench::experiments::table1::render(&o)
    });
}
