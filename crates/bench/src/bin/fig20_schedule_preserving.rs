//! Regenerates Figure 20 (Q8): schedule-preserving transform ablation.

fn main() {
    overgen_bench::run_experiment("fig20", || {
        let rows = overgen_bench::experiments::fig20::run();
        overgen_bench::experiments::fig20::render(&rows)
    });
}
