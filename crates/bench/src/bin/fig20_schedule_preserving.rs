//! Regenerates Figure 20 (Q8): schedule-preserving transform ablation.

fn main() {
    let rows = overgen_bench::experiments::fig20::run();
    print!("{}", overgen_bench::experiments::fig20::render(&rows));
}
