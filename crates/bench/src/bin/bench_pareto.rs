//! Runs the constraint-aware DSE benchmark: a budgeted run that must
//! reject infeasible proposals, plus the unconstrained IPC/resource
//! Pareto frontier, recorded in `results/BENCH_pareto.json`.

fn main() {
    overgen_bench::run_experiment("pareto", || {
        let report = overgen_bench::experiments::pareto::run();
        overgen_bench::experiments::pareto::render(&report)
    });
}
