//! Measures checkpoint write overhead and verifies kill-and-resume
//! equivalence, recording both in `results/BENCH_checkpoint.json`.

fn main() {
    overgen_bench::run_experiment("checkpoint", || {
        let report = overgen_bench::experiments::checkpoint::run();
        overgen_bench::experiments::checkpoint::render(&report)
    });
}
