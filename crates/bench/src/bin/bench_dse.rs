//! Benchmarks raw DSE engine throughput (proposals/sec, phase totals)
//! and records the baseline in `results/BENCH_dse.json`.

fn main() {
    overgen_bench::run_experiment("dse", || {
        let report = overgen_bench::experiments::dse::run();
        overgen_bench::experiments::dse::render(&report)
    });
}
