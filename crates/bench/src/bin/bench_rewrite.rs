//! Benchmarks the rewrite engine — fast-path share with inferred
//! footprints, compound-proposal amortization, and the release-mode
//! inference oracle — and records it in `results/BENCH_rewrite.json`.

fn main() {
    overgen_bench::run_experiment("rewrite", || {
        let report = overgen_bench::experiments::rewrite::run();
        overgen_bench::experiments::rewrite::render(&report)
    });
}
