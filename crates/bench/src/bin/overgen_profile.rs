//! `overgen-profile` — export a JSONL telemetry trace for profiling UIs.
//!
//! ```text
//! overgen-profile results/dse.trace.jsonl                 # phase table
//! overgen-profile results/dse.trace.jsonl --chrome out.json
//! ```
//!
//! Prints a flame-style phase table (span aggregates indented by nesting
//! depth, share of the root span) to stdout. With `--chrome PATH` it also
//! writes Chrome trace-event JSON loadable in `chrome://tracing` or
//! Perfetto (`-` writes to stdout instead of the table).
//!
//! Times are in the trace's own clock: microseconds for wall-clock
//! traces, logical ticks for deterministic (`OVERGEN_TRACE=1`) ones —
//! tick tables diff cleanly across machines, which is what the golden
//! check in `scripts/check.sh profile` relies on.

use overgen_bench::profile_export::{chrome_trace, phase_table};

fn main() {
    let mut trace: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => match args.next() {
                Some(p) => chrome = Some(p),
                None => usage("--chrome needs a path (or `-` for stdout)"),
            },
            "--help" | "-h" => usage(""),
            _ if trace.is_none() => trace = Some(a),
            _ => usage(&format!("unexpected argument `{a}`")),
        }
    }
    let Some(path) = trace else {
        usage("missing trace path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("overgen-profile: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    match chrome.as_deref() {
        Some("-") => {
            println!("{}", chrome_trace(&text));
            return;
        }
        Some(out) => {
            let json = chrome_trace(&text);
            if let Err(e) =
                overgen_telemetry::fs::write_atomic(std::path::Path::new(out), json.as_bytes())
            {
                eprintln!("overgen-profile: cannot write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out}");
        }
        None => {}
    }
    print!("{}", phase_table(&text));
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("overgen-profile: {err}");
    }
    eprintln!("usage: overgen-profile <trace.jsonl> [--chrome <out.json>|-]");
    std::process::exit(2);
}
