//! Shared experiment machinery: overlay generation per scope, AutoDSE
//! baselines, and end-to-end run-time measurement.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use overgen::{generate, GenerateConfig, Overlay};
use overgen_compiler::CompileOptions;
use overgen_dse::{DseConfig, HeartbeatConfig, SystemDseConfig};
use overgen_hls::{explore, AutoDseConfig, AutoDseResult};
use overgen_ir::{Kernel, Suite};
use overgen_sim::SimConfig;
use overgen_telemetry::{
    event, fs::write_atomic, json, CacheStats, ClockMode, Collector, FileSink, NullSink, Profiler,
    Sink,
};
use overgen_workloads as workloads;

/// Spatial-DSE iterations per generated overlay (env `OVERGEN_DSE_ITERS`).
pub fn dse_iters() -> usize {
    std::env::var("OVERGEN_DSE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Global experiment seed (env `OVERGEN_SEED`).
pub fn seed() -> u64 {
    std::env::var("OVERGEN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2022)
}

/// Read `--<flag> N` / `--<flag>=N` from the process arguments.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if let Some(v) = a.strip_prefix(&format!("--{flag}=")) {
            return Some(v.to_string());
        }
        if a == format!("--{flag}") {
            return args.next();
        }
    }
    None
}

/// DSE worker threads (`--threads N` or env `OVERGEN_DSE_THREADS`).
/// `0` means one worker per core; the default of 1 runs serially. Results
/// and traces are identical for any value — this only changes wall-clock.
pub fn dse_threads() -> usize {
    arg_value("threads")
        .or_else(|| std::env::var("OVERGEN_DSE_THREADS").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Parallel annealing chains (`--chains N` or env `OVERGEN_DSE_CHAINS`,
/// default 1). Unlike `--threads`, this changes what is explored: each
/// chain anneals independently with periodic best-state exchange.
pub fn dse_chains() -> usize {
    arg_value("chains")
        .or_else(|| std::env::var("OVERGEN_DSE_CHAINS").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Incremental repair fast path (env `OVERGEN_REPAIR`, default on).
/// `OVERGEN_REPAIR=0` switches every eligible repair into verification
/// mode: a silent full placement asserted equal to the fast
/// reconstruction. Results, counters, and traces are byte-identical in
/// both modes — the determinism gate in `scripts/check.sh` diffs them.
pub fn repair_enabled() -> bool {
    !matches!(
        std::env::var("OVERGEN_REPAIR").as_deref(),
        Ok("0") | Ok("false") | Ok("no")
    )
}

/// Directory experiment artifacts land in (env `OVERGEN_RESULTS_DIR`,
/// default `results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("OVERGEN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Whether to capture a full JSONL trace (env `OVERGEN_TRACE`).
fn trace_enabled() -> bool {
    matches!(
        std::env::var("OVERGEN_TRACE").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

/// Whether to attribute wall time to phases (env `OVERGEN_PROFILE`,
/// default on). The profiler is invisible to traces — it never emits
/// events and never touches the metrics registry — so leaving it on does
/// not perturb determinism gates; `OVERGEN_PROFILE=0` only skips the
/// (tiny) timing overhead and the `<name>.profile.json` artifact.
pub fn profile_enabled() -> bool {
    !matches!(
        std::env::var("OVERGEN_PROFILE").as_deref(),
        Ok("0") | Ok("false") | Ok("no")
    )
}

/// Live-progress heartbeat (env `OVERGEN_HEARTBEAT`, default off;
/// `OVERGEN_HEARTBEAT_EVERY` sets the proposal period, default 25).
/// When enabled the engine publishes `dse.heartbeat.*` gauges to the
/// metrics registry and prints a one-line progress summary to stderr at
/// each threshold. Heartbeat state never reaches the trace stream, so
/// traces stay byte-identical either way.
pub fn heartbeat_config() -> Option<HeartbeatConfig> {
    if !matches!(
        std::env::var("OVERGEN_HEARTBEAT").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    ) {
        return None;
    }
    let every = std::env::var("OVERGEN_HEARTBEAT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(25);
    Some(HeartbeatConfig {
        every,
        stderr: true,
    })
}

/// Run a named experiment with telemetry installed, then publish its
/// artifacts atomically (temp file + rename, so an interrupted run never
/// leaves a torn file in `results/`):
///
/// - `results/<name>.txt` — the rendered table, also printed to stdout;
/// - `results/<name>.json` — a run manifest: seed, DSE iterations, wall
///   seconds, and the final metrics-registry snapshot;
/// - `results/<name>.trace.jsonl` — the deterministic JSONL event trace,
///   only when `OVERGEN_TRACE=1` (feed it to `trace-summary` or
///   `overgen-profile`);
/// - `results/<name>.profile.json` — phase-level wall-time attribution
///   (per-phase histograms keyed by phase × footprint class, cache-hit
///   adjusted totals, hottest workloads and system grid points), unless
///   `OVERGEN_PROFILE=0`.
pub fn run_experiment(name: &str, f: impl FnOnce() -> String) {
    let dir = results_dir();
    let tracing = trace_enabled();
    let trace_path = dir.join(format!("{name}.trace.jsonl"));
    let (sink, mode): (Arc<dyn Sink>, ClockMode) = if tracing {
        match FileSink::create(&trace_path) {
            Ok(s) => (s, ClockMode::Deterministic),
            Err(e) => {
                eprintln!("warning: cannot open {}: {e}", trace_path.display());
                (Arc::new(NullSink), ClockMode::Wall)
            }
        }
    } else {
        (Arc::new(NullSink), ClockMode::Wall)
    };
    let collector = Collector::new(sink, mode);
    let _install = overgen_telemetry::install(collector.clone());
    let profiler = profile_enabled().then(Profiler::new);
    let _profile_install = profiler
        .as_ref()
        .map(|p| overgen_telemetry::install_profiler(p.clone()));
    event!(
        "bench.run",
        experiment = name,
        seed = seed(),
        dse_iters = dse_iters(),
    );

    let wall = Instant::now();
    let content = f();
    let wall_seconds = wall.elapsed().as_secs_f64();

    collector.snapshot_metrics();
    collector.flush();

    print!("{content}");
    let txt = dir.join(format!("{name}.txt"));
    if let Err(e) = write_atomic(&txt, content.as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", txt.display());
    }
    let manifest = json::Obj::new()
        .str("experiment", name)
        .u64("seed", seed())
        .u64("dse_iters", dse_iters() as u64)
        .f64("wall_seconds", wall_seconds)
        .bool("trace", tracing)
        .raw("metrics", &collector.registry().snapshot_json())
        .finish();
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = write_atomic(&path, format!("{manifest}\n").as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }

    if let Some(p) = profiler {
        let reg = collector.registry();
        let cache = CacheStats {
            eval_hits: reg.counter_value("dse.cache.hit"),
            eval_misses: reg.counter_value("dse.cache.miss"),
            system_hits: reg.counter_value("dse.cache.system_hit"),
            system_misses: reg.counter_value("dse.cache.system_miss"),
        };
        let profile = p.snapshot().render_json(name, &cache, 5);
        let path = dir.join(format!("{name}.profile.json"));
        if let Err(e) = write_atomic(&path, format!("{profile}\n").as_bytes()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// DSE configuration used by all experiments. Parallelism comes from
/// `--threads`/`--chains` (or `OVERGEN_DSE_THREADS`/`OVERGEN_DSE_CHAINS`);
/// the thread count is intentionally kept out of emitted trace events so
/// traces stay byte-identical across worker counts.
pub fn dse_config(iterations: usize, seed: u64) -> DseConfig {
    DseConfig {
        iterations,
        seed,
        schedule_preserving: true,
        system: SystemDseConfig::default(),
        compile: CompileOptions::default(),
        weights: Default::default(),
        mutations_per_step: 2,
        threads: dse_threads(),
        chains: dse_chains(),
        repair: repair_enabled(),
        heartbeat: heartbeat_config(),
        ..Default::default()
    }
}

/// Generate the suite-specialised overlay (Table III columns).
pub fn suite_overlay(suite: Suite) -> Overlay {
    let domain = workloads::suite(suite);
    generate(
        &domain,
        &GenerateConfig {
            dse: dse_config(dse_iters(), seed() ^ suite as u64),
        },
    )
}

/// Generate a workload-specialised overlay.
pub fn workload_overlay(kernel: &Kernel) -> Overlay {
    generate(
        std::slice::from_ref(kernel),
        &GenerateConfig {
            dse: dse_config(dse_iters(), seed() ^ hash_name(kernel.name())),
        },
    )
}

/// Generate an overlay for an arbitrary domain subset.
pub fn domain_overlay(domain: &[Kernel], salt: u64) -> Overlay {
    generate(
        domain,
        &GenerateConfig {
            dse: dse_config(dse_iters(), seed() ^ salt),
        },
    )
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

/// AutoDSE run for a kernel; `tuned` selects the manually tuned variant
/// when one exists.
pub fn autodse(name: &str, tuned: bool, dram_channels: u32) -> Option<AutoDseResult> {
    let kernel = if tuned {
        workloads::hls_tuned(name).or_else(|| workloads::by_name(name))?
    } else {
        workloads::by_name(name)?
    };
    Some(explore(
        &kernel,
        &AutoDseConfig {
            dram_channels,
            ..Default::default()
        },
    ))
}

/// End-to-end OverGen seconds for a kernel on an overlay. When
/// `allow_og_tuning`, the OverGen-tuned variant is also tried and the
/// faster one wins (the paper's convention for the main comparison).
/// Returns `None` when no variant schedules.
pub fn og_seconds(overlay: &Overlay, name: &str, allow_og_tuning: bool) -> Option<f64> {
    og_seconds_with(overlay, name, allow_og_tuning, &SimConfig::default())
}

/// [`og_seconds`] with a custom simulator configuration (Q7 uses this for
/// DRAM-channel sweeps).
pub fn og_seconds_with(
    overlay: &Overlay,
    name: &str,
    allow_og_tuning: bool,
    sim: &SimConfig,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut consider = |k: &Kernel| {
        if let Ok(app) = overlay.compile(k) {
            let report = overlay.execute_with(&app, sim);
            // A truncated simulation never reached steady state; its cycle
            // count is a lower bound, not a datapoint. Feeding it into a
            // table would silently skew every derived speedup, so refuse.
            assert!(
                !report.truncated,
                "simulation of `{}` hit the cycle cap — raise \
                 SimConfig::max_cycles instead of benchmarking a truncated run",
                k.name(),
            );
            let secs = report.seconds(overlay.fmax_mhz());
            best = Some(best.map_or(secs, |b: f64| b.min(secs)));
        }
    };
    consider(&workloads::by_name(name)?);
    if allow_og_tuning {
        if let Some(t) = workloads::og_tuned(name) {
            consider(&t);
        }
    }
    best
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-300).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn autodse_runs_for_all_workloads() {
        for k in workloads::all() {
            let r = autodse(k.name(), false, 1).unwrap();
            assert!(r.best.seconds > 0.0, "{}", k.name());
        }
    }

    #[test]
    fn general_overlay_runs_most_workloads() {
        let overlay = Overlay::general();
        let mut ran = 0;
        for k in workloads::all() {
            if og_seconds(&overlay, k.name(), false).is_some() {
                ran += 1;
            }
        }
        assert!(ran >= 15, "only {ran}/19 ran on the general overlay");
    }
}
