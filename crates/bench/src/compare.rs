//! Benchmark regression gating behind the `bench-compare` binary.
//!
//! Two `BENCH_*.json` files are flattened into dotted numeric paths
//! (`dse.fast_share`, `timing.median_speedup`, …) and checked against a
//! rule list with tolerance bands. Any violation is reported and fails
//! the comparison — this is what lets CI reject a change that quietly
//! regresses the repair fast-path share or per-proposal throughput while
//! every correctness test still passes.
//!
//! Rules (also the `bench-compare` CLI syntax):
//!
//! - `min:PATH=V` — candidate value must be ≥ V (absolute floor);
//! - `max:PATH=V` — candidate value must be ≤ V (absolute ceiling);
//! - `max-drop:PATH=F` — candidate ≥ baseline × (1 − F);
//! - `max-rise:PATH=F` — candidate ≤ baseline × (1 + F);
//! - `require:PATH` — the path must exist in the candidate (schema guard).
//!
//! A path a rule references but the file lacks is itself a violation:
//! silent schema drift must not read as "no regression".

use std::collections::BTreeMap;

use overgen_telemetry::json::Value;

/// One gating rule over a dotted path.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// Absolute floor on the candidate value.
    Min(String, f64),
    /// Absolute ceiling on the candidate value.
    Max(String, f64),
    /// Candidate may not drop below baseline by more than this fraction.
    MaxDrop(String, f64),
    /// Candidate may not rise above baseline by more than this fraction.
    MaxRise(String, f64),
    /// The path must exist in the candidate.
    Require(String),
}

impl Rule {
    /// Parse the CLI spelling (`min:PATH=V`, `require:PATH`, …).
    pub fn parse(s: &str) -> Result<Rule, String> {
        let (kind, rest) = s
            .split_once(':')
            .ok_or_else(|| format!("rule `{s}`: expected KIND:PATH[=VALUE]"))?;
        if kind == "require" {
            if rest.is_empty() {
                return Err(format!("rule `{s}`: empty path"));
            }
            return Ok(Rule::Require(rest.to_string()));
        }
        let (path, val) = rest
            .split_once('=')
            .ok_or_else(|| format!("rule `{s}`: expected {kind}:PATH=VALUE"))?;
        let v: f64 = val
            .parse()
            .map_err(|_| format!("rule `{s}`: `{val}` is not a number"))?;
        match kind {
            "min" => Ok(Rule::Min(path.to_string(), v)),
            "max" => Ok(Rule::Max(path.to_string(), v)),
            "max-drop" => Ok(Rule::MaxDrop(path.to_string(), v)),
            "max-rise" => Ok(Rule::MaxRise(path.to_string(), v)),
            other => Err(format!("rule `{s}`: unknown kind `{other}`")),
        }
    }
}

impl std::fmt::Display for Rule {
    /// The CLI spelling, so a violation names the exact rule that fired.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rule::Min(p, v) => write!(f, "min:{p}={v}"),
            Rule::Max(p, v) => write!(f, "max:{p}={v}"),
            Rule::MaxDrop(p, v) => write!(f, "max-drop:{p}={v}"),
            Rule::MaxRise(p, v) => write!(f, "max-rise:{p}={v}"),
            Rule::Require(p) => write!(f, "require:{p}"),
        }
    }
}

/// Flatten a parsed JSON document into dotted numeric paths. Numbers map
/// to themselves, booleans to 0/1, array elements get their index as a
/// path segment; strings and nulls are not comparable and are dropped.
pub fn flatten(v: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &Value, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Num(n) => {
            out.insert(prefix, *n);
        }
        Value::Bool(b) => {
            out.insert(prefix, if *b { 1.0 } else { 0.0 });
        }
        Value::Obj(pairs) => {
            for (k, child) in pairs {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(child, p, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                let p = if prefix.is_empty() {
                    i.to_string()
                } else {
                    format!("{prefix}.{i}")
                };
                walk(child, p, out);
            }
        }
        _ => {}
    }
}

/// Outcome of checking a candidate against a baseline.
#[derive(Debug)]
pub struct Report {
    /// One line per rule that held, for the human-readable transcript.
    pub passed: Vec<String>,
    /// One line per violated rule; non-empty means the gate fails.
    pub violations: Vec<String>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check `candidate` against `baseline` under `rules`.
pub fn compare(baseline: &Value, candidate: &Value, rules: &[Rule]) -> Report {
    let base = flatten(baseline);
    let cand = flatten(candidate);
    let mut report = Report {
        passed: Vec::new(),
        violations: Vec::new(),
    };
    for rule in rules {
        match check(rule, &base, &cand) {
            Ok(line) => report.passed.push(line),
            // Name the exact rule that fired: CI logs show `[min:...=V]`
            // without the reader having to map values back to the rule
            // list the gate was invoked with.
            Err(line) => report.violations.push(format!("[{rule}] {line}")),
        }
    }
    report
}

/// One rule's verdict: `Ok` carries the passed-transcript line, `Err`
/// the violation line (without the rule prefix `compare` adds).
fn check(
    rule: &Rule,
    base: &BTreeMap<String, f64>,
    cand: &BTreeMap<String, f64>,
) -> Result<String, String> {
    let missing = |which: &str, path: &str| format!("{which} is missing path `{path}`");
    match rule {
        Rule::Require(path) => match cand.get(path) {
            Some(v) => Ok(format!("require {path} (= {v})")),
            None => Err(missing("candidate", path)),
        },
        Rule::Min(path, floor) => match cand.get(path) {
            Some(v) if v >= floor => Ok(format!("{path} = {v} >= min {floor}")),
            Some(v) => Err(format!("{path} = {v} below floor {floor}")),
            None => Err(missing("candidate", path)),
        },
        Rule::Max(path, ceil) => match cand.get(path) {
            Some(v) if v <= ceil => Ok(format!("{path} = {v} <= max {ceil}")),
            Some(v) => Err(format!("{path} = {v} above ceiling {ceil}")),
            None => Err(missing("candidate", path)),
        },
        Rule::MaxDrop(path, frac) => match (base.get(path), cand.get(path)) {
            (Some(b), Some(c)) => {
                let floor = b * (1.0 - frac);
                if *c >= floor {
                    Ok(format!(
                        "{path} = {c} within {:.0}% drop of baseline {b}",
                        frac * 100.0
                    ))
                } else {
                    Err(format!(
                        "{path} dropped {b} -> {c}, beyond the {:.0}% band (floor {floor:.6})",
                        frac * 100.0
                    ))
                }
            }
            (None, _) => Err(missing("baseline", path)),
            (_, None) => Err(missing("candidate", path)),
        },
        Rule::MaxRise(path, frac) => match (base.get(path), cand.get(path)) {
            (Some(b), Some(c)) => {
                let ceil = b * (1.0 + frac);
                if *c <= ceil {
                    Ok(format!(
                        "{path} = {c} within {:.0}% rise of baseline {b}",
                        frac * 100.0
                    ))
                } else {
                    Err(format!(
                        "{path} rose {b} -> {c}, beyond the {:.0}% band (ceiling {ceil:.6})",
                        frac * 100.0
                    ))
                }
            }
            (None, _) => Err(missing("baseline", path)),
            (_, None) => Err(missing("candidate", path)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_telemetry::json;

    const BASELINE: &str = r#"{"bench":"repair","dse":{"fast_share":0.8},
        "timing":{"median_speedup":4.0,"proposals":60},"ok":true}"#;

    fn rules() -> Vec<Rule> {
        vec![
            Rule::parse("min:dse.fast_share=0.5").unwrap(),
            Rule::parse("max-drop:timing.median_speedup=0.5").unwrap(),
            Rule::parse("require:timing.proposals").unwrap(),
        ]
    }

    #[test]
    fn identical_runs_pass() {
        let b = json::parse(BASELINE).unwrap();
        let report = compare(&b, &b, &rules());
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.passed.len(), 3);
    }

    #[test]
    fn injected_regression_fails() {
        let b = json::parse(BASELINE).unwrap();
        // Synthetic regression: fast share collapses and the speedup halves
        // past the 50% band.
        let c = json::parse(
            r#"{"bench":"repair","dse":{"fast_share":0.2},
                "timing":{"median_speedup":1.5,"proposals":60},"ok":true}"#,
        )
        .unwrap();
        let report = compare(&b, &c, &rules());
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        // Each violation leads with the spelling of the rule that fired.
        assert!(report.violations[0].starts_with("[min:dse.fast_share=0.5]"));
        assert!(report.violations[1].starts_with("[max-drop:timing.median_speedup=0.5]"));
    }

    #[test]
    fn missing_paths_are_loud() {
        let b = json::parse(BASELINE).unwrap();
        let c = json::parse(r#"{"bench":"repair"}"#).unwrap();
        let report = compare(&b, &c, &rules());
        assert_eq!(report.violations.len(), 3);
        assert!(report.violations.iter().all(|v| v.contains("missing")));
    }

    #[test]
    fn flatten_handles_nesting_bools_and_arrays() {
        let v = json::parse(r#"{"a":{"b":2},"c":[10,{"d":3}],"e":false,"s":"x"}"#).unwrap();
        let flat = flatten(&v);
        assert_eq!(flat.get("a.b"), Some(&2.0));
        assert_eq!(flat.get("c.0"), Some(&10.0));
        assert_eq!(flat.get("c.1.d"), Some(&3.0));
        assert_eq!(flat.get("e"), Some(&0.0));
        assert!(!flat.contains_key("s"), "strings are not comparable");
    }

    #[test]
    fn rule_parsing_accepts_the_cli_spellings_only() {
        assert_eq!(
            Rule::parse("max-rise:timing.p99=0.25").unwrap(),
            Rule::MaxRise("timing.p99".into(), 0.25)
        );
        assert!(Rule::parse("between:x=1").is_err());
        assert!(Rule::parse("min:x").is_err());
        assert!(Rule::parse("min:x=abc").is_err());
        assert!(Rule::parse("require:").is_err());
        assert!(Rule::parse("bare").is_err());
    }
}
