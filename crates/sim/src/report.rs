/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimReport {
    /// Total cycles for the tile to complete its share of the region.
    pub cycles: u64,
    /// DFG firings executed by the simulated tile.
    pub firings: u64,
    /// Scalar operations retired per cycle by the whole overlay
    /// (all tiles).
    pub ipc: f64,
    /// Cycles the fabric stalled waiting for input data.
    pub stall_input: u64,
    /// Cycles the fabric stalled on output back-pressure.
    pub stall_output: u64,
    /// Bytes served by the L2 (per tile).
    pub bytes_l2: u64,
    /// Bytes served by DRAM (per tile).
    pub bytes_dram: u64,
    /// Bytes served by scratchpads (per tile).
    pub bytes_spad: u64,
    /// Bytes forwarded by the recurrence engine (per tile).
    pub bytes_rec: u64,
    /// Cycles to reconfigure the overlay with this kernel's bitstream.
    pub reconfig_cycles: u64,
    /// Whether the run hit the safety cycle cap (a modelling bug if true).
    pub truncated: bool,
}

impl SimReport {
    /// Wall-clock seconds at a given fabric frequency.
    pub fn seconds(&self, fmax_mhz: f64) -> f64 {
        self.cycles as f64 / (fmax_mhz * 1e6)
    }

    /// Reconfiguration seconds at a given fabric frequency.
    pub fn reconfig_seconds(&self, fmax_mhz: f64) -> f64 {
        self.reconfig_cycles as f64 / (fmax_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversion() {
        let r = SimReport {
            cycles: 1_000_000,
            ..Default::default()
        };
        assert!((r.seconds(100.0) - 0.01).abs() < 1e-12);
    }
}
