//! The cycle-stepped flow simulation.
//!
//! The simulator is organized as a reusable [`SimBatch`]: a
//! *system-independent template* (stream classification, engine layout,
//! hoisted engine bandwidths) plus a struct-of-arrays arena of per-cycle
//! state (port FIFOs, byte scoreboards). [`SimBatch::new`] allocates
//! everything once; [`SimBatch::run`] resets the arena for one
//! [`SystemParams`] grid point and ticks the flow loop without a single
//! heap allocation or telemetry emission — which is what lets the nested
//! system DSE evaluate sibling grid points of one compiled schedule with
//! warm simulator state. [`simulate`] is the one-shot wrapper that keeps
//! the historical signature, span, and `sim.*` events.

use std::collections::BTreeMap;

use overgen_adg::{Adg, AdgNode, NodeId, SystemParams};
use overgen_mdfg::{Mdfg, MdfgNode, MdfgNodeId, MdfgNodeKind};
use overgen_scheduler::Schedule;
use overgen_telemetry::{event, span};

use crate::report::SimReport;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
    /// DRAM access latency in cycles (pipeline-fill only; streams prefetch
    /// deeply so bandwidth dominates steady state).
    pub dram_latency: u64,
    /// Port FIFO capacity as a multiple of the firing quantum.
    pub fifo_factor: u64,
    /// Enable the stream-table one-hot bypass (Figure 11). Disabling it
    /// halves the issue rate of engines with a single active stream.
    pub one_hot_bypass: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 200_000_000,
            dram_latency: 40,
            fifo_factor: 4,
            one_hot_bypass: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EngineKind {
    Dma,
    Spad,
    Gen,
    Rec,
    Reg,
}

/// One engine's slice of the grouped stream arrays, with its bandwidth
/// hoisted out of the tick loop (it used to be a `BTreeMap` lookup per
/// engine per cycle).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lane {
    pub(crate) bw: u64,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

/// A compiled-schedule simulation batch: the template is built once per
/// (mDFG, schedule, accelerator ADG) and [`SimBatch::run`] replays it
/// against any number of [`SystemParams`] grid points, reusing the arena.
///
/// Stream state lives in struct-of-arrays form, grouped by engine in
/// `NodeId`-ascending order (insertion order within an engine) — the same
/// visit order the original per-`StreamState` loop produced, so reports
/// are bit-identical to the historical implementation.
#[derive(Debug)]
pub struct SimBatch {
    pub(crate) cfg: SimConfig,
    // ---- region-level template ----------------------------------------
    sequential: bool,
    pub(crate) fire_interval: u64,
    pub(crate) firings_total: u64,
    critical_path: u64,
    pub(crate) insts_per_firing: f64,
    config_bytes: u64,
    // ---- per-stream template (grouped by engine) -----------------------
    pub(crate) kind: Vec<EngineKind>,
    pub(crate) is_write: Vec<bool>,
    pub(crate) has_port: Vec<bool>,
    pub(crate) bytes_per_firing: Vec<u64>,
    pub(crate) stationary: Vec<u64>,
    pub(crate) mem_amp: Vec<u64>,
    fifo_cap: Vec<u64>,
    pub(crate) footprint: Vec<f64>,
    pub(crate) broadcast: Vec<bool>,
    /// For write streams feeding a recurrence: the paired read stream.
    rec_pair: Vec<Option<usize>>,
    /// Read streams primed by a recurrence pair (FIFO starts full).
    rec_read: Vec<bool>,
    pub(crate) lanes: Vec<Lane>,
    /// Unique scratchpad-resident read arrays: (footprint bytes,
    /// broadcast) — preloaded from DRAM before the region starts.
    spad_reads: Vec<(u64, bool)>,
    // ---- per-run arena (reset for every grid point) --------------------
    total_bytes: Vec<u64>,
    moved: Vec<u64>,
    fifo: Vec<u64>,
    dram_left: Vec<u64>,
    rec_avail: Vec<u64>,
    /// Scratch list of issue-eligible streams (capacity = stream count).
    active: Vec<usize>,
    // ---- sibling-reuse cache (one entry, kept by `run_cached`) ---------
    cache_valid: bool,
    cache_tiles: u64,
    cache_dram_channels: u32,
    cache_l2_frac: f64,
    cache_noc: u64,
    cache_cert: Certificate,
    /// Initial cold-miss budgets of the cached run (covers `l2_kb`).
    cache_dram_left: Vec<u64>,
    cache_report: SimReport,
    cache_hits: u64,
}

/// What a finished run proved about its shared-budget usage: whether the
/// L2 or NoC budget ever altered a transfer, and the largest per-cycle
/// budget level each needed (in pre-amplification bytes) to reproduce the
/// run unchanged. [`SimBatch::run_cached`] uses it to decide when a
/// sibling grid point — same tiles, DRAM channels, and cold-miss budgets,
/// different L2/NoC bandwidth — must replay to the exact same report.
#[derive(Debug, Clone, Copy, Default)]
struct Certificate {
    /// The L2 budget clamped at least one transfer.
    l2_limited: bool,
    /// The NoC budget clamped at least one transfer.
    noc_limited: bool,
    /// Max per-cycle L2 budget the unclamped transfers required.
    r_l2: u64,
    /// See `r_l2`, for the NoC.
    r_noc: u64,
}

impl SimBatch {
    /// Build the template for one scheduled mDFG on one accelerator ADG.
    /// All allocation happens here; [`SimBatch::run`] allocates nothing.
    pub fn new(mdfg: &Mdfg, sched: &Schedule, adg: &Adg, cfg: &SimConfig) -> SimBatch {
        // ---- classify streams, in mDFG node order ----------------------
        struct Tmp {
            engine: NodeId,
            kind: EngineKind,
            is_write: bool,
            has_port: bool,
            bytes_per_firing: u64,
            stationary: u64,
            mem_amp: u64,
            fifo_cap: u64,
            footprint: f64,
            broadcast: bool,
        }
        let mut tmp: Vec<Tmp> = Vec::new();
        let mut index_of: BTreeMap<MdfgNodeId, usize> = BTreeMap::new();
        for (sid, n) in mdfg.nodes() {
            let s = match n.as_stream() {
                Some(s) => s,
                None => continue,
            };
            let engine = match sched.stream_engines.get(&sid).copied() {
                Some(e) => e,
                None => continue, // unscheduled stream: treated as free
            };
            let kind = match adg.node(engine) {
                Some(AdgNode::Dma(_)) => EngineKind::Dma,
                Some(AdgNode::Spad(_)) => EngineKind::Spad,
                Some(AdgNode::Gen(_)) => EngineKind::Gen,
                Some(AdgNode::Rec(_)) => EngineKind::Rec,
                Some(AdgNode::Reg(_)) => EngineKind::Reg,
                _ => EngineKind::Dma,
            };
            let has_port = sched
                .assignment
                .get(&sid)
                .map(|a| {
                    matches!(
                        adg.node(*a),
                        Some(AdgNode::InPort(_)) | Some(AdgNode::OutPort(_))
                    )
                })
                .unwrap_or(false);
            let mem_amp =
                if s.pattern == overgen_mdfg::StreamPattern::Strided && kind == EngineKind::Dma {
                    4 // typical channel strides (3-4) waste ~3/4 of each line
                } else {
                    1
                };
            index_of.insert(sid, tmp.len());
            tmp.push(Tmp {
                engine,
                kind,
                is_write: s.is_write,
                has_port,
                bytes_per_firing: s.bytes_per_firing,
                stationary: s.reuse.stationary.max(1.0).round() as u64,
                mem_amp,
                fifo_cap: (s.bytes_per_firing * cfg.fifo_factor).max(8),
                footprint: s.reuse.footprint_bytes,
                broadcast: s.broadcast,
            });
        }

        // Recurrence pairs: write stream -> read stream edges (still in
        // original stream indices).
        let mut pair_of: Vec<Option<usize>> = vec![None; tmp.len()];
        for (w, r) in mdfg.edges().filter(|(s, d)| {
            mdfg.node(*s).map(MdfgNode::kind) == Some(MdfgNodeKind::OutputStream)
                && mdfg.node(*d).map(MdfgNode::kind) == Some(MdfgNodeKind::InputStream)
        }) {
            if let (Some(&wi), Some(&ri)) = (index_of.get(&w), index_of.get(&r)) {
                pair_of[wi] = Some(ri);
            }
        }

        // ---- group by engine (NodeId ascending, stable within) ---------
        let mut engine_streams: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, t) in tmp.iter().enumerate() {
            engine_streams.entry(t.engine).or_default().push(i);
        }
        // Engine bandwidth, hoisted to construction time: the tick loop
        // reads a plain `u64` per lane instead of a map lookup per cycle.
        let mut lanes = Vec::with_capacity(engine_streams.len());
        let mut order: Vec<usize> = Vec::with_capacity(tmp.len());
        for (e, list) in &engine_streams {
            let bw = match adg.node(*e).and_then(AdgNode::engine_bw) {
                Some(bw) => u64::from(bw),
                None => {
                    // A stream bound to a node without engine bandwidth
                    // (missing, or not an engine kind) is a scheduler bug:
                    // loud in debug, counted and traced in release so a
                    // silently-assumed 8 B/cycle never skews results
                    // unnoticed.
                    debug_assert!(
                        false,
                        "stream engine n{} of `{}` is not an engine node; \
                         defaulting to 8 B/cycle",
                        e.index(),
                        mdfg.name(),
                    );
                    if let Some(c) = overgen_telemetry::current() {
                        c.registry().counter("sim.engine_bw_default").inc();
                    }
                    event!(
                        "sim.engine_bw_default",
                        mdfg = mdfg.name(),
                        node = e.index() as u64,
                        assumed_bw = 8u64,
                    );
                    8
                }
            };
            let lo = order.len();
            order.extend(list.iter().copied());
            lanes.push(Lane {
                bw,
                lo,
                hi: order.len(),
            });
        }
        // Remap original stream indices to grouped positions.
        let mut new_pos = vec![0usize; tmp.len()];
        for (pos, &orig) in order.iter().enumerate() {
            new_pos[orig] = pos;
        }
        let n = tmp.len();
        let mut rec_pair: Vec<Option<usize>> = vec![None; n];
        let mut rec_read = vec![false; n];
        for (orig, pair) in pair_of.iter().enumerate() {
            if let Some(r) = pair {
                rec_pair[new_pos[orig]] = Some(new_pos[*r]);
                rec_read[new_pos[*r]] = true;
            }
        }

        // Scratchpad preload set: unique spad-resident read arrays.
        let mut spad_reads = Vec::new();
        {
            let mut seen = std::collections::BTreeSet::new();
            for (_, node) in mdfg.nodes() {
                if let Some(st) = node.as_stream() {
                    if !st.is_write
                        && sched.placement.spad_arrays.contains(&st.array)
                        && seen.insert(st.array.clone())
                    {
                        spad_reads.push((st.reuse.footprint_bytes as u64, st.broadcast));
                    }
                }
            }
        }

        let pick =
            |f: &dyn Fn(&Tmp) -> u64| -> Vec<u64> { order.iter().map(|&i| f(&tmp[i])).collect() };
        SimBatch {
            cfg: *cfg,
            sequential: mdfg.sequential(),
            fire_interval: if mdfg.sequential() {
                (mdfg.critical_path_len() as u64 / 2).max(1)
            } else {
                1
            },
            firings_total: mdfg.firings().max(1.0) as u64,
            critical_path: mdfg.critical_path_len() as u64,
            insts_per_firing: mdfg.insts_per_firing(),
            config_bytes: adg.config_bytes(),
            kind: order.iter().map(|&i| tmp[i].kind).collect(),
            is_write: order.iter().map(|&i| tmp[i].is_write).collect(),
            has_port: order.iter().map(|&i| tmp[i].has_port).collect(),
            bytes_per_firing: pick(&|t| t.bytes_per_firing),
            stationary: pick(&|t| t.stationary),
            mem_amp: pick(&|t| t.mem_amp),
            fifo_cap: pick(&|t| t.fifo_cap),
            footprint: order.iter().map(|&i| tmp[i].footprint).collect(),
            broadcast: order.iter().map(|&i| tmp[i].broadcast).collect(),
            rec_pair,
            rec_read,
            lanes,
            spad_reads,
            total_bytes: vec![0; n],
            moved: vec![0; n],
            fifo: vec![0; n],
            dram_left: vec![0; n],
            rec_avail: vec![0; n],
            active: Vec::with_capacity(n),
            cache_valid: false,
            cache_tiles: 0,
            cache_dram_channels: 0,
            cache_l2_frac: 0.0,
            cache_noc: 0,
            cache_cert: Certificate::default(),
            cache_dram_left: vec![0; n],
            cache_report: SimReport::default(),
            cache_hits: 0,
        }
    }

    /// Number of streams the template carries.
    pub fn stream_count(&self) -> usize {
        self.kind.len()
    }

    /// Tiles the region runs on under `sys` (1 for sequential regions).
    pub(crate) fn tiles(&self, sys: &SystemParams) -> u64 {
        if self.sequential {
            1
        } else {
            u64::from(sys.tiles).max(1)
        }
    }

    /// This tile's share of the firings under `sys`.
    pub(crate) fn firings_tile(&self, sys: &SystemParams) -> u64 {
        self.firings_total.div_ceil(self.tiles(sys))
    }

    /// Per-stream byte budget the engine must move under `sys` (the
    /// historical `StreamState::total_bytes`).
    pub(crate) fn stream_total_bytes(&self, i: usize, firings_tile: u64) -> u64 {
        let refreshes = firings_tile.div_ceil(self.stationary[i]);
        let mut total = refreshes * self.bytes_per_firing[i];
        // Broadcast-replicated arrays: every tile streams the whole array
        // (no partitioning win) — wasted bandwidth, the ellpack outlier.
        if self.broadcast[i] {
            total = total.max(self.footprint[i] as u64);
        }
        total
    }

    /// Exposed DRAM preload bytes for scratchpad-resident arrays.
    pub(crate) fn spad_fill_bytes(&self, tiles: u64) -> u64 {
        self.spad_reads
            .iter()
            .map(|&(fp, bcast)| if bcast { fp } else { fp / tiles })
            .sum()
    }

    /// Pipeline latency: kernel launch over RoCC (+ cache warm),
    /// per-stream parameter configuration, fabric depth, and the DRAM
    /// fill.
    pub(crate) fn pipeline_fill(&self, sys: &SystemParams) -> u64 {
        let tiles = self.tiles(sys);
        let spad_fill_cycles = (self.spad_fill_bytes(tiles) as f64
            / (sys.dram_bw_bytes() as f64 / tiles as f64)) as u64;
        500 + 30 * self.kind.len() as u64
            + self.critical_path * 2
            + self.cfg.dram_latency
            + spad_fill_cycles
    }

    /// Cold-miss byte budget for stream `i` under `sys`: the footprint
    /// must be fetched from DRAM once; re-references hit L2 only when
    /// every tile's share fits.
    pub(crate) fn stream_dram_left(&self, i: usize, sys: &SystemParams, total: u64) -> u64 {
        if self.kind[i] != EngineKind::Dma {
            return 0;
        }
        let tiles = self.tiles(sys);
        let fits_l2 = self.footprint[i] * tiles as f64 <= f64::from(sys.l2_kb) * 1024.0;
        let footprint_tile = if self.broadcast[i] {
            self.footprint[i] as u64
        } else {
            (self.footprint[i] / tiles as f64) as u64
        };
        if fits_l2 {
            footprint_tile.min(total)
        } else {
            total
        }
    }

    /// Reset the arena for one grid point.
    fn reset(&mut self, sys: &SystemParams) {
        let firings_tile = self.firings_tile(sys);
        for i in 0..self.kind.len() {
            let total = self.stream_total_bytes(i, firings_tile);
            self.total_bytes[i] = total;
            self.moved[i] = 0;
            self.rec_avail[i] = 0;
            self.dram_left[i] = self.stream_dram_left(i, sys, total);
            // Prime recurrence loops: initial values sit in the read port
            // FIFO.
            self.fifo[i] = if self.rec_read[i] {
                self.fifo_cap[i]
            } else {
                0
            };
        }
    }

    /// Whether stream `i` still needs engine issue slots. Recurrence
    /// *read* streams are filled directly by the forward of their paired
    /// write stream, so they never occupy an issue slot. Read streams go
    /// inactive once compute has issued every firing they feed: bytes they
    /// have not fetched by then will never be consumed, and fetching them
    /// anyway would burn shared L2/NoC/DRAM budget (and round-robin slots)
    /// that write drains still need — over-fetch used to inflate cycle
    /// counts here.
    #[inline]
    fn stream_active(&self, i: usize, fired: u64, firings_tile: u64) -> bool {
        if self.kind[i] == EngineKind::Rec && !self.is_write[i] {
            return false;
        }
        if self.is_write[i] {
            self.fifo[i] > 0 || self.moved[i] < self.total_bytes[i]
        } else {
            fired < firings_tile && self.moved[i] < self.total_bytes[i]
        }
    }

    /// Simulate one grid point on the warm arena. Allocation-free and
    /// telemetry-free: safe to call from tight system-DSE sweeps (the
    /// `tests/alloc.rs` gate counts allocations across this call).
    pub fn run(&mut self, sys: &SystemParams) -> SimReport {
        self.run_tracked(sys).0
    }

    /// [`SimBatch::run`] plus the run's budget-usage [`Certificate`]. The
    /// tracking is read-only side-band state: the simulated numerics are
    /// identical to an untracked run.
    fn run_tracked(&mut self, sys: &SystemParams) -> (SimReport, Certificate) {
        self.reset(sys);
        let cfg = self.cfg;
        let tiles = self.tiles(sys);
        let fire_interval = self.fire_interval;
        let firings_tile = self.firings_tile(sys);

        // Shared per-tile budgets (fractional carry so an uneven tile
        // split does not round bandwidth away).
        let l2_bw_frac = sys.l2_bw_bytes() as f64 / tiles as f64;
        let noc_bw_tile = u64::from(sys.noc_bw_bytes).max(1);
        let dram_bw_frac = sys.dram_bw_bytes() as f64 / tiles as f64;
        let mut l2_carry = 0.0f64;
        let mut dram_carry = 0.0f64;

        let spad_fill_bytes = self.spad_fill_bytes(tiles);
        let pipeline_fill = self.pipeline_fill(sys);

        // ---- main loop ----------------------------------------------------
        let mut fired: u64 = 0;
        let mut cycles: u64 = 0;
        let mut report = SimReport::default();
        let mut rr_offset = 0usize; // engine round-robin fairness
        let mut cert = Certificate::default();

        while cycles < cfg.max_cycles {
            cycles += 1;
            l2_carry += l2_bw_frac;
            dram_carry += dram_bw_frac;
            let mut l2_budget = l2_carry as u64;
            let mut noc_budget = noc_bw_tile;
            let mut dram_budget = dram_carry as u64;
            let (l2_start, dram_start) = (l2_budget, dram_budget);
            // Running L2/NoC consumption within this cycle, for the
            // certificate's per-cycle requirement watermarks.
            let (mut used_l2, mut used_noc) = (0u64, 0u64);

            // 1. Engines move data.
            for li in 0..self.lanes.len() {
                let Lane { bw, lo, hi } = self.lanes[li];
                self.active.clear();
                for i in lo..hi {
                    if self.stream_active(i, fired, firings_tile) {
                        self.active.push(i);
                    }
                }
                if self.active.is_empty() {
                    continue;
                }
                // Stream-table issue: one stream per cycle. Without the
                // one-hot bypass a lone stream issues every other cycle.
                if self.active.len() == 1 && !cfg.one_hot_bypass && cycles.is_multiple_of(2) {
                    continue;
                }
                let pick = self.active[rr_offset % self.active.len()];
                let mut quantum = bw;
                // What the engine would issue with unconstrained shared
                // budgets — the certificate compares realized transfers
                // against it to detect budget clamping.
                let mut quantum_un = bw;
                // Budget gating for DMA traffic; strided streams waste a
                // multiple of their useful bytes on partially-used lines.
                if self.kind[pick] == EngineKind::Dma {
                    quantum = quantum.min(l2_budget).min(noc_budget) / self.mem_amp[pick];
                    quantum_un /= self.mem_amp[pick];
                    if quantum == 0 {
                        if quantum_un > 0 {
                            // A shared budget (not the engine) zeroed the
                            // transfer.
                            cert.l2_limited |= l2_budget < bw;
                            cert.noc_limited |= noc_budget < bw;
                        }
                        continue;
                    }
                }
                if self.is_write[pick] {
                    // Drain the out-port FIFO toward memory / recurrence.
                    // A recurrence forward is one data movement: it lands
                    // directly in the paired read stream's port FIFO.
                    let n = quantum.min(self.fifo[pick]);
                    if self.kind[pick] == EngineKind::Dma {
                        let n_un = quantum_un.min(self.fifo[pick]);
                        if n != n_un {
                            cert.l2_limited |= l2_budget < bw;
                            cert.noc_limited |= noc_budget < bw;
                        }
                        let amp = self.mem_amp[pick];
                        cert.r_l2 = cert.r_l2.max(used_l2 + amp * n_un);
                        cert.r_noc = cert.r_noc.max(used_noc + amp * n_un);
                        used_l2 += n;
                        used_noc += n;
                    }
                    if n > 0 {
                        self.fifo[pick] -= n;
                        self.moved[pick] += n;
                        match self.kind[pick] {
                            EngineKind::Dma => {
                                l2_budget -= n;
                                noc_budget -= n;
                                report.bytes_l2 += n;
                            }
                            EngineKind::Spad => report.bytes_spad += n,
                            EngineKind::Rec => report.bytes_rec += n,
                            _ => {}
                        }
                        if let Some(ri) = self.rec_pair[pick] {
                            // Recurring values update the read port in
                            // place: cap at the FIFO size (stationary
                            // reductions keep replacing the same cells).
                            let cap = self.fifo_cap[ri];
                            self.fifo[ri] = (self.fifo[ri] + n).min(cap);
                            self.moved[ri] += n;
                        }
                    }
                } else {
                    // Supply the in-port FIFO.
                    let space = self.fifo_cap[pick].saturating_sub(self.fifo[pick]);
                    let left = self.total_bytes[pick].saturating_sub(self.moved[pick]);
                    let mut n = quantum.min(space).min(left);
                    if self.kind[pick] == EngineKind::Rec {
                        n = n.min(self.rec_avail[pick]);
                    }
                    if self.kind[pick] == EngineKind::Dma {
                        let n_un = quantum_un.min(space).min(left);
                        if n != n_un {
                            cert.l2_limited |= l2_budget < bw;
                            cert.noc_limited |= noc_budget < bw;
                        }
                        let amp = self.mem_amp[pick];
                        cert.r_l2 = cert.r_l2.max(used_l2 + amp * n_un);
                        cert.r_noc = cert.r_noc.max(used_noc + amp * n_un);
                        // Cold part of the transfer also needs DRAM
                        // bandwidth; strided streams use only 1/amp of
                        // each fetched line.
                        let cold = n.min(self.dram_left[pick]);
                        let cold = cold.min(dram_budget / amp);
                        let hot = n - n.min(self.dram_left[pick]);
                        n = cold + hot;
                        dram_budget -= (cold * amp).min(dram_budget);
                        self.dram_left[pick] -= cold;
                        report.bytes_dram += cold * amp;
                        report.bytes_l2 += hot;
                        l2_budget = l2_budget.saturating_sub(n);
                        noc_budget = noc_budget.saturating_sub(n);
                        used_l2 += n;
                        used_noc += n;
                    }
                    if self.kind[pick] == EngineKind::Spad {
                        report.bytes_spad += n;
                    }
                    if self.kind[pick] == EngineKind::Rec {
                        self.rec_avail[pick] -= n;
                    }
                    if n > 0 {
                        self.moved[pick] += n;
                        if self.has_port[pick] {
                            self.fifo[pick] += n;
                        }
                    }
                }
            }
            rr_offset += 1;

            // 2. Fabric fires when all input quanta are present and all
            //    output FIFOs have space (and the dependency interval has
            //    elapsed).
            if fired < firings_tile && cycles.is_multiple_of(fire_interval) {
                let mut can_fire = true;
                for i in 0..self.kind.len() {
                    if self.is_write[i] || !self.has_port[i] {
                        continue;
                    }
                    let needs_refresh = fired.is_multiple_of(self.stationary[i]);
                    if needs_refresh && self.fifo[i] < self.bytes_per_firing[i] {
                        can_fire = false;
                        break;
                    }
                }
                if can_fire {
                    for i in 0..self.kind.len() {
                        if !self.is_write[i] || !self.has_port[i] {
                            continue;
                        }
                        if self.fifo[i] + self.bytes_per_firing[i] > self.fifo_cap[i] {
                            can_fire = false;
                            break;
                        }
                    }
                    if !can_fire {
                        report.stall_output += 1;
                    }
                } else {
                    report.stall_input += 1;
                }
                if can_fire {
                    for i in 0..self.kind.len() {
                        if !self.has_port[i] {
                            continue;
                        }
                        if self.is_write[i] {
                            self.fifo[i] += self.bytes_per_firing[i];
                        } else if fired.is_multiple_of(self.stationary[i]) {
                            self.fifo[i] -= self.bytes_per_firing[i];
                        }
                    }
                    fired += 1;
                }
            }

            // Return unused budget to the carry (cap one extra cycle's
            // worth).
            l2_carry = (l2_carry - (l2_start - l2_budget) as f64).min(2.0 * l2_bw_frac);
            dram_carry = (dram_carry - (dram_start - dram_budget) as f64).min(2.0 * dram_bw_frac);

            // 3. Done when all firings issued and all write streams
            //    drained.
            if fired >= firings_tile
                && (0..self.kind.len()).all(|i| !self.is_write[i] || self.fifo[i] == 0)
            {
                break;
            }
        }

        report.truncated = cycles >= cfg.max_cycles;
        report.bytes_dram += spad_fill_bytes;
        report.cycles = cycles + pipeline_fill;
        report.firings = fired;
        let retired = fired as f64 * self.insts_per_firing;
        report.ipc = retired / report.cycles as f64 * tiles as f64;
        report.reconfig_cycles = self.config_bytes / 16 + 1_000;
        (report, cert)
    }

    /// [`SimBatch::run`] behind a one-entry sibling-reuse cache.
    ///
    /// The simulated dynamics depend on [`SystemParams`] only through the
    /// tile count, the DRAM channel count, the initial cold-miss budgets
    /// (where `l2_kb` enters), and the per-cycle L2/NoC budgets. When a
    /// grid point differs from the cached run *only* in L2/NoC bandwidth,
    /// and the cached run's [`Certificate`] shows those budgets never
    /// clamped a transfer — and, for a smaller budget, that the largest
    /// per-cycle requirement still fits under it — the cached report is
    /// returned verbatim: the replay is provably cycle-identical, so this
    /// is invisible to everything except wall-clock. Any other difference
    /// simulates and replaces the cache entry. Allocation- and
    /// telemetry-free like [`SimBatch::run`]; the `OVERGEN_SIM_ORACLE`
    /// shadow sweep differentially checks reuse alongside pruning.
    pub fn run_cached(&mut self, sys: &SystemParams) -> SimReport {
        let tiles = self.tiles(sys);
        let firings_tile = self.firings_tile(sys);
        let l2_frac = sys.l2_bw_bytes() as f64 / tiles as f64;
        let noc = u64::from(sys.noc_bw_bytes).max(1);
        // A smaller L2 budget floors to at least `l2_frac as u64` every
        // cycle once the carry settles, so the requirement watermark is
        // compared against that floor.
        let l2_ok = |cert: &Certificate, cached: f64| {
            l2_frac == cached
                || (!cert.l2_limited && (l2_frac > cached || cert.r_l2 <= l2_frac as u64))
        };
        let noc_ok = |cert: &Certificate, cached: u64| {
            noc == cached || (!cert.noc_limited && (noc > cached || cert.r_noc <= noc))
        };
        if self.cache_valid
            && tiles == self.cache_tiles
            && sys.dram_channels == self.cache_dram_channels
            && l2_ok(&self.cache_cert, self.cache_l2_frac)
            && noc_ok(&self.cache_cert, self.cache_noc)
            && (0..self.kind.len()).all(|i| {
                let total = self.stream_total_bytes(i, firings_tile);
                self.stream_dram_left(i, sys, total) == self.cache_dram_left[i]
            })
        {
            self.cache_hits += 1;
            return self.cache_report;
        }
        for i in 0..self.kind.len() {
            let total = self.stream_total_bytes(i, firings_tile);
            self.cache_dram_left[i] = self.stream_dram_left(i, sys, total);
        }
        let (report, cert) = self.run_tracked(sys);
        self.cache_valid = true;
        self.cache_tiles = tiles;
        self.cache_dram_channels = sys.dram_channels;
        self.cache_l2_frac = l2_frac;
        self.cache_noc = noc;
        self.cache_cert = cert;
        self.cache_report = report;
        report
    }

    /// Grid points served from the sibling-reuse cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }
}

/// Simulate a scheduled mDFG on a system ADG (one-shot: builds a fresh
/// [`SimBatch`] and runs it once, emitting the historical telemetry).
pub fn simulate(
    mdfg: &Mdfg,
    sched: &Schedule,
    sys: &overgen_adg::SysAdg,
    cfg: &SimConfig,
) -> SimReport {
    let _span = span!("sim.run", mdfg = mdfg.name(), variant = mdfg.variant());
    let _timer = overgen_telemetry::profile::maybe_phase(
        overgen_telemetry::Phase::Simulate,
        overgen_telemetry::profile::NO_CLASS,
    );
    let mut batch = SimBatch::new(mdfg, sched, &sys.adg, cfg);
    let report = batch.run(&sys.sys);
    if report.truncated {
        // A truncated run is a modelling bug (the flow never converged):
        // surface it instead of silently reporting bogus IPC.
        if let Some(c) = overgen_telemetry::current() {
            c.registry().counter("sim.truncated").inc();
        }
        event!(
            "sim.truncated",
            mdfg = mdfg.name(),
            variant = mdfg.variant(),
            max_cycles = cfg.max_cycles,
            fired = report.firings,
            firings_tile = batch.firings_tile(&sys.sys),
        );
    }
    event!(
        "sim.done",
        mdfg = mdfg.name(),
        variant = mdfg.variant(),
        cycles = report.cycles,
        firings = report.firings,
        ipc = report.ipc,
        stall_input = report.stall_input,
        stall_output = report.stall_output,
        bytes_dram = report.bytes_dram,
        bytes_l2 = report.bytes_l2,
        bytes_spad = report.bytes_spad,
        bytes_rec = report.bytes_rec,
        truncated = report.truncated,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};
    use overgen_scheduler::schedule;

    fn vecadd(n: u64) -> overgen_ir::Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn sim_vecadd(n: u64, unroll: u32, sys_params: SystemParams, cfg: &SimConfig) -> SimReport {
        let mdfg = lower(
            &vecadd(n),
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), sys_params);
        let sched = schedule(&mdfg, &sys, None).unwrap();
        simulate(&mdfg, &sched, &sys, cfg)
    }

    #[test]
    fn completes_and_counts_firings() {
        let r = sim_vecadd(4096, 2, SystemParams::default(), &SimConfig::default());
        assert!(!r.truncated);
        assert_eq!(r.firings, 2048);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn wider_vectorization_is_faster() {
        let r1 = sim_vecadd(4096, 1, SystemParams::default(), &SimConfig::default());
        let r2 = sim_vecadd(4096, 2, SystemParams::default(), &SimConfig::default());
        assert!(
            r2.cycles < r1.cycles,
            "u2 {} !< u1 {}",
            r2.cycles,
            r1.cycles
        );
    }

    #[test]
    fn one_hot_bypass_doubles_single_stream_rate() {
        // Figure 11: without the bypass, a lone stream issues every other
        // cycle. Build an mDFG where each engine carries exactly one
        // stream: a scratchpad-resident input and a DMA-drained output.
        use overgen_mdfg::{ArrayNode, InstNode, MdfgNode, MemPref, ReuseInfo, StreamNode};
        let mut g = Mdfg::new("single", 0);
        g.set_unroll(1);
        g.set_total_iterations(4096.0);
        let hot = ReuseInfo {
            traffic_bytes: 4096.0 * 8.0 * 64.0,
            footprint_bytes: 4096.0 * 8.0,
            ..ReuseInfo::default()
        };
        let cold = ReuseInfo {
            traffic_bytes: 4096.0 * 8.0,
            footprint_bytes: 4096.0 * 8.0,
            ..ReuseInfo::default()
        };
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new(
            "a",
            4096,
            MemPref::PreferSpad,
        )));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new(
            "c",
            32768,
            MemPref::PreferDram,
        )));
        let ra = g.add_node(MdfgNode::InputStream(StreamNode::read("a", 16, hot)));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(
            overgen_ir::Op::Add,
            DataType::I64,
            1,
        )));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write("c", 16, cold)));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ra, add).unwrap();
        g.add_edge(add, wc).unwrap();
        g.add_edge(wc, ac).unwrap();

        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&g, &sys, None).unwrap();
        let with = simulate(&g, &sched, &sys, &SimConfig::default());
        let without = simulate(
            &g,
            &sched,
            &sys,
            &SimConfig {
                one_hot_bypass: false,
                ..Default::default()
            },
        );
        assert!(
            without.cycles as f64 > with.cycles as f64 * 1.5,
            "bypass {} vs none {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn dram_bound_workload_slows_down() {
        // Same tile count and work split; fewer DRAM channels must cost
        // cycles once the L2 cannot capture the footprint.
        let mk = |channels| SystemParams {
            tiles: 8,
            l2_banks: 8,
            l2_kb: 16, // too small to capture: all traffic cold
            noc_bw_bytes: 64,
            dram_channels: channels,
        };
        let fast = sim_vecadd(8192, 2, mk(4), &SimConfig::default());
        let slow = sim_vecadd(8192, 2, mk(1), &SimConfig::default());
        assert!(
            slow.cycles > fast.cycles,
            "slow {} fast {}",
            slow.cycles,
            fast.cycles
        );
        assert!(slow.stall_input > 0);
    }

    #[test]
    fn recurrence_traffic_bypasses_memory() {
        let k = KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // FIR at unroll 2 needs more fabric than the 2x2 test mesh offers;
        // use the general overlay (and a matching i64-capable config).
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let r = simulate(&mdfg, &sched, &sys, &SimConfig::default());
        assert!(!r.truncated);
        assert!(r.bytes_rec > 0, "recurrence engine unused");
    }

    /// The drain-tail scenario of the calibrated 992-cycle regression: a
    /// broadcast read over a deep write FIFO on a single small tile.
    fn drain_tail_setup() -> (Mdfg, Schedule, SysAdg, SimConfig) {
        use overgen_mdfg::{ArrayNode, InstNode, MdfgNode, MemPref, ReuseInfo, StreamNode};
        let firings = 256u64;
        let mut g = Mdfg::new("overfetch", 0);
        g.set_unroll(1);
        g.set_total_iterations(firings as f64);
        let big = ReuseInfo {
            traffic_bytes: 1024.0 * 1024.0,
            footprint_bytes: 1024.0 * 1024.0,
            ..ReuseInfo::default()
        };
        let out = ReuseInfo {
            traffic_bytes: firings as f64 * 16.0,
            footprint_bytes: firings as f64 * 16.0,
            ..ReuseInfo::default()
        };
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new(
            "a",
            131072,
            MemPref::PreferDram,
        )));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new(
            "c",
            4096,
            MemPref::PreferDram,
        )));
        let ra = g.add_node(MdfgNode::InputStream(
            StreamNode::read("a", 8, big).with_broadcast(),
        ));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(
            overgen_ir::Op::Add,
            DataType::I64,
            1,
        )));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write("c", 16, out)));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ra, add).unwrap();
        g.add_edge(add, wc).unwrap();
        g.add_edge(wc, ac).unwrap();

        let sys = SysAdg::new(
            mesh(&MeshSpec::default()),
            SystemParams {
                tiles: 1,
                l2_banks: 4,
                l2_kb: 256,
                noc_bw_bytes: 32,
                dram_channels: 1,
            },
        );
        let sched = schedule(&g, &sys, None).unwrap();
        // A deep write FIFO leaves a long drain tail after the last
        // firing; the tail is where the stale read used to contend.
        let cfg = SimConfig {
            fifo_factor: 256,
            ..Default::default()
        };
        (g, sched, sys, cfg)
    }

    #[test]
    fn broadcast_read_stops_fetching_after_last_firing() {
        // Regression: a broadcast read stream's byte budget (the whole
        // replicated array) far exceeds what compute consumes. It used to
        // stay active after the last firing, stealing round-robin slots
        // and shared budget from the write drain — inflating cycle counts.
        let (g, sched, sys, cfg) = drain_tail_setup();
        let r = simulate(&g, &sched, &sys, &cfg);
        assert!(!r.truncated);
        assert_eq!(r.firings, 256);
        // Calibrated: 992 cycles with the firing gate, 1120 when the
        // broadcast read stays active through the drain tail.
        assert!(
            r.cycles < 1_050,
            "drain tail contended: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn soa_batch_matches_simulate_on_the_drain_tail_case() {
        // Pin of the PR-4 drain-tail contention fix against the SoA
        // arena: a warm batch (run repeatedly, interleaved with other
        // grid points) must report the exact bytes/cycles/stalls that a
        // fresh one-shot `simulate` reports.
        let (g, sched, sys, cfg) = drain_tail_setup();
        let fresh = simulate(&g, &sched, &sys, &cfg);
        let mut batch = SimBatch::new(&g, &sched, &sys.adg, &cfg);
        let warm_once = batch.run(&sys.sys);
        // Dirty the arena with a different grid point, then return.
        let other = SystemParams {
            tiles: 4,
            l2_banks: 16,
            l2_kb: 2048,
            noc_bw_bytes: 64,
            dram_channels: 2,
        };
        let _ = batch.run(&other);
        let warm_again = batch.run(&sys.sys);
        assert_eq!(fresh, warm_once);
        assert_eq!(fresh, warm_again);
    }

    #[test]
    fn batch_reuse_matches_fresh_simulation_across_a_grid() {
        // Warm-state reuse across sibling grid points must be invisible:
        // every report equals the one-shot simulator's.
        let mdfg = lower(
            &vecadd(4096),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let adg = mesh(&MeshSpec::default());
        let sys0 = SysAdg::new(adg.clone(), SystemParams::default());
        let sched = schedule(&mdfg, &sys0, None).unwrap();
        let cfg = SimConfig::default();
        let mut batch = SimBatch::new(&mdfg, &sched, &adg, &cfg);
        for tiles in [1u32, 2, 4, 8] {
            for (banks, kb, noc) in [(2u32, 256u32, 32u32), (8, 512, 64), (16, 2048, 64)] {
                let sys = SystemParams {
                    tiles,
                    l2_banks: banks,
                    l2_kb: kb,
                    noc_bw_bytes: noc,
                    dram_channels: 1,
                };
                let warm = batch.run(&sys);
                let fresh = simulate(&mdfg, &sched, &SysAdg::new(adg.clone(), sys), &cfg);
                assert_eq!(warm, fresh, "tiles={tiles} banks={banks} kb={kb} noc={noc}");
            }
        }
    }

    #[test]
    fn cached_runs_match_fresh_simulation_across_a_grid() {
        // The sibling-reuse cache must be invisible: every `run_cached`
        // report equals the one-shot simulator's, across tile counts,
        // bank counts, capacities, and NoC widths — and at least some
        // sibling points must actually be served from the cache.
        let mdfg = lower(
            &vecadd(4096),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let adg = mesh(&MeshSpec::default());
        let sys0 = SysAdg::new(adg.clone(), SystemParams::default());
        let sched = schedule(&mdfg, &sys0, None).unwrap();
        let cfg = SimConfig::default();
        let mut batch = SimBatch::new(&mdfg, &sched, &adg, &cfg);
        for tiles in [1u32, 2, 4] {
            for banks in [4u32, 16] {
                for kb in [256u32, 2048] {
                    for noc in [32u32, 64] {
                        let sys = SystemParams {
                            tiles,
                            l2_banks: banks,
                            l2_kb: kb,
                            noc_bw_bytes: noc,
                            dram_channels: 1,
                        };
                        let cached = batch.run_cached(&sys);
                        let fresh = simulate(&mdfg, &sched, &SysAdg::new(adg.clone(), sys), &cfg);
                        assert_eq!(
                            cached, fresh,
                            "tiles={tiles} banks={banks} kb={kb} noc={noc}"
                        );
                    }
                }
            }
        }
        assert!(batch.cache_hits() > 0, "no sibling reuse across the grid");
    }

    #[test]
    fn cache_reuses_only_provably_identical_runs() {
        // A compute-bound region (wide DMA engine, tiny streams) never
        // saturates the shared budgets, so every same-tile sibling must
        // hit; going back to a bandwidth below the recorded requirement
        // watermark must miss and resimulate — with the same outcome a
        // fresh simulation produces.
        let mdfg = lower(
            &vecadd(16384),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let spec = MeshSpec {
            dma_bw: 64,
            ..MeshSpec::default()
        };
        let adg = mesh(&spec);
        let sys_of = |banks: u32, noc: u32| SystemParams {
            tiles: 1,
            l2_banks: banks,
            l2_kb: 2048,
            noc_bw_bytes: noc,
            dram_channels: 4,
        };
        let sys0 = SysAdg::new(adg.clone(), sys_of(16, 128));
        let sched = schedule(&mdfg, &sys0, None).unwrap();
        let cfg = SimConfig::default();
        let mut batch = SimBatch::new(&mdfg, &sched, &adg, &cfg);
        let _ = batch.run_cached(&sys_of(16, 128));
        assert_eq!(batch.cache_hits(), 0);
        let wider = batch.run_cached(&sys_of(16, 192));
        assert_eq!(batch.cache_hits(), 1, "wider unclamped NoC must reuse");
        let fresh = simulate(
            &mdfg,
            &sched,
            &SysAdg::new(adg.clone(), sys_of(16, 192)),
            &cfg,
        );
        assert_eq!(wider, fresh);
        // A 1 B/cycle NoC is far below any plausible requirement: the
        // cache must refuse and resimulate.
        let narrow = batch.run_cached(&sys_of(16, 1));
        let fresh = simulate(
            &mdfg,
            &sched,
            &SysAdg::new(adg.clone(), sys_of(16, 1)),
            &cfg,
        );
        assert_eq!(narrow, fresh);
        assert_eq!(batch.cache_hits(), 1, "clamped sibling must not reuse");
    }

    #[test]
    fn truncated_run_reports_partial_progress() {
        // SimReport edge case: a run cut off by the cycle cap is flagged,
        // reports fewer firings than the region needs, and still produces
        // finite rates.
        let cfg = SimConfig {
            max_cycles: 8,
            ..Default::default()
        };
        let r = sim_vecadd(4096, 2, SystemParams::default(), &cfg);
        assert!(r.truncated);
        assert!(r.firings < 2048);
        assert!(r.cycles >= 8, "cap + pipeline fill: {}", r.cycles);
        assert!(r.ipc.is_finite() && r.ipc >= 0.0);
        assert!(r.seconds(100.0).is_finite());
    }

    #[test]
    fn zero_byte_write_stream_completes_immediately() {
        // SimReport edge case: a write stream with a zero-byte firing
        // quantum never occupies drain bandwidth; the region completes
        // with zero traffic on that stream and no output stalls.
        use overgen_mdfg::{ArrayNode, InstNode, MdfgNode, MemPref, ReuseInfo, StreamNode};
        let mut g = Mdfg::new("zerow", 0);
        g.set_unroll(1);
        g.set_total_iterations(64.0);
        let info = ReuseInfo {
            traffic_bytes: 64.0 * 8.0,
            footprint_bytes: 64.0 * 8.0,
            ..ReuseInfo::default()
        };
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new(
            "a",
            64,
            MemPref::PreferDram,
        )));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new(
            "c",
            64,
            MemPref::PreferDram,
        )));
        let ra = g.add_node(MdfgNode::InputStream(StreamNode::read("a", 8, info)));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(
            overgen_ir::Op::Add,
            DataType::I64,
            1,
        )));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write("c", 0, info)));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ra, add).unwrap();
        g.add_edge(add, wc).unwrap();
        g.add_edge(wc, ac).unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&g, &sys, None).unwrap();
        let r = simulate(&g, &sched, &sys, &SimConfig::default());
        assert!(!r.truncated);
        assert_eq!(r.firings, 64);
        assert_eq!(r.stall_output, 0);
    }

    #[test]
    fn reconfig_is_microseconds() {
        let r = sim_vecadd(1024, 1, SystemParams::default(), &SimConfig::default());
        // at ~100 MHz: thousands of cycles => microseconds
        let s = r.reconfig_seconds(100.0);
        assert!(s > 1e-7 && s < 1e-3, "reconfig {s}");
    }

    #[test]
    fn ipc_close_to_model_when_compute_bound() {
        // A wide DMA engine (64 B/cyc) keeps three 16 B/firing streams fed.
        let mdfg = lower(
            &vecadd(16384),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let spec = MeshSpec {
            dma_bw: 64,
            ..MeshSpec::default()
        };
        let sys = SysAdg::new(
            mesh(&spec),
            SystemParams {
                tiles: 1,
                l2_banks: 16,
                l2_kb: 2048,
                noc_bw_bytes: 128,
                dram_channels: 4,
            },
        );
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let r = simulate(&mdfg, &sched, &sys, &SimConfig::default());
        // steady state: one firing per cycle -> ipc ~= insts_per_firing
        let ideal = mdfg.insts_per_firing();
        assert!(
            r.ipc > 0.5 * ideal && r.ipc <= ideal * 1.01,
            "ipc {}",
            r.ipc
        );
    }
}
