//! The cycle-stepped flow simulation.

use std::collections::BTreeMap;

use overgen_adg::{AdgNode, NodeId, SysAdg};
use overgen_mdfg::{Mdfg, MdfgNode, MdfgNodeId, MdfgNodeKind};
use overgen_scheduler::Schedule;
use overgen_telemetry::{event, span};

use crate::report::SimReport;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
    /// DRAM access latency in cycles (pipeline-fill only; streams prefetch
    /// deeply so bandwidth dominates steady state).
    pub dram_latency: u64,
    /// Port FIFO capacity as a multiple of the firing quantum.
    pub fifo_factor: u64,
    /// Enable the stream-table one-hot bypass (Figure 11). Disabling it
    /// halves the issue rate of engines with a single active stream.
    pub one_hot_bypass: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 200_000_000,
            dram_latency: 40,
            fifo_factor: 4,
            one_hot_bypass: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EngineKind {
    Dma,
    Spad,
    Gen,
    Rec,
    Reg,
}

#[derive(Debug)]
struct StreamState {
    engine: NodeId,
    kind: EngineKind,
    is_write: bool,
    /// Whether the stream has a fabric port (index streams do not).
    has_port: bool,
    /// Bytes the port consumes/produces per firing (0 between stationary
    /// refreshes).
    bytes_per_firing: u64,
    /// The port refreshes every `stationary` firings.
    stationary: u64,
    /// Total bytes the engine must move for this stream over the run.
    total_bytes: u64,
    /// Bytes moved so far by the engine.
    moved: u64,
    /// Current port FIFO occupancy in bytes.
    fifo: u64,
    /// FIFO capacity.
    fifo_cap: u64,
    /// Bytes that must still come from DRAM (cold misses).
    dram_left: u64,
    /// For recurrence reads: bytes available to forward from the paired
    /// write stream.
    rec_avail: u64,
    /// Paired recurrence read stream (for write streams feeding one).
    rec_pair: Option<usize>,
    /// Memory-bandwidth amplification for strided DRAM access: only a
    /// fraction of every DRAM line holds useful elements.
    mem_amp: u64,
}

/// Simulate a scheduled mDFG on a system ADG.
pub fn simulate(mdfg: &Mdfg, sched: &Schedule, sys: &SysAdg, cfg: &SimConfig) -> SimReport {
    let _span = span!("sim.run", mdfg = mdfg.name(), variant = mdfg.variant());
    let _timer = overgen_telemetry::profile::maybe_phase(
        overgen_telemetry::Phase::Simulate,
        overgen_telemetry::profile::NO_CLASS,
    );
    // Cross-iteration regions run on one tile and fire at the
    // dependency-chain interval instead of II = 1.
    let tiles = if mdfg.sequential() {
        1
    } else {
        u64::from(sys.sys.tiles).max(1)
    };
    let fire_interval = if mdfg.sequential() {
        (mdfg.critical_path_len() as u64 / 2).max(1)
    } else {
        1
    };
    let firings_total = mdfg.firings().max(1.0) as u64;
    let firings_tile = firings_total.div_ceil(tiles);

    // ---- build stream states -------------------------------------------
    let mut streams: Vec<StreamState> = Vec::new();
    let mut index_of: BTreeMap<MdfgNodeId, usize> = BTreeMap::new();

    for (sid, n) in mdfg.nodes() {
        let s = match n.as_stream() {
            Some(s) => s,
            None => continue,
        };
        let engine = stream_engine(mdfg, sched, sid);
        let engine = match engine {
            Some(e) => e,
            None => continue, // unscheduled stream: treated as free
        };
        let kind = match sys.adg.node(engine) {
            Some(AdgNode::Dma(_)) => EngineKind::Dma,
            Some(AdgNode::Spad(_)) => EngineKind::Spad,
            Some(AdgNode::Gen(_)) => EngineKind::Gen,
            Some(AdgNode::Rec(_)) => EngineKind::Rec,
            Some(AdgNode::Reg(_)) => EngineKind::Reg,
            _ => EngineKind::Dma,
        };
        let stationary = s.reuse.stationary.max(1.0).round() as u64;
        let refreshes = firings_tile.div_ceil(stationary);
        let mut total_bytes = refreshes * s.bytes_per_firing;
        // Broadcast-replicated arrays: every tile streams the whole array
        // (no partitioning win) — wasted bandwidth, the ellpack outlier.
        if s.broadcast {
            total_bytes = total_bytes.max(s.reuse.footprint_bytes as u64);
        }
        // Cold-miss bytes: the footprint must be fetched from DRAM once;
        // re-references hit L2 only when every tile's share fits.
        let fits_l2 = s.reuse.footprint_bytes * tiles as f64 <= f64::from(sys.sys.l2_kb) * 1024.0;
        let footprint_tile = if s.broadcast {
            s.reuse.footprint_bytes as u64
        } else {
            (s.reuse.footprint_bytes / tiles as f64) as u64
        };
        let dram_left = if kind == EngineKind::Dma {
            if fits_l2 {
                footprint_tile.min(total_bytes)
            } else {
                total_bytes
            }
        } else {
            0
        };
        let has_port = sched
            .assignment
            .get(&sid)
            .map(|a| {
                matches!(
                    sys.adg.node(*a),
                    Some(AdgNode::InPort(_)) | Some(AdgNode::OutPort(_))
                )
            })
            .unwrap_or(false);
        let mem_amp =
            if s.pattern == overgen_mdfg::StreamPattern::Strided && kind == EngineKind::Dma {
                4 // typical channel strides (3-4) waste ~3/4 of each line
            } else {
                1
            };
        let idx = streams.len();
        index_of.insert(sid, idx);
        streams.push(StreamState {
            engine,
            kind,
            mem_amp,
            is_write: s.is_write,
            has_port,
            bytes_per_firing: s.bytes_per_firing,
            stationary,
            total_bytes,
            moved: 0,
            fifo: 0,
            fifo_cap: (s.bytes_per_firing * cfg.fifo_factor).max(8),
            dram_left,
            rec_avail: 0,
            rec_pair: None,
        });
    }

    // Recurrence pairs: write stream -> read stream edges.
    let pairs: Vec<(MdfgNodeId, MdfgNodeId)> = mdfg
        .edges()
        .filter(|(s, d)| {
            mdfg.node(*s).map(MdfgNode::kind) == Some(MdfgNodeKind::OutputStream)
                && mdfg.node(*d).map(MdfgNode::kind) == Some(MdfgNodeKind::InputStream)
        })
        .collect();
    for (w, r) in pairs {
        if let (Some(&wi), Some(&ri)) = (index_of.get(&w), index_of.get(&r)) {
            streams[wi].rec_pair = Some(ri);
            // Prime the loop: initial values sit in the read port FIFO.
            streams[ri].fifo = streams[ri].fifo_cap;
        }
    }

    // ---- per-engine stream lists ----------------------------------------
    let mut engine_streams: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, st) in streams.iter().enumerate() {
        engine_streams.entry(st.engine).or_default().push(i);
    }
    let engine_bw: BTreeMap<NodeId, u64> = engine_streams
        .keys()
        .map(|e| {
            let bw = match sys.adg.node(*e).and_then(AdgNode::engine_bw) {
                Some(bw) => bw,
                None => {
                    // A stream bound to a node without engine bandwidth
                    // (missing, or not an engine kind) is a scheduler bug:
                    // loud in debug, counted and traced in release so a
                    // silently-assumed 8 B/cycle never skews results
                    // unnoticed.
                    debug_assert!(
                        false,
                        "stream engine n{} of `{}` is not an engine node; \
                         defaulting to 8 B/cycle",
                        e.index(),
                        mdfg.name(),
                    );
                    if let Some(c) = overgen_telemetry::current() {
                        c.registry().counter("sim.engine_bw_default").inc();
                    }
                    event!(
                        "sim.engine_bw_default",
                        mdfg = mdfg.name(),
                        node = e.index() as u64,
                        assumed_bw = 8u64,
                    );
                    8
                }
            };
            (*e, u64::from(bw))
        })
        .collect();

    // Shared per-tile budgets (fractional carry so an uneven tile split
    // does not round bandwidth away).
    let l2_bw_frac = sys.sys.l2_bw_bytes() as f64 / tiles as f64;
    let noc_bw_tile = u64::from(sys.sys.noc_bw_bytes).max(1);
    let dram_bw_frac = sys.sys.dram_bw_bytes() as f64 / tiles as f64;
    let mut l2_carry = 0.0f64;
    let mut dram_carry = 0.0f64;

    // Scratchpad preload: spad-resident arrays stream from DRAM once
    // before the region starts (double-buffered for later tiles, but the
    // first fill is exposed).
    let mut spad_fill_bytes = 0u64;
    {
        let mut seen = std::collections::BTreeSet::new();
        for (_, n) in mdfg.nodes() {
            if let Some(st) = n.as_stream() {
                if !st.is_write
                    && sched.placement.spad_arrays.contains(&st.array)
                    && seen.insert(st.array.clone())
                {
                    let fp = st.reuse.footprint_bytes as u64;
                    spad_fill_bytes += if st.broadcast { fp } else { fp / tiles };
                }
            }
        }
    }
    let spad_fill_cycles =
        (spad_fill_bytes as f64 / (sys.sys.dram_bw_bytes() as f64 / tiles as f64)) as u64;

    // Pipeline latency: kernel launch over RoCC (+ cache warm), per-stream
    // parameter configuration, fabric depth, and the DRAM fill.
    let n_streams = streams.len() as u64;
    let pipeline_fill = 500
        + 30 * n_streams
        + mdfg.critical_path_len() as u64 * 2
        + cfg.dram_latency
        + spad_fill_cycles;

    // ---- main loop --------------------------------------------------------
    let mut fired: u64 = 0;
    let mut cycles: u64 = 0;
    let mut report = SimReport::default();
    let mut rr_offset = 0usize; // engine round-robin fairness

    while cycles < cfg.max_cycles {
        cycles += 1;
        l2_carry += l2_bw_frac;
        dram_carry += dram_bw_frac;
        let mut l2_budget = l2_carry as u64;
        let mut noc_budget = noc_bw_tile;
        let mut dram_budget = dram_carry as u64;
        let (l2_start, dram_start) = (l2_budget, dram_budget);

        // 1. Engines move data.
        for (e, list) in &engine_streams {
            let bw = engine_bw[e];
            let active: Vec<usize> = list
                .iter()
                .copied()
                .filter(|&i| stream_active(&streams[i], fired, firings_tile))
                .collect();
            if active.is_empty() {
                continue;
            }
            // Stream-table issue: one stream per cycle. Without the
            // one-hot bypass a lone stream issues every other cycle.
            if active.len() == 1 && !cfg.one_hot_bypass && cycles.is_multiple_of(2) {
                continue;
            }
            let pick = active[rr_offset % active.len()];
            let st = &mut streams[pick];
            let mut quantum = bw;
            // Budget gating for DMA traffic; strided streams waste a
            // multiple of their useful bytes on partially-used lines.
            if st.kind == EngineKind::Dma {
                quantum = quantum.min(l2_budget).min(noc_budget) / st.mem_amp;
                if quantum == 0 {
                    continue;
                }
            }
            if st.is_write {
                // Drain the out-port FIFO toward memory / recurrence. A
                // recurrence forward is one data movement: it lands
                // directly in the paired read stream's port FIFO.
                let n = quantum.min(st.fifo);
                if n > 0 {
                    st.fifo -= n;
                    st.moved += n;
                    match st.kind {
                        EngineKind::Dma => {
                            l2_budget -= n;
                            noc_budget -= n;
                            report.bytes_l2 += n;
                        }
                        EngineKind::Spad => report.bytes_spad += n,
                        EngineKind::Rec => report.bytes_rec += n,
                        _ => {}
                    }
                    if let Some(ri) = st.rec_pair {
                        // Recurring values update the read port in place:
                        // cap at the FIFO size (stationary reductions keep
                        // replacing the same cells).
                        let cap = streams[ri].fifo_cap;
                        streams[ri].fifo = (streams[ri].fifo + n).min(cap);
                        streams[ri].moved += n;
                    }
                }
            } else {
                // Supply the in-port FIFO.
                let space = st.fifo_cap.saturating_sub(st.fifo);
                let left = st.total_bytes.saturating_sub(st.moved);
                let mut n = quantum.min(space).min(left);
                if st.kind == EngineKind::Rec {
                    n = n.min(st.rec_avail);
                }
                if st.kind == EngineKind::Dma {
                    // Cold part of the transfer also needs DRAM bandwidth;
                    // strided streams use only 1/amp of each fetched line.
                    let cold = n.min(st.dram_left);
                    let cold = cold.min(dram_budget / st.mem_amp);
                    let hot = n - n.min(st.dram_left);
                    n = cold + hot;
                    dram_budget -= (cold * st.mem_amp).min(dram_budget);
                    st.dram_left -= cold;
                    report.bytes_dram += cold * st.mem_amp;
                    report.bytes_l2 += hot;
                    l2_budget = l2_budget.saturating_sub(n);
                    noc_budget = noc_budget.saturating_sub(n);
                }
                if st.kind == EngineKind::Spad {
                    report.bytes_spad += n;
                }
                if st.kind == EngineKind::Rec {
                    st.rec_avail -= n;
                }
                if n > 0 {
                    st.moved += n;
                    if st.has_port {
                        st.fifo += n;
                    }
                }
            }
        }
        rr_offset += 1;

        // 2. Fabric fires when all input quanta are present and all output
        //    FIFOs have space (and the dependency interval has elapsed).
        if fired < firings_tile && cycles.is_multiple_of(fire_interval) {
            let mut can_fire = true;
            for st in &streams {
                if st.is_write || !st.has_port {
                    continue;
                }
                let needs_refresh = fired.is_multiple_of(st.stationary);
                if needs_refresh && st.fifo < st.bytes_per_firing {
                    can_fire = false;
                    break;
                }
            }
            if can_fire {
                for st in &streams {
                    if !st.is_write || !st.has_port {
                        continue;
                    }
                    if st.fifo + st.bytes_per_firing > st.fifo_cap {
                        can_fire = false;
                        break;
                    }
                }
                if !can_fire {
                    report.stall_output += 1;
                }
            } else {
                report.stall_input += 1;
            }
            if can_fire {
                for st in &mut streams {
                    if !st.has_port {
                        continue;
                    }
                    if st.is_write {
                        st.fifo += st.bytes_per_firing;
                    } else if fired.is_multiple_of(st.stationary) {
                        st.fifo -= st.bytes_per_firing;
                    }
                }
                fired += 1;
            }
        }

        // Return unused budget to the carry (cap one extra cycle's worth).
        l2_carry = (l2_carry - (l2_start - l2_budget) as f64).min(2.0 * l2_bw_frac);
        dram_carry = (dram_carry - (dram_start - dram_budget) as f64).min(2.0 * dram_bw_frac);

        // 3. Done when all firings issued and all write streams drained.
        if fired >= firings_tile && streams.iter().filter(|s| s.is_write).all(|s| s.fifo == 0) {
            break;
        }
    }

    report.truncated = cycles >= cfg.max_cycles;
    if report.truncated {
        // A truncated run is a modelling bug (the flow never converged):
        // surface it instead of silently reporting bogus IPC.
        if let Some(c) = overgen_telemetry::current() {
            c.registry().counter("sim.truncated").inc();
        }
        event!(
            "sim.truncated",
            mdfg = mdfg.name(),
            variant = mdfg.variant(),
            max_cycles = cfg.max_cycles,
            fired = fired,
            firings_tile = firings_tile,
        );
    }
    report.bytes_dram += spad_fill_bytes;
    report.cycles = cycles + pipeline_fill;
    report.firings = fired;
    let retired = fired as f64 * mdfg.insts_per_firing();
    report.ipc = retired / report.cycles as f64 * tiles as f64;
    report.reconfig_cycles = sys.config_bytes() / 16 + 1_000;
    event!(
        "sim.done",
        mdfg = mdfg.name(),
        variant = mdfg.variant(),
        cycles = report.cycles,
        firings = report.firings,
        ipc = report.ipc,
        stall_input = report.stall_input,
        stall_output = report.stall_output,
        bytes_dram = report.bytes_dram,
        bytes_l2 = report.bytes_l2,
        bytes_spad = report.bytes_spad,
        bytes_rec = report.bytes_rec,
        truncated = report.truncated,
    );
    report
}

/// Whether a stream still needs engine issue slots. Recurrence *read*
/// streams are filled directly by the forward of their paired write
/// stream, so they never occupy an issue slot. Read streams go inactive
/// once compute has issued every firing they feed: bytes they have not
/// fetched by then will never be consumed, and fetching them anyway would
/// burn shared L2/NoC/DRAM budget (and round-robin slots) that write
/// drains still need — over-fetch used to inflate cycle counts here.
fn stream_active(st: &StreamState, fired: u64, firings_tile: u64) -> bool {
    if st.kind == EngineKind::Rec && !st.is_write {
        return false;
    }
    if st.is_write {
        st.fifo > 0 || st.moved < st.total_bytes
    } else {
        fired < firings_tile && st.moved < st.total_bytes
    }
}

/// The engine serving a stream: recorded by the scheduler at port-binding
/// time (`Schedule::stream_engines`).
fn stream_engine(_mdfg: &Mdfg, sched: &Schedule, sid: MdfgNodeId) -> Option<NodeId> {
    sched.stream_engines.get(&sid).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};
    use overgen_scheduler::schedule;

    fn vecadd(n: u64) -> overgen_ir::Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn sim_vecadd(n: u64, unroll: u32, sys_params: SystemParams, cfg: &SimConfig) -> SimReport {
        let mdfg = lower(
            &vecadd(n),
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), sys_params);
        let sched = schedule(&mdfg, &sys, None).unwrap();
        simulate(&mdfg, &sched, &sys, cfg)
    }

    #[test]
    fn completes_and_counts_firings() {
        let r = sim_vecadd(4096, 2, SystemParams::default(), &SimConfig::default());
        assert!(!r.truncated);
        assert_eq!(r.firings, 2048);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn wider_vectorization_is_faster() {
        let r1 = sim_vecadd(4096, 1, SystemParams::default(), &SimConfig::default());
        let r2 = sim_vecadd(4096, 2, SystemParams::default(), &SimConfig::default());
        assert!(
            r2.cycles < r1.cycles,
            "u2 {} !< u1 {}",
            r2.cycles,
            r1.cycles
        );
    }

    #[test]
    fn one_hot_bypass_doubles_single_stream_rate() {
        // Figure 11: without the bypass, a lone stream issues every other
        // cycle. Build an mDFG where each engine carries exactly one
        // stream: a scratchpad-resident input and a DMA-drained output.
        use overgen_mdfg::{ArrayNode, InstNode, MdfgNode, MemPref, ReuseInfo, StreamNode};
        let mut g = Mdfg::new("single", 0);
        g.set_unroll(1);
        g.set_total_iterations(4096.0);
        let hot = ReuseInfo {
            traffic_bytes: 4096.0 * 8.0 * 64.0,
            footprint_bytes: 4096.0 * 8.0,
            ..ReuseInfo::default()
        };
        let cold = ReuseInfo {
            traffic_bytes: 4096.0 * 8.0,
            footprint_bytes: 4096.0 * 8.0,
            ..ReuseInfo::default()
        };
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new(
            "a",
            4096,
            MemPref::PreferSpad,
        )));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new(
            "c",
            32768,
            MemPref::PreferDram,
        )));
        let ra = g.add_node(MdfgNode::InputStream(StreamNode::read("a", 16, hot)));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(
            overgen_ir::Op::Add,
            DataType::I64,
            1,
        )));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write("c", 16, cold)));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ra, add).unwrap();
        g.add_edge(add, wc).unwrap();
        g.add_edge(wc, ac).unwrap();

        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&g, &sys, None).unwrap();
        let with = simulate(&g, &sched, &sys, &SimConfig::default());
        let without = simulate(
            &g,
            &sched,
            &sys,
            &SimConfig {
                one_hot_bypass: false,
                ..Default::default()
            },
        );
        assert!(
            without.cycles as f64 > with.cycles as f64 * 1.5,
            "bypass {} vs none {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn dram_bound_workload_slows_down() {
        // Same tile count and work split; fewer DRAM channels must cost
        // cycles once the L2 cannot capture the footprint.
        let mk = |channels| SystemParams {
            tiles: 8,
            l2_banks: 8,
            l2_kb: 16, // too small to capture: all traffic cold
            noc_bw_bytes: 64,
            dram_channels: channels,
        };
        let fast = sim_vecadd(8192, 2, mk(4), &SimConfig::default());
        let slow = sim_vecadd(8192, 2, mk(1), &SimConfig::default());
        assert!(
            slow.cycles > fast.cycles,
            "slow {} fast {}",
            slow.cycles,
            fast.cycles
        );
        assert!(slow.stall_input > 0);
    }

    #[test]
    fn recurrence_traffic_bypasses_memory() {
        let k = KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // FIR at unroll 2 needs more fabric than the 2x2 test mesh offers;
        // use the general overlay (and a matching i64-capable config).
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let r = simulate(&mdfg, &sched, &sys, &SimConfig::default());
        assert!(!r.truncated);
        assert!(r.bytes_rec > 0, "recurrence engine unused");
    }

    #[test]
    fn broadcast_read_stops_fetching_after_last_firing() {
        // Regression: a broadcast read stream's byte budget (the whole
        // replicated array) far exceeds what compute consumes. It used to
        // stay active after the last firing, stealing round-robin slots
        // and shared budget from the write drain — inflating cycle counts.
        use overgen_mdfg::{ArrayNode, InstNode, MdfgNode, MemPref, ReuseInfo, StreamNode};
        let firings = 256u64;
        let mut g = Mdfg::new("overfetch", 0);
        g.set_unroll(1);
        g.set_total_iterations(firings as f64);
        let big = ReuseInfo {
            traffic_bytes: 1024.0 * 1024.0,
            footprint_bytes: 1024.0 * 1024.0,
            ..ReuseInfo::default()
        };
        let out = ReuseInfo {
            traffic_bytes: firings as f64 * 16.0,
            footprint_bytes: firings as f64 * 16.0,
            ..ReuseInfo::default()
        };
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new(
            "a",
            131072,
            MemPref::PreferDram,
        )));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new(
            "c",
            4096,
            MemPref::PreferDram,
        )));
        let ra = g.add_node(MdfgNode::InputStream(
            StreamNode::read("a", 8, big).with_broadcast(),
        ));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(
            overgen_ir::Op::Add,
            DataType::I64,
            1,
        )));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write("c", 16, out)));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ra, add).unwrap();
        g.add_edge(add, wc).unwrap();
        g.add_edge(wc, ac).unwrap();

        let sys = SysAdg::new(
            mesh(&MeshSpec::default()),
            SystemParams {
                tiles: 1,
                l2_banks: 4,
                l2_kb: 256,
                noc_bw_bytes: 32,
                dram_channels: 1,
            },
        );
        let sched = schedule(&g, &sys, None).unwrap();
        // A deep write FIFO leaves a long drain tail after the last
        // firing; the tail is where the stale read used to contend.
        let cfg = SimConfig {
            fifo_factor: 256,
            ..Default::default()
        };
        let r = simulate(&g, &sched, &sys, &cfg);
        assert!(!r.truncated);
        assert_eq!(r.firings, firings);
        // Calibrated: 992 cycles with the firing gate, 1120 when the
        // broadcast read stays active through the drain tail.
        assert!(
            r.cycles < 1_050,
            "drain tail contended: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn reconfig_is_microseconds() {
        let r = sim_vecadd(1024, 1, SystemParams::default(), &SimConfig::default());
        // at ~100 MHz: thousands of cycles => microseconds
        let s = r.reconfig_seconds(100.0);
        assert!(s > 1e-7 && s < 1e-3, "reconfig {s}");
    }

    #[test]
    fn ipc_close_to_model_when_compute_bound() {
        // A wide DMA engine (64 B/cyc) keeps three 16 B/firing streams fed.
        let mdfg = lower(
            &vecadd(16384),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let spec = MeshSpec {
            dma_bw: 64,
            ..MeshSpec::default()
        };
        let sys = SysAdg::new(
            mesh(&spec),
            SystemParams {
                tiles: 1,
                l2_banks: 16,
                l2_kb: 2048,
                noc_bw_bytes: 128,
                dram_channels: 4,
            },
        );
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let r = simulate(&mdfg, &sched, &sys, &SimConfig::default());
        // steady state: one firing per cycle -> ipc ~= insts_per_firing
        let ideal = mdfg.insts_per_firing();
        assert!(
            r.ipc > 0.5 * ideal && r.ipc <= ideal * 1.01,
            "ipc {}",
            r.ipc
        );
    }
}
