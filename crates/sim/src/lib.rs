//! Cycle-level simulator for generated OverGen overlays.
//!
//! Plays the role of the paper's VCS RTL simulation + FPGA runs: executes a
//! scheduled mDFG on a system-level ADG and reports cycles, IPC, and
//! traffic. The model is a cycle-stepped *flow* simulation at the
//! granularity the paper's performance phenomena live at:
//!
//! - the **stream dispatcher** serialises stream configuration and dispatch
//!   (two-cycle minimum latency, one dispatch per cycle — §VI-B);
//! - each **stream engine** issues one stream request per cycle from its
//!   stream table; without the one-hot bypass a single active stream only
//!   issues every other cycle (Figure 11);
//! - **ports** are FIFOs; the fabric fires one (vectorized) DFG instance
//!   per cycle when every input port holds a firing's worth of data and the
//!   output FIFOs have space;
//! - **shared memory**: DMA traffic contends for NoC link bandwidth, banked
//!   L2 bandwidth and DRAM channel bandwidth, all divided across tiles;
//!   cold data comes from DRAM, re-referenced data hits L2 when the
//!   (all-tiles) footprint fits;
//! - **recurrence** traffic loops from output ports back to input ports
//!   without touching memory.
//!
//! Homogeneous tiles run the same region on partitioned data, so one tile
//! is simulated against per-tile shares of the shared bandwidths — exact
//! for the symmetric workloads of the paper's threading model (§VI-E).
//!
//! # Example
//!
//! ```
//! use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
//! use overgen_compiler::{lower, LowerChoices};
//! use overgen_ir::{expr, DataType, KernelBuilder, Suite};
//! use overgen_scheduler::schedule;
//! use overgen_sim::{simulate, SimConfig};
//!
//! let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
//!     .array_input("a", 4096).array_input("b", 4096).array_output("c", 4096)
//!     .loop_const("i", 4096)
//!     .assign("c", expr::idx("i"),
//!             expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")))
//!     .build().unwrap();
//! let mdfg = lower(&k, 0, &LowerChoices { unroll: 2, ..Default::default() }).unwrap();
//! let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
//! let sched = schedule(&mdfg, &sys, None).unwrap();
//! let report = simulate(&mdfg, &sched, &sys, &SimConfig::default());
//! assert!(report.cycles > 0 && report.ipc > 0.0);
//! ```

mod analytic;
mod flow;
mod report;

pub use analytic::{analytic_cycles, AnalyticBound};
pub use flow::{simulate, SimBatch, SimConfig};
pub use report::SimReport;
