//! Closed-form steady-state lower bound for the flow simulator.
//!
//! The cycle-stepped loop in [`flow`](crate::flow) is exact but costs one
//! tick per simulated cycle. Most system-DSE grid points, however, are
//! decided by a handful of ceilings the flow can never beat:
//!
//! - **compute II** — the fabric fires at most one (vectorized) DFG
//!   instance per `fire_interval` cycles, so a tile's share of the
//!   firings takes at least `firings_tile * fire_interval` cycles;
//! - **stream-engine issue** — each engine issues at most one stream per
//!   cycle, moving at most `bw` bytes (`bw / mem_amp` for strided DMA),
//!   so an engine needs at least `sum_i ceil(bytes_i / bw_eff)` cycles
//!   to move the bytes its streams must move (twice as long minus one
//!   with the one-hot bypass disabled and a single stream);
//! - **NoC** — all DMA traffic of a tile crosses its NoC link, at most
//!   `noc_bw_bytes` per cycle;
//! - **L2 bandwidth** — DMA traffic also spends per-tile L2 bank
//!   bandwidth, accrued fractionally at `l2_bw_bytes / tiles` per cycle
//!   from a carry that starts empty, so `T` cycles supply at most
//!   `T * frac` bytes;
//! - **DRAM bandwidth** — cold misses (the per-stream `dram_left`
//!   budget, amplified for strided access) drain the DRAM carry the
//!   same way.
//!
//! Every component is a provable lower bound on the flow loop's cycle
//! count (see DESIGN.md §12 for the soundness argument), so their max —
//! clamped to `max_cycles`, plus the deterministic pipeline fill — never
//! exceeds [`SimBatch::run`]'s reported cycles. The corresponding
//! [`AnalyticBound::ipc_upper`] is therefore a true upper bound on the
//! reported IPC, which is what lets the system DSE prune grid points
//! that provably cannot beat the incumbent without ticking the
//! simulator.

use overgen_adg::{SysAdg, SystemParams};
use overgen_mdfg::Mdfg;
use overgen_scheduler::Schedule;

use crate::flow::{EngineKind, SimBatch, SimConfig};

/// Closed-form lower-bound summary for one (template, grid-point) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticBound {
    /// Lower bound on [`crate::SimReport::cycles`] (pipeline fill
    /// included).
    pub cycles: u64,
    /// Upper bound on [`crate::SimReport::ipc`].
    pub ipc_upper: f64,
}

impl SimBatch {
    /// Bytes stream `i` forces its engine to move under `firings_tile`
    /// firings: what compute consumes (reads) or produces (writes).
    /// Recurrence reads are forwarded by their paired write and never
    /// occupy an issue slot; portless streams receive no fabric traffic.
    fn stream_demand(&self, i: usize, firings_tile: u64) -> u64 {
        if !self.has_port[i] {
            return 0;
        }
        if self.is_write[i] {
            // The fabric pushes `bytes_per_firing` on *every* firing and
            // completion requires the FIFO drained.
            firings_tile * self.bytes_per_firing[i]
        } else if self.kind[i] == EngineKind::Rec {
            0
        } else {
            // Reads refresh every `stationary` firings; consumption never
            // exceeds the stream's total byte budget.
            let refreshes = firings_tile.div_ceil(self.stationary[i]);
            (refreshes * self.bytes_per_firing[i]).min(self.stream_total_bytes(i, firings_tile))
        }
    }

    /// Compute the analytic lower bound for one grid point. Pure
    /// arithmetic over the template — no arena access, no allocation, no
    /// telemetry.
    pub fn bound(&self, sys: &SystemParams) -> AnalyticBound {
        let tiles = self.tiles(sys);
        let firings_tile = self.firings_tile(sys);

        // Compute II ceiling.
        let mut loop_bound = firings_tile * self.fire_interval;

        // Stream-engine issue ceilings (engines run in parallel: max).
        for lane in &self.lanes {
            let mut issues = 0u64;
            for i in lane.lo..lane.hi {
                let demand = self.stream_demand(i, firings_tile);
                if demand == 0 {
                    continue;
                }
                // Strided DMA moves at most bw/amp useful bytes per
                // issue. bw < amp would starve the stream outright; the
                // .max(1) keeps the bound finite (and still sound, since
                // the real run then truncates at `max_cycles`).
                let eff = if self.kind[i] == EngineKind::Dma {
                    (lane.bw / self.mem_amp[i]).max(1)
                } else {
                    lane.bw
                };
                issues += demand.div_ceil(eff);
            }
            let single = lane.hi - lane.lo == 1;
            let lane_bound = if single && !self.cfg.one_hot_bypass && issues > 0 {
                // A lone stream issues every other cycle.
                2 * issues - 1
            } else {
                issues
            };
            loop_bound = loop_bound.max(lane_bound);
        }

        // Shared-fabric ceilings: all DMA demand crosses the NoC link and
        // spends L2 bank bandwidth; cold misses spend DRAM bandwidth.
        let mut dma_bytes = 0u64;
        let mut dram_bytes = 0u64;
        for i in 0..self.kind.len() {
            if self.kind[i] != EngineKind::Dma {
                continue;
            }
            let demand = self.stream_demand(i, firings_tile);
            dma_bytes += demand;
            if !self.is_write[i] {
                let total = self.stream_total_bytes(i, firings_tile);
                let cold = demand.min(self.stream_dram_left(i, sys, total));
                dram_bytes += cold * self.mem_amp[i];
            }
        }
        let noc_bw_tile = u64::from(sys.noc_bw_bytes).max(1);
        loop_bound = loop_bound.max(dma_bytes.div_ceil(noc_bw_tile));
        // Fractional carries start empty, so T cycles supply at most
        // T * frac bytes; floor() keeps the bound sound against f64
        // rounding.
        let l2_bw_frac = sys.l2_bw_bytes() as f64 / tiles as f64;
        if l2_bw_frac > 0.0 {
            loop_bound = loop_bound.max((dma_bytes as f64 / l2_bw_frac) as u64);
        }
        let dram_bw_frac = sys.dram_bw_bytes() as f64 / tiles as f64;
        if dram_bw_frac > 0.0 {
            loop_bound = loop_bound.max((dram_bytes as f64 / dram_bw_frac) as u64);
        }

        // The flow loop always ticks at least once and never past the
        // safety cap.
        let cycles = loop_bound.max(1).min(self.cfg.max_cycles) + self.pipeline_fill(sys);
        let ipc_upper = firings_tile as f64 * self.insts_per_firing / cycles as f64 * tiles as f64;
        AnalyticBound { cycles, ipc_upper }
    }
}

/// One-shot analytic lower bound on [`crate::simulate`]'s reported
/// cycles for a scheduled mDFG on a system ADG.
pub fn analytic_cycles(mdfg: &Mdfg, sched: &Schedule, sys: &SysAdg, cfg: &SimConfig) -> u64 {
    SimBatch::new(mdfg, sched, &sys.adg, cfg)
        .bound(&sys.sys)
        .cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use overgen_adg::{mesh, MeshSpec};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};
    use overgen_scheduler::schedule;

    fn vecadd_mdfg(n: u64, unroll: u32) -> Mdfg {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        lower(
            &k,
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn bound_never_exceeds_simulated_cycles_across_a_grid() {
        let mdfg = vecadd_mdfg(4096, 2);
        let adg = mesh(&MeshSpec::default());
        let sys0 = SysAdg::new(adg.clone(), SystemParams::default());
        let sched = schedule(&mdfg, &sys0, None).unwrap();
        let cfg = SimConfig::default();
        let batch = SimBatch::new(&mdfg, &sched, &adg, &cfg);
        for tiles in [1u32, 2, 4, 8, 16] {
            for (banks, kb, noc, ch) in [
                (2u32, 256u32, 32u32, 1u32),
                (4, 512, 32, 1),
                (8, 1024, 64, 2),
                (16, 2048, 64, 4),
            ] {
                let sys = SystemParams {
                    tiles,
                    l2_banks: banks,
                    l2_kb: kb,
                    noc_bw_bytes: noc,
                    dram_channels: ch,
                };
                let b = batch.bound(&sys);
                let r = simulate(&mdfg, &sched, &SysAdg::new(adg.clone(), sys), &cfg);
                assert!(
                    b.cycles <= r.cycles,
                    "bound {} > sim {} at tiles={tiles} banks={banks} kb={kb} noc={noc} ch={ch}",
                    b.cycles,
                    r.cycles
                );
                assert!(
                    b.ipc_upper >= r.ipc,
                    "ipc_upper {} < sim ipc {} at tiles={tiles}",
                    b.ipc_upper,
                    r.ipc
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_when_compute_bound() {
        // A wide DMA engine keeps the ports fed: the flow hits the
        // compute II, and the analytic bound should land within the
        // pipeline-fill-dominated ballpark rather than orders below.
        let mdfg = vecadd_mdfg(16384, 2);
        let spec = MeshSpec {
            dma_bw: 64,
            ..MeshSpec::default()
        };
        let sys = SysAdg::new(
            mesh(&spec),
            SystemParams {
                tiles: 1,
                l2_banks: 16,
                l2_kb: 2048,
                noc_bw_bytes: 128,
                dram_channels: 4,
            },
        );
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let cfg = SimConfig::default();
        let lb = analytic_cycles(&mdfg, &sched, &sys, &cfg);
        let r = simulate(&mdfg, &sched, &sys, &cfg);
        assert!(lb <= r.cycles);
        assert!(
            lb as f64 >= r.cycles as f64 * 0.8,
            "bound {lb} too loose vs {} on a compute-bound kernel",
            r.cycles
        );
    }

    #[test]
    fn bound_respects_one_hot_bypass_config() {
        let mdfg = vecadd_mdfg(4096, 1);
        let adg = mesh(&MeshSpec::default());
        let sys = SysAdg::new(adg.clone(), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let on = SimConfig::default();
        let off = SimConfig {
            one_hot_bypass: false,
            ..Default::default()
        };
        let b_on = SimBatch::new(&mdfg, &sched, &adg, &on).bound(&sys.sys);
        let b_off = SimBatch::new(&mdfg, &sched, &adg, &off).bound(&sys.sys);
        assert!(b_off.cycles >= b_on.cycles);
        // Both must stay below their own simulations.
        assert!(b_on.cycles <= simulate(&mdfg, &sched, &sys, &on).cycles);
        assert!(b_off.cycles <= simulate(&mdfg, &sched, &sys, &off).cycles);
    }

    #[test]
    fn bound_caps_at_max_cycles_plus_fill() {
        let mdfg = vecadd_mdfg(4096, 2);
        let adg = mesh(&MeshSpec::default());
        let sys = SysAdg::new(adg.clone(), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        let cfg = SimConfig {
            max_cycles: 8,
            ..Default::default()
        };
        let lb = analytic_cycles(&mdfg, &sched, &sys, &cfg);
        let r = simulate(&mdfg, &sched, &sys, &cfg);
        assert!(r.truncated);
        assert!(lb <= r.cycles, "bound {lb} > truncated sim {}", r.cycles);
    }
}
