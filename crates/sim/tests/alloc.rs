//! Gate: the hot simulation loop must not allocate.
//!
//! `SimBatch::new` builds the template and arena; every subsequent
//! `SimBatch::run` must reuse them — the batched system-DSE sweep calls
//! `run` thousands of times per proposal, and a single per-tick or
//! per-run allocation would put the allocator back on the profile the
//! SoA rewrite removed. A counting global allocator wraps the system
//! one; after a warm-up run, a full grid of `run` and `bound` calls must
//! leave the allocation counter untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
use overgen_compiler::{lower, LowerChoices};
use overgen_ir::{expr, DataType, KernelBuilder, Suite};
use overgen_scheduler::schedule;
use overgen_sim::{SimBatch, SimConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_batch_runs_allocate_nothing() {
    let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
        .array_input("a", 4096)
        .array_input("b", 4096)
        .array_output("c", 4096)
        .loop_const("i", 4096)
        .assign(
            "c",
            expr::idx("i"),
            expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
        )
        .build()
        .unwrap();
    let mdfg = lower(
        &k,
        0,
        &LowerChoices {
            unroll: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let adg = mesh(&MeshSpec::default());
    let sys0 = SysAdg::new(adg.clone(), SystemParams::default());
    let sched = schedule(&mdfg, &sys0, None).unwrap();
    let cfg = SimConfig::default();

    let mut batch = SimBatch::new(&mdfg, &sched, &adg, &cfg);
    // Warm up once so lazily-grown state (none expected, but e.g. a lazy
    // stdout handle inside an assert would show here) is paid for.
    let warm = batch.run(&SystemParams::default());
    assert!(warm.firings > 0);

    let grid: Vec<SystemParams> = [1u32, 2, 4, 8]
        .iter()
        .flat_map(|&tiles| {
            [(2u32, 256u32, 32u32), (8, 512, 64), (16, 2048, 64)]
                .iter()
                .map(move |&(l2_banks, l2_kb, noc_bw_bytes)| SystemParams {
                    tiles,
                    l2_banks,
                    l2_kb,
                    noc_bw_bytes,
                    dram_channels: 1,
                })
        })
        .collect();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut sink = 0u64;
    for sys in &grid {
        let bound = batch.bound(sys);
        let report = batch.run(sys);
        let cached = batch.run_cached(sys);
        sink = sink
            .wrapping_add(report.cycles)
            .wrapping_add(cached.cycles)
            .wrapping_add(bound.cycles);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(sink > 0);
    assert_eq!(
        after - before,
        0,
        "hot loop allocated {} times across {} grid points",
        after - before,
        grid.len()
    );
}
