use std::fmt;

use overgen_ir::{DataType, Op};

use crate::ReuseInfo;

/// Placement preference of an array node, decided by the compiler's reuse
/// analysis and honoured (best effort) by the spatial scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemPref {
    /// High scratchpad benefit: prefer an on-tile scratchpad.
    PreferSpad,
    /// Stream from DRAM/L2 through a DMA engine.
    PreferDram,
    /// No strong preference.
    Either,
}

/// An array (data structure) node: the paper's §IV extension to the DFG.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayNode {
    /// Array name (matches the kernel IR declaration).
    pub name: String,
    /// Total allocated bytes. For scratchpad placement the compiler has
    /// already included double-buffering space (§IV-A).
    pub size_bytes: u64,
    /// Placement preference.
    pub pref: MemPref,
}

impl ArrayNode {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, size_bytes: u64, pref: MemPref) -> Self {
        ArrayNode {
            name: name.into(),
            size_bytes,
            pref,
        }
    }
}

/// Coarse classification of a stream's access pattern, deciding which
/// stream-engine features it needs (§VI-C: 1D/2D/3D x affine/indirect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StreamPattern {
    /// Unit-stride (or coalescible) affine.
    Linear,
    /// Affine with innermost stride > 1.
    Strided,
    /// Indirect (gather/scatter) via an index stream.
    Indirect,
}

/// A memory/value stream node: one side of a port binding.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamNode {
    /// Array the stream reads or writes (empty for generate streams).
    pub array: String,
    /// Bytes delivered/consumed per DFG firing (vector width of the port
    /// binding this stream requires).
    pub bytes_per_firing: u64,
    /// Whether this is a write (output) stream.
    pub is_write: bool,
    /// Access pattern class.
    pub pattern: StreamPattern,
    /// Number of pattern dimensions (1-3).
    pub dims: u8,
    /// Whether the stream length is data dependent (variable trip count).
    pub variable_tc: bool,
    /// Whether every tile must load the *whole* array rather than a
    /// partition (replicated read-only data; OverGen lacks a DRAM-to-
    /// scratchpad broadcast, so this wastes bandwidth — the `ellpack`
    /// outlier of Q1).
    pub broadcast: bool,
    /// Reuse annotations.
    pub reuse: ReuseInfo,
}

impl StreamNode {
    /// A read stream of an array.
    pub fn read(array: impl Into<String>, bytes_per_firing: u64, reuse: ReuseInfo) -> Self {
        StreamNode {
            array: array.into(),
            bytes_per_firing,
            is_write: false,
            pattern: StreamPattern::Linear,
            dims: 1,
            variable_tc: false,
            broadcast: false,
            reuse,
        }
    }

    /// A write stream of an array.
    pub fn write(array: impl Into<String>, bytes_per_firing: u64, reuse: ReuseInfo) -> Self {
        StreamNode {
            is_write: true,
            ..StreamNode::read(array, bytes_per_firing, reuse)
        }
    }

    /// Set the pattern class.
    pub fn with_pattern(mut self, pattern: StreamPattern, dims: u8) -> Self {
        self.pattern = pattern;
        self.dims = dims;
        self
    }

    /// Mark the stream as variable length.
    pub fn with_variable_tc(mut self) -> Self {
        self.variable_tc = true;
        self
    }

    /// Mark the stream as a per-tile replicated (broadcast-wasting) load.
    pub fn with_broadcast(mut self) -> Self {
        self.broadcast = true;
        self
    }
}

/// One (possibly subword-SIMD) instruction of the dataflow graph.
///
/// The compiler folds `lanes` adjacent unrolled copies of an operation into
/// one instruction when the datatype is narrower than the 64-bit PE
/// datapath; an `InstNode` therefore processes `lanes` elements per firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstNode {
    /// Operation.
    pub op: Op,
    /// Element datatype.
    pub dtype: DataType,
    /// Subword SIMD lanes (1 for 64-bit datatypes).
    pub lanes: u32,
}

impl InstNode {
    /// Convenience constructor.
    pub fn new(op: Op, dtype: DataType, lanes: u32) -> Self {
        InstNode { op, dtype, lanes }
    }
}

/// Any node of the memory-enhanced dataflow graph.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MdfgNode {
    /// Compute instruction.
    Inst(InstNode),
    /// Read stream (maps to an input port + a producing engine).
    InputStream(StreamNode),
    /// Write stream (maps to an output port + a consuming engine).
    OutputStream(StreamNode),
    /// Data-structure node (maps to a memory stream engine).
    Array(ArrayNode),
}

impl MdfgNode {
    /// Discriminant.
    pub fn kind(&self) -> MdfgNodeKind {
        match self {
            MdfgNode::Inst(_) => MdfgNodeKind::Inst,
            MdfgNode::InputStream(_) => MdfgNodeKind::InputStream,
            MdfgNode::OutputStream(_) => MdfgNodeKind::OutputStream,
            MdfgNode::Array(_) => MdfgNodeKind::Array,
        }
    }

    /// Stream payload for either stream kind.
    pub fn as_stream(&self) -> Option<&StreamNode> {
        match self {
            MdfgNode::InputStream(s) | MdfgNode::OutputStream(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&ArrayNode> {
        match self {
            MdfgNode::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Instruction payload.
    pub fn as_inst(&self) -> Option<&InstNode> {
        match self {
            MdfgNode::Inst(i) => Some(i),
            _ => None,
        }
    }
}

/// Discriminant of [`MdfgNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MdfgNodeKind {
    /// Compute instruction.
    Inst,
    /// Read stream.
    InputStream,
    /// Write stream.
    OutputStream,
    /// Array node.
    Array,
}

impl fmt::Display for MdfgNodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MdfgNodeKind::Inst => "inst",
            MdfgNodeKind::InputStream => "in_stream",
            MdfgNodeKind::OutputStream => "out_stream",
            MdfgNodeKind::Array => "array",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_constructors() {
        let r = StreamNode::read("a", 8, ReuseInfo::default());
        assert!(!r.is_write);
        let w = StreamNode::write("c", 8, ReuseInfo::default());
        assert!(w.is_write);
        let s = r
            .with_pattern(StreamPattern::Indirect, 2)
            .with_variable_tc();
        assert_eq!(s.pattern, StreamPattern::Indirect);
        assert!(s.variable_tc);
        assert_eq!(s.dims, 2);
    }

    #[test]
    fn node_accessors() {
        let n = MdfgNode::Array(ArrayNode::new("a", 64, MemPref::Either));
        assert_eq!(n.kind(), MdfgNodeKind::Array);
        assert!(n.as_array().is_some());
        assert!(n.as_inst().is_none());
        let i = MdfgNode::Inst(InstNode::new(Op::Add, DataType::I16, 4));
        assert_eq!(i.as_inst().unwrap().lanes, 4);
    }
}
