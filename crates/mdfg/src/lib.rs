//! Memory-enhanced dataflow graph (mDFG) for the OverGen reproduction.
//!
//! A plain decoupled-spatial DFG captures computation and streams; the
//! paper's §IV enhancement adds **array nodes** — first-class data-structure
//! nodes with footprint/traffic/reuse annotations on the streams that
//! consume or produce them. This is the information that lets the spatial
//! scheduler decide *which* scratchpad (if any) should hold an array, and
//! lets the DSE reason about memory and bandwidth provisioning.
//!
//! The compiler crate constructs mDFGs; this crate defines their structure
//! and the reuse arithmetic of §IV-B (general, stationary, and recurrent
//! reuse).
//!
//! # Example
//!
//! The paper's Figure 5 FIR mDFG, built by hand (the compiler automates
//! this):
//!
//! ```
//! use overgen_mdfg::{Mdfg, MdfgNode, ArrayNode, StreamNode, InstNode, MemPref, ReuseInfo};
//! use overgen_ir::{Op, DataType};
//!
//! let mut g = Mdfg::new("fir", 0);
//! let a = g.add_node(MdfgNode::Array(ArrayNode::new("a", 255 * 8, MemPref::PreferSpad)));
//! let rd = g.add_node(MdfgNode::InputStream(StreamNode::read(
//!     "a", 8, ReuseInfo { traffic_bytes: 16384.0 * 8.0, footprint_bytes: 255.0 * 8.0,
//!                         ..ReuseInfo::default() })));
//! let mul = g.add_node(MdfgNode::Inst(InstNode::new(Op::Mul, DataType::F64, 1)));
//! g.add_edge(a, rd)?;
//! g.add_edge(rd, mul)?;
//! assert_eq!(g.input_stream_count(), 1);
//! # Ok::<(), overgen_mdfg::MdfgError>(())
//! ```

mod graph;
mod node;
mod reuse;

pub use graph::{Mdfg, MdfgError, MdfgNodeId};
pub use node::{ArrayNode, InstNode, MdfgNode, MdfgNodeKind, MemPref, StreamNode, StreamPattern};
pub use reuse::{RecurrenceInfo, ReuseInfo};
