/// Recurrent-reuse annotation: a read/write stream pair repeatedly updates
/// a window of data that can live in the datapath + port FIFOs instead of
/// memory (paper §IV-B, the `c[io*32+ii]` example).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecurrenceInfo {
    /// Number of concurrent live instances (the paper's "32 concurrent
    /// instances" touched by `ii`).
    pub concurrent: u64,
    /// Number of times each instance recurs (the paper's "32 recurrences"
    /// along `j`).
    pub depth: u64,
}

/// Reuse annotations attached to a stream node (paper Figure 5).
///
/// The reuse factor feeds the DSE performance model: a stream's bandwidth
/// pressure on a memory level is its raw bandwidth divided by the reuse
/// captured *above* that level (§IV-B, §V-C).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReuseInfo {
    /// Total bytes the stream would move without any reuse capture: the
    /// product of all loop trip counts times element size ("Traf." in
    /// Figure 5).
    pub traffic_bytes: f64,
    /// Bytes of distinct data touched ("Foot.").
    pub footprint_bytes: f64,
    /// Stationary reuse: consecutive reads of the same value captured in
    /// the port FIFO ("Port Reuse: 32" for `b[j]`). 1.0 means none.
    pub stationary: f64,
    /// Recurrent reuse via the recurrence engine, if applicable.
    pub recurrent: Option<RecurrenceInfo>,
}

impl Default for ReuseInfo {
    fn default() -> Self {
        ReuseInfo {
            traffic_bytes: 0.0,
            footprint_bytes: 0.0,
            stationary: 1.0,
            recurrent: None,
        }
    }
}

impl ReuseInfo {
    /// General reuse: average times each element is re-read
    /// (`traffic / footprint`, the paper's `16384 / 255`).
    pub fn general_reuse(&self) -> f64 {
        if self.footprint_bytes <= 0.0 {
            1.0
        } else {
            (self.traffic_bytes / self.footprint_bytes).max(1.0)
        }
    }

    /// Reuse captured *before* the memory system is consulted at all —
    /// stationary (port FIFO) plus recurrent (recurrence engine) reuse.
    /// Dividing a stream's bandwidth by this factor gives its residual
    /// pressure on the scratchpad/L2 level.
    pub fn datapath_reuse(&self) -> f64 {
        let rec = self.recurrent.map_or(1.0, |r| r.depth.max(1) as f64);
        (self.stationary.max(1.0)) * rec
    }

    /// Reuse exploitable by a scratchpad: the part of the general reuse not
    /// already captured in the datapath. This is the quantity the scheduler
    /// compares when arrays compete for scratchpad space (§IV-B: arrays
    /// with stationary reuse at ports benefit less from scratchpads).
    pub fn scratchpad_benefit(&self) -> f64 {
        (self.general_reuse() / self.datapath_reuse()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three streams of the paper's Figure 5 FIR example.
    fn fig5_a() -> ReuseInfo {
        ReuseInfo {
            traffic_bytes: 16384.0 * 4.0,
            footprint_bytes: 255.0 * 4.0,
            ..ReuseInfo::default()
        }
    }

    fn fig5_b() -> ReuseInfo {
        ReuseInfo {
            traffic_bytes: 128.0 * 4.0,
            footprint_bytes: 128.0 * 4.0,
            stationary: 32.0,
            ..ReuseInfo::default()
        }
    }

    fn fig5_c() -> ReuseInfo {
        ReuseInfo {
            traffic_bytes: (128.0 + 128.0) * 2.0,
            footprint_bytes: 128.0,
            recurrent: Some(RecurrenceInfo {
                concurrent: 32,
                depth: 128,
            }),
            ..ReuseInfo::default()
        }
    }

    #[test]
    fn general_reuse_matches_paper() {
        // "each element is reused an average of 16384/255 times"
        let r = fig5_a().general_reuse();
        assert!((r - 16384.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_dominates_for_b() {
        let b = fig5_b();
        assert_eq!(b.datapath_reuse(), 32.0);
        // b's general reuse is fully captured at the port -> scratchpad
        // benefit is ~1 ("does not provide as much value to map to spad").
        assert!(b.scratchpad_benefit() <= 1.0 + 1e-9);
    }

    #[test]
    fn a_wants_scratchpad_more_than_b() {
        assert!(fig5_a().scratchpad_benefit() > fig5_b().scratchpad_benefit());
    }

    #[test]
    fn recurrence_captures_c() {
        let c = fig5_c();
        assert_eq!(c.datapath_reuse(), 128.0);
    }

    #[test]
    fn degenerate_footprint_is_safe() {
        let r = ReuseInfo::default();
        assert_eq!(r.general_reuse(), 1.0);
        assert_eq!(r.datapath_reuse(), 1.0);
        assert_eq!(r.scratchpad_benefit(), 1.0);
    }
}
