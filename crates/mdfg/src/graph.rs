use std::fmt;

use overgen_ir::Op;

use crate::node::{MdfgNode, MdfgNodeKind};

/// Stable identifier of an mDFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MdfgNodeId(u32);

impl MdfgNodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Only meaningful for indices previously
    /// obtained via [`MdfgNodeId::index`] on the same graph (checkpoint
    /// round trips of id-keyed side tables).
    pub fn from_index(i: usize) -> Self {
        MdfgNodeId(i as u32)
    }
}

impl fmt::Display for MdfgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Errors raised by mDFG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdfgError {
    /// Referenced node does not exist.
    NoSuchNode(MdfgNodeId),
    /// The edge connects kinds that cannot be data-dependent.
    IllegalEdge {
        /// Source kind.
        src: MdfgNodeKind,
        /// Destination kind.
        dst: MdfgNodeKind,
    },
    /// Structural validation failed.
    Invalid(String),
}

impl fmt::Display for MdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdfgError::NoSuchNode(id) => write!(f, "no such node {id}"),
            MdfgError::IllegalEdge { src, dst } => write!(f, "illegal edge {src} -> {dst}"),
            MdfgError::Invalid(m) => write!(f, "invalid mDFG: {m}"),
        }
    }
}

impl std::error::Error for MdfgError {}

fn may_connect(src: MdfgNodeKind, dst: MdfgNodeKind) -> bool {
    use MdfgNodeKind::*;
    match src {
        Array => matches!(dst, InputStream),
        // InputStream -> InputStream models an index stream feeding the
        // indirect request generator of the target stream's engine.
        InputStream => matches!(dst, Inst | OutputStream | InputStream),
        Inst => matches!(dst, Inst | OutputStream),
        // An output stream may feed an input stream: a recurrence pair.
        OutputStream => matches!(dst, Array | InputStream),
    }
}

/// A memory-enhanced dataflow graph: one compiled variant of one kernel
/// region.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mdfg {
    /// Kernel this mDFG was compiled from.
    name: String,
    /// Which transformation variant this is (0 = most aggressive).
    variant: u32,
    /// Innermost-loop unroll degree of this variant.
    unroll: u32,
    /// Total innermost iterations the region executes (expected).
    total_iterations: f64,
    /// Cross-iteration dependence: the region cannot tile-parallelize and
    /// fires at the dependency-chain interval instead of II = 1.
    sequential: bool,
    nodes: Vec<MdfgNode>,
    out_adj: Vec<Vec<MdfgNodeId>>,
    in_adj: Vec<Vec<MdfgNodeId>>,
}

impl Mdfg {
    /// An empty mDFG for a kernel variant.
    pub fn new(name: impl Into<String>, variant: u32) -> Self {
        Mdfg {
            name: name.into(),
            variant,
            unroll: 1,
            total_iterations: 0.0,
            sequential: false,
            nodes: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Variant index (0 = most aggressive transformation).
    pub fn variant(&self) -> u32 {
        self.variant
    }

    /// Innermost unroll degree of this variant.
    pub fn unroll(&self) -> u32 {
        self.unroll
    }

    /// Set the unroll degree (compiler use).
    pub fn set_unroll(&mut self, u: u32) {
        self.unroll = u;
    }

    /// Expected total innermost iterations of the region.
    pub fn total_iterations(&self) -> f64 {
        self.total_iterations
    }

    /// Set total iterations (compiler use).
    pub fn set_total_iterations(&mut self, it: f64) {
        self.total_iterations = it;
    }

    /// Whether the region has a cross-iteration dependence (cannot
    /// tile-parallelize; fires at the dependency-chain interval).
    pub fn sequential(&self) -> bool {
        self.sequential
    }

    /// Mark the region as sequential (compiler use).
    pub fn set_sequential(&mut self, s: bool) {
        self.sequential = s;
    }

    /// Number of DFG firings needed to cover the region: iterations divided
    /// by unroll.
    pub fn firings(&self) -> f64 {
        if self.unroll == 0 {
            self.total_iterations
        } else {
            self.total_iterations / f64::from(self.unroll)
        }
    }

    /// Add a node.
    pub fn add_node(&mut self, node: MdfgNode) -> MdfgNodeId {
        let id = MdfgNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add a dependence edge.
    ///
    /// # Errors
    ///
    /// Fails when an endpoint is missing or the kinds cannot connect.
    pub fn add_edge(&mut self, src: MdfgNodeId, dst: MdfgNodeId) -> Result<(), MdfgError> {
        let sk = self.node(src).ok_or(MdfgError::NoSuchNode(src))?.kind();
        let dk = self.node(dst).ok_or(MdfgError::NoSuchNode(dst))?.kind();
        if !may_connect(sk, dk) {
            return Err(MdfgError::IllegalEdge { src: sk, dst: dk });
        }
        self.out_adj[src.index()].push(dst);
        self.in_adj[dst.index()].push(src);
        Ok(())
    }

    /// Node accessor.
    pub fn node(&self, id: MdfgNodeId) -> Option<&MdfgNode> {
        self.nodes.get(id.index())
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: MdfgNodeId) -> Option<&mut MdfgNode> {
        self.nodes.get_mut(id.index())
    }

    /// Successors.
    pub fn succs(&self, id: MdfgNodeId) -> &[MdfgNodeId] {
        self.out_adj
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Predecessors.
    pub fn preds(&self, id: MdfgNodeId) -> &[MdfgNodeId] {
        self.in_adj
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterator over `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (MdfgNodeId, &MdfgNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (MdfgNodeId(i as u32), n))
    }

    /// Ids of nodes of a kind.
    pub fn nodes_of_kind(&self, kind: MdfgNodeKind) -> Vec<MdfgNodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind() == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Edge iterator.
    pub fn edges(&self) -> impl Iterator<Item = (MdfgNodeId, MdfgNodeId)> + '_ {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |d| (MdfgNodeId(i as u32), *d)))
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of instruction nodes.
    pub fn inst_count(&self) -> usize {
        self.nodes_of_kind(MdfgNodeKind::Inst).len()
    }

    /// Number of input (read/value) streams — the paper's `#ivp`.
    pub fn input_stream_count(&self) -> usize {
        self.nodes_of_kind(MdfgNodeKind::InputStream).len()
    }

    /// Number of output streams — the paper's `#ovp`.
    pub fn output_stream_count(&self) -> usize {
        self.nodes_of_kind(MdfgNodeKind::OutputStream).len()
    }

    /// Number of array nodes — the paper's `#arr`.
    pub fn array_count(&self) -> usize {
        self.nodes_of_kind(MdfgNodeKind::Array).len()
    }

    /// Count instruction nodes of a given op (Table II's `#m,a,d`).
    pub fn count_op(&self, op: Op) -> usize {
        self.nodes()
            .filter(|(_, n)| n.as_inst().is_some_and(|i| i.op == op))
            .count()
    }

    /// Scalar operations (compute + memory elements) the DFG completes per
    /// firing — the `mDFG Insts` factor of the paper's Equation (1).
    /// Instruction nodes contribute their lanes; stream nodes contribute
    /// the elements they move per firing (memory ops count toward IPC,
    /// §V-C).
    pub fn insts_per_firing(&self) -> f64 {
        let mut total = 0.0;
        for (_, n) in self.nodes() {
            match n {
                MdfgNode::Inst(i) => total += f64::from(i.lanes),
                MdfgNode::InputStream(s) | MdfgNode::OutputStream(s) => {
                    // one memory "op" per element moved per firing
                    total += s.bytes_per_firing as f64 / 8.0;
                }
                MdfgNode::Array(_) => {}
            }
        }
        total
    }

    /// Critical-path length in instruction nodes (pipeline depth proxy).
    pub fn critical_path_len(&self) -> usize {
        // Longest path in a DAG via memoised DFS.
        let n = self.nodes.len();
        let mut memo = vec![usize::MAX; n];
        fn dfs(g: &Mdfg, id: MdfgNodeId, memo: &mut Vec<usize>) -> usize {
            if memo[id.index()] != usize::MAX {
                return memo[id.index()];
            }
            // Guard against recurrence cycles: mark as 0 while visiting.
            memo[id.index()] = 0;
            let mut best = 0;
            for &s in g.succs(id) {
                best = best.max(1 + dfs(g, s, memo));
            }
            memo[id.index()] = best;
            best
        }
        let mut best = 0;
        for (id, _) in self.nodes() {
            best = best.max(dfs(self, id, &mut memo));
        }
        best
    }

    /// Structural validation.
    ///
    /// # Errors
    ///
    /// Fails when a stream lacks its array link, an instruction is
    /// dangling, or an array node has no streams.
    pub fn validate(&self) -> Result<(), MdfgError> {
        for (id, n) in self.nodes() {
            match n.kind() {
                MdfgNodeKind::InputStream => {
                    let has_array_or_rec = self.preds(id).iter().any(|p| {
                        matches!(
                            self.node(*p).map(MdfgNode::kind),
                            Some(MdfgNodeKind::Array) | Some(MdfgNodeKind::OutputStream)
                        )
                    });
                    // Generate streams have no array: they have an empty
                    // array name and no predecessor.
                    let is_gen = n.as_stream().is_some_and(|s| s.array.is_empty());
                    if !has_array_or_rec && !is_gen {
                        return Err(MdfgError::Invalid(format!(
                            "input stream {id} not linked to an array or recurrence"
                        )));
                    }
                    if self.succs(id).is_empty() {
                        return Err(MdfgError::Invalid(format!(
                            "input stream {id} feeds nothing"
                        )));
                    }
                }
                MdfgNodeKind::OutputStream => {
                    if self.preds(id).is_empty() {
                        return Err(MdfgError::Invalid(format!(
                            "output stream {id} has no producer"
                        )));
                    }
                }
                MdfgNodeKind::Inst => {
                    if self.preds(id).is_empty() || self.succs(id).is_empty() {
                        return Err(MdfgError::Invalid(format!("instruction {id} is dangling")));
                    }
                }
                MdfgNodeKind::Array => {
                    if self.succs(id).is_empty() && self.preds(id).is_empty() {
                        return Err(MdfgError::Invalid(format!("array {id} has no streams")));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::*;
    use crate::ReuseInfo;
    use overgen_ir::DataType;

    /// Build the Figure 2 vector-add DFG (unrolled by two) plus array nodes.
    fn vecadd() -> Mdfg {
        let mut g = Mdfg::new("vecadd", 0);
        g.set_unroll(2);
        g.set_total_iterations(1024.0);
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new("a", 8192, MemPref::Either)));
        let ab = g.add_node(MdfgNode::Array(ArrayNode::new("b", 8192, MemPref::Either)));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new("c", 8192, MemPref::Either)));
        let ra = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "a",
            16,
            ReuseInfo::default(),
        )));
        let rb = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "b",
            16,
            ReuseInfo::default(),
        )));
        let add0 = g.add_node(MdfgNode::Inst(InstNode::new(Op::Add, DataType::I64, 1)));
        let add1 = g.add_node(MdfgNode::Inst(InstNode::new(Op::Add, DataType::I64, 1)));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write(
            "c",
            16,
            ReuseInfo::default(),
        )));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ab, rb).unwrap();
        g.add_edge(ra, add0).unwrap();
        g.add_edge(rb, add0).unwrap();
        g.add_edge(ra, add1).unwrap();
        g.add_edge(rb, add1).unwrap();
        g.add_edge(add0, wc).unwrap();
        g.add_edge(add1, wc).unwrap();
        g.add_edge(wc, ac).unwrap();
        g
    }

    #[test]
    fn vecadd_shape() {
        let g = vecadd();
        g.validate().unwrap();
        assert_eq!(g.inst_count(), 2);
        assert_eq!(g.input_stream_count(), 2);
        assert_eq!(g.output_stream_count(), 1);
        assert_eq!(g.array_count(), 3);
        assert_eq!(g.count_op(Op::Add), 2);
        assert_eq!(g.firings(), 512.0);
    }

    #[test]
    fn insts_per_firing_counts_memory() {
        let g = vecadd();
        // 2 adds + (16+16+16)/8 = 6 memory elements = 8
        assert!((g.insts_per_firing() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn illegal_edges_rejected() {
        let mut g = Mdfg::new("x", 0);
        let a = g.add_node(MdfgNode::Array(ArrayNode::new("a", 8, MemPref::Either)));
        let b = g.add_node(MdfgNode::Array(ArrayNode::new("b", 8, MemPref::Either)));
        assert!(matches!(
            g.add_edge(a, b),
            Err(MdfgError::IllegalEdge { .. })
        ));
    }

    #[test]
    fn validation_catches_dangling_inst() {
        let mut g = Mdfg::new("x", 0);
        g.add_node(MdfgNode::Inst(InstNode::new(Op::Add, DataType::I64, 1)));
        assert!(g.validate().is_err());
    }

    #[test]
    fn recurrence_pair_is_legal_and_validates() {
        let mut g = Mdfg::new("rec", 0);
        let arr = g.add_node(MdfgNode::Array(ArrayNode::new("c", 256, MemPref::Either)));
        let rd = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "c",
            8,
            ReuseInfo::default(),
        )));
        let gen = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "",
            8,
            ReuseInfo::default(),
        )));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(Op::Add, DataType::I64, 1)));
        let wr = g.add_node(MdfgNode::OutputStream(StreamNode::write(
            "c",
            8,
            ReuseInfo::default(),
        )));
        g.add_edge(arr, rd).unwrap();
        g.add_edge(rd, add).unwrap();
        g.add_edge(gen, add).unwrap();
        g.add_edge(add, wr).unwrap();
        // recurrence: write stream feeds read stream directly
        g.add_edge(wr, rd).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn critical_path() {
        let g = vecadd();
        // array -> stream -> add -> out -> array = 4 edges
        assert_eq!(g.critical_path_len(), 4);
    }

    #[test]
    fn critical_path_tolerates_recurrence_cycle() {
        let mut g = Mdfg::new("rec", 0);
        let rd = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "c",
            8,
            ReuseInfo::default(),
        )));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(Op::Add, DataType::I64, 1)));
        let wr = g.add_node(MdfgNode::OutputStream(StreamNode::write(
            "c",
            8,
            ReuseInfo::default(),
        )));
        g.add_edge(rd, add).unwrap();
        g.add_edge(add, wr).unwrap();
        g.add_edge(wr, rd).unwrap();
        // must terminate
        let _ = g.critical_path_len();
    }
}
