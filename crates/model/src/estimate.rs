//! Whole-design resource estimation: per-component models aggregated over
//! a system-level ADG (accelerator x tiles + cores + NoC + L2).

use overgen_adg::{Adg, AdgNode, SysAdg, SystemParams};

use crate::resources::{ResourceBreakdown, Resources};
use crate::synthesis::{features_of, mean_cost, ComponentFeatures};

/// A per-component resource estimator. The DSE queries this instead of
/// running synthesis (paper §V-D). `Send + Sync` is required so one model
/// instance can serve the DSE's scoped worker threads through a shared
/// `&dyn ResourceModel`.
pub trait ResourceModel: Send + Sync {
    /// Estimate one learned-class component.
    fn component(&self, feats: &ComponentFeatures) -> Resources;
}

/// The analytic model: the synthesis oracle's mean (zero-noise) response.
/// Exact by construction; the MLP model approximates this from noisy
/// samples the way the paper's MLP approximates Vivado.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticModel;

impl ResourceModel for AnalyticModel {
    fn component(&self, feats: &ComponentFeatures) -> Resources {
        mean_cost(feats)
    }
}

/// Resources of a stream engine or other small-parameter element. These are
/// "exhaustively synthesized" in the paper (§V-D) rather than learned, so
/// an analytic table is faithful.
pub fn engine_resources(node: &AdgNode) -> Resources {
    match node {
        AdgNode::Dma(d) => Resources {
            lut: 3_200.0 + 48.0 * f64::from(d.bw_bytes),
            ff: 4_800.0 + 64.0 * f64::from(d.bw_bytes),
            bram: 4.0, // reorder buffer
            dsp: 0.0,
        },
        AdgNode::Spad(s) => Resources {
            lut: 750.0 + 26.0 * f64::from(s.bw_bytes) + if s.indirect { 1_150.0 } else { 0.0 },
            ff: 900.0 + 30.0 * f64::from(s.bw_bytes),
            // 36Kb BRAM = 4.5 KiB; dual-port doubles for read+write.
            bram: (f64::from(s.capacity_kb) / 4.5).ceil() + if s.indirect { 2.0 } else { 0.0 },
            dsp: 0.0,
        },
        AdgNode::Gen(g) => Resources {
            lut: 520.0 + 9.0 * f64::from(g.bw_bytes),
            ff: 640.0,
            bram: 0.0,
            dsp: 0.0,
        },
        AdgNode::Rec(r) => Resources {
            lut: 680.0 + 12.0 * f64::from(r.bw_bytes),
            ff: 860.0,
            bram: 0.0,
            dsp: 0.0,
        },
        AdgNode::Reg(_) => Resources {
            lut: 310.0,
            ff: 420.0,
            bram: 0.0,
            dsp: 0.0,
        },
        _ => Resources::ZERO,
    }
}

/// Rocket-class control core with small private caches (§III-B: single
/// issue, provisioned only for managing the accelerator).
pub fn core_resources() -> Resources {
    Resources {
        lut: 21_500.0,
        ff: 13_800.0,
        bram: 12.0,
        dsp: 4.0,
    }
}

/// Stream dispatcher: scales with engine count (scoreboards + dispatch
/// queue, §VI-B).
pub fn dispatcher_resources(n_engines: usize) -> Resources {
    Resources {
        lut: 2_300.0 + 420.0 * n_engines as f64,
        ff: 3_100.0 + 510.0 * n_engines as f64,
        bram: 1.0,
        dsp: 0.0,
    }
}

/// Crossbar NoC: the paper's biggest LUT consumer ("due to its
/// crossbar-based implementation", Q4). Cost grows with the square of the
/// port count (tiles + L2 banks) times link width.
pub fn noc_resources(sys: &SystemParams) -> Resources {
    let ports = f64::from(sys.tiles) + f64::from(sys.l2_banks);
    let width = f64::from(sys.noc_bw_bytes) / 8.0;
    Resources {
        lut: 120.0 * ports * ports * width.sqrt() + 900.0 * ports,
        ff: 60.0 * ports * ports * width.sqrt() + 1_400.0 * ports,
        bram: 0.0,
        dsp: 0.0,
    }
}

/// Banked inclusive L2 (directory + MSHRs per bank + BRAM data array).
pub fn l2_resources(sys: &SystemParams) -> Resources {
    let banks = f64::from(sys.l2_banks);
    Resources {
        lut: 2_600.0 * banks + 18_000.0,
        ff: 2_100.0 * banks + 11_000.0,
        bram: (f64::from(sys.l2_kb) / 4.5).ceil() + 2.0 * banks,
        dsp: 0.0,
    }
}

/// Estimate the full breakdown of a system-level ADG (Figure 16's stacked
/// groups). Per-tile structures are multiplied by the tile count.
pub fn breakdown(sys_adg: &SysAdg, model: &dyn ResourceModel) -> ResourceBreakdown {
    let adg = &sys_adg.adg;
    let tiles = f64::from(sys_adg.sys.tiles);
    let mut b = ResourceBreakdown::default();
    let mut engines = 0usize;
    for (id, node) in adg.nodes() {
        match node {
            AdgNode::Pe(_) => {
                if let Some(f) = features_of(adg, id) {
                    b.pe += model.component(&f);
                }
            }
            AdgNode::Switch(_) => {
                if let Some(f) = features_of(adg, id) {
                    b.network += model.component(&f);
                }
            }
            AdgNode::InPort(_) | AdgNode::OutPort(_) => {
                if let Some(f) = features_of(adg, id) {
                    b.ports += model.component(&f);
                }
            }
            AdgNode::Spad(_) => {
                engines += 1;
                b.spad += engine_resources(node);
            }
            _ => {
                engines += 1;
                b.dma += engine_resources(node);
            }
        }
    }
    b.dma += dispatcher_resources(engines);
    // Scale per-tile groups by tile count.
    b.pe = b.pe * tiles;
    b.network = b.network * tiles;
    b.ports = b.ports * tiles;
    b.spad = b.spad * tiles;
    b.dma = b.dma * tiles;
    b.core = core_resources() * tiles;
    b.noc = noc_resources(&sys_adg.sys) + l2_resources(&sys_adg.sys);
    b
}

/// Resources of one accelerator tile only (no core/NoC/L2): the DSE's
/// secondary objective ("estimated resources-per-accelerator", §V-A).
pub fn accelerator_resources(adg: &Adg, model: &dyn ResourceModel) -> Resources {
    let mut total = Resources::ZERO;
    let mut engines = 0usize;
    for (id, node) in adg.nodes() {
        if let Some(f) = features_of(adg, id) {
            total += model.component(&f);
        } else {
            engines += 1;
            total += engine_resources(node);
        }
    }
    let total = total + dispatcher_resources(engines);
    debug_assert!(
        total.is_valid(),
        "accelerator_resources produced a non-finite or negative vector: {total}"
    );
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::XCVU9P;
    use overgen_adg::{mesh, MeshSpec};

    #[test]
    fn general_quad_tile_nearly_fills_device() {
        // Paper Q1: the general overlay fits at most 4 tiles; Q4: overlays
        // consume 81-97% of LUTs.
        let sys_adg = SysAdg::new(
            mesh(&MeshSpec::general()),
            SystemParams {
                tiles: 4,
                l2_banks: 4,
                l2_kb: 512,
                noc_bw_bytes: 32,
                dram_channels: 1,
            },
        );
        let b = breakdown(&sys_adg, &AnalyticModel);
        let u = XCVU9P.utilization(&b.total());
        assert!(
            u.lut > 0.70 && u.lut < 1.05,
            "lut utilization {:.2} out of expected range",
            u.lut
        );
        assert_eq!(u.limiting_name(), "lut");
        // 5 tiles must NOT fit (the paper could only fit 4).
        let five = SysAdg::new(
            sys_adg.adg.clone(),
            SystemParams {
                tiles: 5,
                ..sys_adg.sys
            },
        );
        let b5 = breakdown(&five, &AnalyticModel);
        assert!(!XCVU9P.fits(&b5.total(), 0.97));
    }

    #[test]
    fn lean_tile_is_much_smaller() {
        let lean = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let general = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let bl = breakdown(&lean, &AnalyticModel).total();
        let bg = breakdown(&general, &AnalyticModel).total();
        assert!(bg.lut > 3.0 * bl.lut);
    }

    #[test]
    fn noc_grows_quadratically_with_ports() {
        let small = noc_resources(&SystemParams {
            tiles: 2,
            l2_banks: 2,
            l2_kb: 512,
            noc_bw_bytes: 32,
            dram_channels: 1,
        });
        let big = noc_resources(&SystemParams {
            tiles: 8,
            l2_banks: 8,
            l2_kb: 512,
            noc_bw_bytes: 32,
            dram_channels: 1,
        });
        assert!(big.lut > 8.0 * small.lut);
    }

    #[test]
    fn spad_bram_scales_with_capacity() {
        let small = engine_resources(&AdgNode::Spad(overgen_adg::SpadNode {
            capacity_kb: 8,
            bw_bytes: 32,
            indirect: false,
        }));
        let big = engine_resources(&AdgNode::Spad(overgen_adg::SpadNode {
            capacity_kb: 64,
            bw_bytes: 32,
            indirect: false,
        }));
        assert!(big.bram > 4.0 * small.bram);
    }

    #[test]
    fn accelerator_resources_excludes_core_noc() {
        let adg = mesh(&MeshSpec::default());
        let acc = accelerator_resources(&adg, &AnalyticModel);
        let sys_adg = SysAdg::new(adg, SystemParams::default());
        let full = breakdown(&sys_adg, &AnalyticModel).total();
        assert!(acc.lut < full.lut);
    }
}
