//! FPGA resource vectors and device descriptors.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// An FPGA resource vector: the four resources the paper's DSE balances
/// (§II-C "ASIC Focused" limitation; Figure 16).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Resources {
    /// Lookup tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// 36Kb block RAMs.
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        lut: 0.0,
        ff: 0.0,
        bram: 0.0,
        dsp: 0.0,
    };

    /// Elementwise max.
    pub fn max(self, other: Resources) -> Resources {
        Resources {
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            bram: self.bram.max(other.bram),
            dsp: self.dsp.max(other.dsp),
        }
    }

    /// Whether every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.lut, self.ff, self.bram, self.dsp]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// As a fixed-order array `[lut, ff, bram, dsp]` (MLP target layout).
    pub fn to_array(self) -> [f64; 4] {
        [self.lut, self.ff, self.bram, self.dsp]
    }

    /// From the fixed-order array.
    pub fn from_array(a: [f64; 4]) -> Self {
        Resources {
            lut: a[0],
            ff: a[1],
            bram: a[2],
            dsp: a[3],
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            bram: self.bram + o.bram,
            dsp: self.dsp + o.dsp,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, k: f64) -> Resources {
        Resources {
            lut: self.lut * k,
            ff: self.ff * k,
            bram: self.bram * k,
            dsp: self.dsp * k,
        }
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut={:.0} ff={:.0} bram={:.0} dsp={:.0}",
            self.lut, self.ff, self.bram, self.dsp
        )
    }
}

/// Fractional utilization of each resource on a device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Utilization {
    /// LUT fraction used.
    pub lut: f64,
    /// FF fraction used.
    pub ff: f64,
    /// BRAM fraction used.
    pub bram: f64,
    /// DSP fraction used.
    pub dsp: f64,
}

impl Utilization {
    /// The binding (maximum) utilization fraction.
    pub fn limiting(&self) -> f64 {
        self.lut.max(self.ff).max(self.bram).max(self.dsp)
    }

    /// Name of the binding resource.
    pub fn limiting_name(&self) -> &'static str {
        let m = self.limiting();
        if m == self.lut {
            "lut"
        } else if m == self.ff {
            "ff"
        } else if m == self.bram {
            "bram"
        } else {
            "dsp"
        }
    }
}

/// An FPGA device descriptor: the resource budget the DSE fills.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// Total resources.
    pub total: Resources,
}

/// The Xilinx XCVU9P on the VCU118 evaluation board (paper §VII).
pub const XCVU9P: FpgaDevice = FpgaDevice {
    name: "xcvu9p",
    total: Resources {
        lut: 1_182_240.0,
        ff: 2_364_480.0,
        bram: 2_160.0,
        dsp: 6_840.0,
    },
};

impl FpgaDevice {
    /// Utilization of a design on this device.
    pub fn utilization(&self, used: &Resources) -> Utilization {
        Utilization {
            lut: used.lut / self.total.lut,
            ff: used.ff / self.total.ff,
            bram: used.bram / self.total.bram,
            dsp: used.dsp / self.total.dsp,
        }
    }

    /// Whether a design fits within `frac` of every resource.
    pub fn fits(&self, used: &Resources, frac: f64) -> bool {
        self.utilization(used).limiting() <= frac
    }

    /// Achievable clock in MHz as a function of utilization: congestion on
    /// a nearly-full multi-die device costs frequency (§VI-D; the paper's
    /// quad-tile design closes at 92.87 MHz).
    pub fn fmax_mhz(&self, used: &Resources) -> f64 {
        let u = self.utilization(used).limiting().min(1.2);
        (160.0 - 75.0 * u).max(40.0)
    }
}

/// Resource breakdown by overlay component group — the stacked bars of
/// Figure 16 (pe / n/w / vp / spad / dma / core / noc).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceBreakdown {
    /// Processing elements.
    pub pe: Resources,
    /// Fabric network (switches).
    pub network: Resources,
    /// Vector ports (in + out).
    pub ports: Resources,
    /// Scratchpads.
    pub spad: Resources,
    /// DMA + other stream engines + dispatcher.
    pub dma: Resources,
    /// Control cores.
    pub core: Resources,
    /// System NoC + L2.
    pub noc: Resources,
}

impl ResourceBreakdown {
    /// Sum of all groups.
    pub fn total(&self) -> Resources {
        self.pe + self.network + self.ports + self.spad + self.dma + self.core + self.noc
    }

    /// Groups as `(name, resources)` pairs in Figure 16 order.
    pub fn groups(&self) -> [(&'static str, Resources); 7] {
        [
            ("pe", self.pe),
            ("n/w", self.network),
            ("vp", self.ports),
            ("spad", self.spad),
            ("dma", self.dma),
            ("core", self.core),
            ("noc", self.noc),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources {
            lut: 10.0,
            ff: 20.0,
            bram: 1.0,
            dsp: 2.0,
        };
        let b = a * 2.0 + a;
        assert_eq!(b.lut, 30.0);
        assert_eq!(b.dsp, 6.0);
        let s: Resources = vec![a, a, a].into_iter().sum();
        assert_eq!(s.ff, 60.0);
    }

    #[test]
    fn utilization_and_fit() {
        let half = Resources {
            lut: XCVU9P.total.lut / 2.0,
            ff: 0.0,
            bram: 0.0,
            dsp: 0.0,
        };
        let u = XCVU9P.utilization(&half);
        assert!((u.lut - 0.5).abs() < 1e-12);
        assert_eq!(u.limiting_name(), "lut");
        assert!(XCVU9P.fits(&half, 0.6));
        assert!(!XCVU9P.fits(&half, 0.4));
    }

    #[test]
    fn fmax_decreases_with_utilization() {
        let small = Resources {
            lut: 50_000.0,
            ..Resources::ZERO
        };
        let big = Resources {
            lut: 1_050_000.0,
            ..Resources::ZERO
        };
        assert!(XCVU9P.fmax_mhz(&small) > XCVU9P.fmax_mhz(&big));
        // paper's quad-tile closes around 93 MHz at ~90% LUT
        let f = XCVU9P.fmax_mhz(&big);
        assert!(f > 80.0 && f < 100.0, "fmax {f}");
    }

    #[test]
    fn breakdown_total() {
        let mut b = ResourceBreakdown::default();
        b.pe.lut = 10.0;
        b.noc.lut = 5.0;
        assert_eq!(b.total().lut, 15.0);
        assert_eq!(b.groups()[0].0, "pe");
    }

    #[test]
    fn array_round_trip() {
        let r = Resources {
            lut: 1.0,
            ff: 2.0,
            bram: 3.0,
            dsp: 4.0,
        };
        assert_eq!(Resources::from_array(r.to_array()), r);
        assert!(r.is_valid());
        assert!(!Resources {
            lut: f64::NAN,
            ..Resources::ZERO
        }
        .is_valid());
    }
}
