//! FPGA resource vectors and device descriptors.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// An FPGA resource vector: the four resources the paper's DSE balances
/// (§II-C "ASIC Focused" limitation; Figure 16).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Resources {
    /// Lookup tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// 36Kb block RAMs.
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        lut: 0.0,
        ff: 0.0,
        bram: 0.0,
        dsp: 0.0,
    };

    /// Elementwise max.
    pub fn max(self, other: Resources) -> Resources {
        Resources {
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            bram: self.bram.max(other.bram),
            dsp: self.dsp.max(other.dsp),
        }
    }

    /// Whether every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.lut, self.ff, self.bram, self.dsp]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// As a fixed-order array `[lut, ff, bram, dsp]` (MLP target layout).
    pub fn to_array(self) -> [f64; 4] {
        [self.lut, self.ff, self.bram, self.dsp]
    }

    /// From the fixed-order array.
    pub fn from_array(a: [f64; 4]) -> Self {
        Resources {
            lut: a[0],
            ff: a[1],
            bram: a[2],
            dsp: a[3],
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            bram: self.bram + o.bram,
            dsp: self.dsp + o.dsp,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, k: f64) -> Resources {
        Resources {
            lut: self.lut * k,
            ff: self.ff * k,
            bram: self.bram * k,
            dsp: self.dsp * k,
        }
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut={:.0} ff={:.0} bram={:.0} dsp={:.0}",
            self.lut, self.ff, self.bram, self.dsp
        )
    }
}

/// Fractional utilization of each resource on a device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Utilization {
    /// LUT fraction used.
    pub lut: f64,
    /// FF fraction used.
    pub ff: f64,
    /// BRAM fraction used.
    pub bram: f64,
    /// DSP fraction used.
    pub dsp: f64,
}

impl Utilization {
    /// The binding (maximum) utilization fraction.
    pub fn limiting(&self) -> f64 {
        self.lut.max(self.ff).max(self.bram).max(self.dsp)
    }

    /// Name of the binding resource.
    pub fn limiting_name(&self) -> &'static str {
        let m = self.limiting();
        if m == self.lut {
            "lut"
        } else if m == self.ff {
            "ff"
        } else if m == self.bram {
            "bram"
        } else {
            "dsp"
        }
    }
}

/// An FPGA device descriptor: the resource budget the DSE fills.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// Total resources.
    pub total: Resources,
}

/// The Xilinx XCVU9P on the VCU118 evaluation board (paper §VII).
pub const XCVU9P: FpgaDevice = FpgaDevice {
    name: "xcvu9p",
    total: Resources {
        lut: 1_182_240.0,
        ff: 2_364_480.0,
        bram: 2_160.0,
        dsp: 6_840.0,
    },
};

impl FpgaDevice {
    /// Utilization of a design on this device.
    pub fn utilization(&self, used: &Resources) -> Utilization {
        Utilization {
            lut: used.lut / self.total.lut,
            ff: used.ff / self.total.ff,
            bram: used.bram / self.total.bram,
            dsp: used.dsp / self.total.dsp,
        }
    }

    /// Whether a design fits within `frac` of every resource.
    pub fn fits(&self, used: &Resources, frac: f64) -> bool {
        self.utilization(used).limiting() <= frac
    }

    /// Achievable clock in MHz as a function of utilization: congestion on
    /// a nearly-full multi-die device costs frequency (§VI-D; the paper's
    /// quad-tile design closes at 92.87 MHz). See [`fmax_curve`].
    pub fn fmax_mhz(&self, used: &Resources) -> f64 {
        fmax_curve(self.utilization(used).limiting())
    }
}

/// The clock floor of the utilization/congestion curve: no design is
/// modeled below 40 MHz — past that point it simply fails timing closure
/// rather than running slower.
pub const FMAX_FLOOR_MHZ: f64 = 40.0;

/// The shared utilization-to-clock curve behind [`FpgaDevice::fmax_mhz`]
/// and the placement model's congestion clock: `160 − 75·u` MHz up to full
/// utilization (unchanged from the original calibration, so in-budget
/// designs keep their historical clocks), then a 300 MHz-per-unit cliff —
/// routing an over-subscribed device deteriorates much faster than filling
/// one — clamped at [`FMAX_FLOOR_MHZ`].
///
/// The historical curve clamped `u` at 1.2 *before* the floor, so its
/// minimum was 70 MHz and the 40 MHz floor was unreachable: a device
/// packed 20% over capacity was modeled at a cheerful 70 MHz. The cliff
/// slope makes the floor bind from `u = 1.15` up.
pub fn fmax_curve(u: f64) -> f64 {
    let mhz = if u <= 1.0 {
        160.0 - 75.0 * u
    } else {
        85.0 - 300.0 * (u - 1.0)
    };
    mhz.max(FMAX_FLOOR_MHZ)
}

/// A hard per-accelerator resource budget for constraint-aware DSE
/// objectives (the paper's DSE is *resource-constrained*: every spatial
/// step is evaluated under a fixed VCU118 budget, and overlays are
/// reported at multiple resource points rather than a single scalar
/// winner).
///
/// Semantics:
///
/// * A design is **admitted** only when every *constrained* channel
///   (`limit > 0`; a zero limit means "unconstrained") satisfies
///   `used <= limit`. Infeasible designs are rejected before the nested
///   system DSE even runs.
/// * Admitted designs near the budget pay a **soft penalty**: for each
///   constrained channel with utilization `u = used / limit` above
///   [`DeviceBudget::soft_frac`], fitness is scaled by
///   `1 - soft_penalty * (u - soft_frac) / (1 - soft_frac)`, multiplied
///   over all four channels. This keeps the annealer from camping on the
///   budget boundary where one more mutation flips to infeasible.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceBudget {
    /// Budget name (stable across serialization, like [`FpgaDevice`]).
    pub name: &'static str,
    /// Per-channel hard limits; a channel at `0.0` is unconstrained.
    pub limit: Resources,
    /// Utilization fraction where the soft penalty starts.
    pub soft_frac: f64,
    /// Maximum fitness reduction per channel at 100% utilization.
    pub soft_penalty: f64,
}

impl DeviceBudget {
    /// Soft-penalty knee and strength shared by the presets: designs are
    /// free below 80% of any channel and lose up to 25% fitness per
    /// channel as they approach the limit.
    const SOFT_FRAC: f64 = 0.8;
    const SOFT_PENALTY: f64 = 0.25;

    /// The full VCU118 (XCVU9P) budget — the paper's evaluation board.
    pub const fn vcu118() -> DeviceBudget {
        DeviceBudget {
            name: "vcu118",
            limit: XCVU9P.total,
            soft_frac: Self::SOFT_FRAC,
            soft_penalty: Self::SOFT_PENALTY,
        }
    }

    /// Half of every VCU118 channel: a mid-size resource point (e.g. an
    /// overlay that shares the device with shell logic or a second
    /// accelerator).
    pub const fn vcu118_medium() -> DeviceBudget {
        DeviceBudget {
            name: "vcu118-medium",
            limit: Resources {
                lut: XCVU9P.total.lut / 2.0,
                ff: XCVU9P.total.ff / 2.0,
                bram: XCVU9P.total.bram / 2.0,
                dsp: XCVU9P.total.dsp / 2.0,
            },
            soft_frac: Self::SOFT_FRAC,
            soft_penalty: Self::SOFT_PENALTY,
        }
    }

    /// A quarter of every VCU118 channel: the small resource point (edge
    /// parts and application-specific overlay sizing).
    pub const fn vcu118_small() -> DeviceBudget {
        DeviceBudget {
            name: "vcu118-small",
            limit: Resources {
                lut: XCVU9P.total.lut / 4.0,
                ff: XCVU9P.total.ff / 4.0,
                bram: XCVU9P.total.bram / 4.0,
                dsp: XCVU9P.total.dsp / 4.0,
            },
            soft_frac: Self::SOFT_FRAC,
            soft_penalty: Self::SOFT_PENALTY,
        }
    }

    /// Name of the first constrained channel `used` exceeds, or `None`
    /// when the design is admitted. Channels are checked in the fixed
    /// `lut, ff, bram, dsp` order so the reported binding channel is
    /// deterministic.
    pub fn exceeded(&self, used: &Resources) -> Option<&'static str> {
        let channels = [
            ("lut", used.lut, self.limit.lut),
            ("ff", used.ff, self.limit.ff),
            ("bram", used.bram, self.limit.bram),
            ("dsp", used.dsp, self.limit.dsp),
        ];
        channels
            .into_iter()
            .find(|&(_, u, l)| l > 0.0 && u > l)
            .map(|(n, _, _)| n)
    }

    /// Whether every constrained channel fits within the budget.
    pub fn admits(&self, used: &Resources) -> bool {
        self.exceeded(used).is_none()
    }

    /// Soft-penalty factor in `(0, 1]` (see type docs): the product over
    /// all four channels of each channel's proximity penalty.
    pub fn soft_factor(&self, used: &Resources) -> f64 {
        let span = (1.0 - self.soft_frac).max(1e-9);
        let mut factor = 1.0;
        for (u, l) in [
            (used.lut, self.limit.lut),
            (used.ff, self.limit.ff),
            (used.bram, self.limit.bram),
            (used.dsp, self.limit.dsp),
        ] {
            if l <= 0.0 {
                continue;
            }
            let util = u / l;
            if util > self.soft_frac {
                let over = ((util - self.soft_frac) / span).min(1.0);
                factor *= 1.0 - self.soft_penalty * over;
            }
        }
        factor
    }
}

/// Resource breakdown by overlay component group — the stacked bars of
/// Figure 16 (pe / n/w / vp / spad / dma / core / noc).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceBreakdown {
    /// Processing elements.
    pub pe: Resources,
    /// Fabric network (switches).
    pub network: Resources,
    /// Vector ports (in + out).
    pub ports: Resources,
    /// Scratchpads.
    pub spad: Resources,
    /// DMA + other stream engines + dispatcher.
    pub dma: Resources,
    /// Control cores.
    pub core: Resources,
    /// System NoC + L2.
    pub noc: Resources,
}

impl ResourceBreakdown {
    /// Sum of all groups.
    pub fn total(&self) -> Resources {
        self.pe + self.network + self.ports + self.spad + self.dma + self.core + self.noc
    }

    /// Groups as `(name, resources)` pairs in Figure 16 order.
    pub fn groups(&self) -> [(&'static str, Resources); 7] {
        [
            ("pe", self.pe),
            ("n/w", self.network),
            ("vp", self.ports),
            ("spad", self.spad),
            ("dma", self.dma),
            ("core", self.core),
            ("noc", self.noc),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources {
            lut: 10.0,
            ff: 20.0,
            bram: 1.0,
            dsp: 2.0,
        };
        let b = a * 2.0 + a;
        assert_eq!(b.lut, 30.0);
        assert_eq!(b.dsp, 6.0);
        let s: Resources = vec![a, a, a].into_iter().sum();
        assert_eq!(s.ff, 60.0);
    }

    #[test]
    fn utilization_and_fit() {
        let half = Resources {
            lut: XCVU9P.total.lut / 2.0,
            ff: 0.0,
            bram: 0.0,
            dsp: 0.0,
        };
        let u = XCVU9P.utilization(&half);
        assert!((u.lut - 0.5).abs() < 1e-12);
        assert_eq!(u.limiting_name(), "lut");
        assert!(XCVU9P.fits(&half, 0.6));
        assert!(!XCVU9P.fits(&half, 0.4));
    }

    #[test]
    fn fmax_decreases_with_utilization() {
        let small = Resources {
            lut: 50_000.0,
            ..Resources::ZERO
        };
        let big = Resources {
            lut: 1_050_000.0,
            ..Resources::ZERO
        };
        assert!(XCVU9P.fmax_mhz(&small) > XCVU9P.fmax_mhz(&big));
        // paper's quad-tile closes around 93 MHz at ~90% LUT
        let f = XCVU9P.fmax_mhz(&big);
        assert!(f > 80.0 && f < 100.0, "fmax {f}");
    }

    /// Pins the shared clock curve at the three calibration points. The
    /// over-capacity cliff is the regression target: the pre-fix curve
    /// clamped utilization at 1.2 before applying the floor, so `u = 1.2`
    /// returned 70 MHz and `.max(40.0)` was dead code.
    #[test]
    fn fmax_curve_is_pinned_and_the_floor_binds() {
        assert_eq!(fmax_curve(0.5), 122.5);
        assert_eq!(fmax_curve(1.0), 85.0);
        assert_eq!(fmax_curve(1.2), FMAX_FLOOR_MHZ);
        // The device method agrees with the shared curve.
        let over = Resources {
            lut: XCVU9P.total.lut * 1.2,
            ..Resources::ZERO
        };
        assert_eq!(XCVU9P.fmax_mhz(&over), FMAX_FLOOR_MHZ);
        // The cliff is continuous-ish at the knee and monotone past it;
        // the floor binds from the crossover near u = 1.15 onward (1.15
        // itself sits within one ulp of the floor, so pin just past it).
        assert!(fmax_curve(1.0) >= fmax_curve(1.01));
        assert!(fmax_curve(1.1) > fmax_curve(1.15));
        assert_eq!(fmax_curve(1.16), FMAX_FLOOR_MHZ);
        assert_eq!(fmax_curve(5.0), FMAX_FLOOR_MHZ);
    }

    #[test]
    fn breakdown_total() {
        let mut b = ResourceBreakdown::default();
        b.pe.lut = 10.0;
        b.noc.lut = 5.0;
        assert_eq!(b.total().lut, 15.0);
        assert_eq!(b.groups()[0].0, "pe");
    }

    #[test]
    fn budget_admits_and_rejects_per_channel() {
        let b = DeviceBudget::vcu118_small();
        assert!(b.admits(&Resources::ZERO));
        assert_eq!(b.exceeded(&Resources::ZERO), None);
        // One channel over is enough, and the binding channel is named in
        // fixed lut/ff/bram/dsp order.
        let bram_heavy = Resources {
            bram: b.limit.bram + 1.0,
            ..Resources::ZERO
        };
        assert_eq!(b.exceeded(&bram_heavy), Some("bram"));
        let both = Resources {
            lut: b.limit.lut * 2.0,
            bram: b.limit.bram * 2.0,
            ..Resources::ZERO
        };
        assert_eq!(b.exceeded(&both), Some("lut"));
    }

    #[test]
    fn budget_soft_factor_kicks_in_near_the_limit() {
        let b = DeviceBudget::vcu118();
        let low = b.limit * 0.5;
        assert_eq!(b.soft_factor(&low), 1.0);
        let near = b.limit * 0.95;
        let at = b.limit * 1.0;
        let f_near = b.soft_factor(&near);
        let f_at = b.soft_factor(&at);
        assert!(f_near < 1.0 && f_near > 0.0);
        assert!(f_at < f_near, "penalty must grow toward the limit");
        // At 100% on all four channels every channel pays its full
        // penalty: (1 - 0.25)^4.
        assert!((f_at - 0.75f64.powi(4)).abs() < 1e-9);
    }

    #[test]
    fn budget_zero_limit_channel_is_unconstrained() {
        let b = DeviceBudget {
            name: "lut-only",
            limit: Resources {
                lut: 1000.0,
                ..Resources::ZERO
            },
            soft_frac: 0.8,
            soft_penalty: 0.25,
        };
        let dsp_heavy = Resources {
            lut: 500.0,
            dsp: 1e9,
            ..Resources::ZERO
        };
        assert!(b.admits(&dsp_heavy));
        assert_eq!(b.soft_factor(&dsp_heavy), 1.0);
    }

    #[test]
    fn array_round_trip() {
        let r = Resources {
            lut: 1.0,
            ff: 2.0,
            bram: 3.0,
            dsp: 4.0,
        };
        assert_eq!(Resources::from_array(r.to_array()), r);
        assert!(r.is_valid());
        assert!(!Resources {
            lut: f64::NAN,
            ..Resources::ZERO
        }
        .is_valid());
    }
}
