//! Synthetic out-of-context (OOC) synthesis oracle.
//!
//! The paper trains its resource model by synthesizing ~217k component
//! variants with Vivado (Table I). Vivado does not exist here, so this
//! module plays its role: deterministic nonlinear cost functions per
//! component class — shaped after published FPGA soft-logic scaling
//! (crossbar muxes ~ O(radix_in x radix_out x width), FIFOs crossing into
//! BRAM at depth thresholds, floating point mapping to DSP slices) — plus
//! hash-seeded noise emulating synthesis variance. Every call also reports
//! a simulated synthesis wall-clock cost so dataset-generation experiments
//! (Table I) account time the way the paper does.
//!
//! The oracle is *the ground truth* the MLP resource model is trained and
//! validated against, exactly as Vivado is in the paper. Like the paper's
//! model, OOC results are pessimistic relative to the final placed-and-
//! routed design; [`synthesize_post_pnr`] applies the optimization-pass
//! shrink factor.

use overgen_adg::{Adg, AdgNode, NodeId};
use overgen_ir::OpClass;

use crate::resources::Resources;

/// Component classes with a learned model (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentKind {
    /// Processing element.
    Pe,
    /// Switch.
    Switch,
    /// Input port.
    InPort,
    /// Output port.
    OutPort,
}

impl ComponentKind {
    /// All learned component classes.
    pub const ALL: [ComponentKind; 4] = [
        ComponentKind::Pe,
        ComponentKind::Switch,
        ComponentKind::InPort,
        ComponentKind::OutPort,
    ];

    /// Paper Table I sample counts per class.
    pub fn paper_sample_count(self) -> usize {
        match self {
            ComponentKind::Pe => 100_000,
            ComponentKind::Switch => 56_700,
            ComponentKind::InPort => 34_412,
            ComponentKind::OutPort => 25_796,
        }
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ComponentKind::Pe => "Processing Elements",
            ComponentKind::Switch => "Switches",
            ComponentKind::InPort => "Input Port",
            ComponentKind::OutPort => "Output Port",
        };
        f.write_str(s)
    }
}

/// Number of features per component (uniform across kinds so one MLP
/// architecture serves all classes).
pub const NUM_FEATURES: usize = 10;

/// A featurized component: input to both the oracle and the MLP.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentFeatures {
    /// Component class.
    pub kind: ComponentKind,
    /// Feature vector; layout depends on `kind` (see [`features_of`]).
    pub f: [f64; NUM_FEATURES],
}

/// Extract features of an ADG node (with its graph context, for radix).
/// Returns `None` for node kinds without a learned model (stream engines
/// are exhaustively characterised instead, §V-D).
pub fn features_of(adg: &Adg, id: NodeId) -> Option<ComponentFeatures> {
    let node = adg.node(id)?;
    let radix_in = adg.preds(id).len() as f64;
    let radix_out = adg.succs(id).len() as f64;
    match node {
        AdgNode::Pe(pe) => {
            let mut addlike = 0.0;
            let mut int_mul = 0.0;
            let mut int_div = 0.0;
            let mut flt_add = 0.0;
            let mut flt_mul = 0.0;
            let mut flt_div = 0.0;
            let mut logic = 0.0;
            for c in &pe.caps {
                let flt = c.dtype.is_float();
                match (c.op.class(), flt) {
                    (OpClass::AddLike, false) => addlike += 1.0,
                    (OpClass::AddLike, true) => flt_add += 1.0,
                    (OpClass::MulLike, false) => int_mul += 1.0,
                    (OpClass::MulLike, true) => flt_mul += 1.0,
                    (OpClass::DivLike, false) => int_div += 1.0,
                    (OpClass::DivLike, true) => flt_div += 1.0,
                    (OpClass::Logic, _) => logic += 1.0,
                }
            }
            Some(ComponentFeatures {
                kind: ComponentKind::Pe,
                f: [
                    addlike,
                    int_mul,
                    int_div,
                    flt_add,
                    flt_mul,
                    flt_div,
                    logic,
                    f64::from(pe.max_bits()) / 64.0,
                    f64::from(pe.delay_fifo_depth),
                    radix_in + radix_out,
                ],
            })
        }
        AdgNode::Switch(_) => Some(ComponentFeatures {
            kind: ComponentKind::Switch,
            f: [radix_in, radix_out, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        }),
        AdgNode::InPort(p) => Some(ComponentFeatures {
            kind: ComponentKind::InPort,
            f: [
                f64::from(p.width_bytes),
                f64::from(u8::from(p.padding)),
                f64::from(u8::from(p.stream_state)),
                radix_out,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
            ],
        }),
        AdgNode::OutPort(p) => Some(ComponentFeatures {
            kind: ComponentKind::OutPort,
            f: [
                f64::from(p.width_bytes),
                radix_in,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
            ],
        }),
        _ => None,
    }
}

/// Result of one OOC synthesis run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthesisRun {
    /// Post-synthesis (pre-PnR, pessimistic) resources.
    pub resources: Resources,
    /// Simulated synthesis wall clock in seconds.
    pub seconds: f64,
}

/// Mean (noise-free) OOC resource cost of a component — the analytic model.
pub fn mean_cost(c: &ComponentFeatures) -> Resources {
    let f = &c.f;
    match c.kind {
        ComponentKind::Pe => {
            let width = f[7].max(0.125); // bits/64
            let (addlike, int_mul, int_div, flt_add, flt_mul, flt_div, logic) =
                (f[0], f[1], f[2], f[3], f[4], f[5], f[6]);
            let fifo = f[8];
            let radix = f[9];
            let lut = 140.0
                + 42.0 * addlike * width.sqrt()
                + 190.0 * int_mul * width
                + 340.0 * int_div * width
                + 160.0 * flt_add
                + 150.0 * flt_mul
                + 420.0 * flt_div
                + 14.0 * logic
                + 16.0 * radix * width * 8.0
                + 10.0 * fifo * radix;
            let ff = 0.9 * lut + 40.0 * fifo * radix;
            let dsp = 2.0 * int_mul * width + 2.0 * flt_add + 3.0 * flt_mul + 4.0 * flt_div;
            Resources {
                lut,
                ff,
                bram: 0.0,
                dsp,
            }
        }
        ComponentKind::Switch => {
            let (rin, rout) = (f[0].max(1.0), f[1].max(1.0));
            Resources {
                lut: 25.0 + 14.0 * rin * rout,
                ff: 35.0 + 68.0 * rout,
                bram: 0.0,
                dsp: 0.0,
            }
        }
        ComponentKind::InPort => {
            let w = f[0].max(1.0);
            let lut = 60.0 + 17.0 * w + 160.0 * f[1] + 110.0 * f[2] + 30.0 * f[3];
            // FIFO storage: flip-flops below 32 bytes, BRAM at/above.
            let (ff, bram) = if w >= 32.0 {
                (90.0 + 18.0 * w, 1.0)
            } else {
                (60.0 + 52.0 * w, 0.0)
            };
            Resources {
                lut,
                ff,
                bram,
                dsp: 0.0,
            }
        }
        ComponentKind::OutPort => {
            let w = f[0].max(1.0);
            Resources {
                lut: 42.0 + 13.0 * w + 24.0 * f[1],
                ff: 40.0 + 38.0 * w,
                bram: 0.0,
                dsp: 0.0,
            }
        }
    }
}

/// Deterministic FNV-1a hash of the feature bits, for noise seeding.
fn feature_hash(c: &ComponentFeatures, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    eat(c.kind as u64);
    for v in &c.f {
        eat(v.to_bits());
    }
    h
}

/// Run the synthesis oracle: mean cost plus deterministic pseudo-random
/// variance (±6%, per resource), the way repeated Vivado runs scatter.
pub fn synthesize(c: &ComponentFeatures, seed: u64) -> SynthesisRun {
    let mean = mean_cost(c);
    let h = feature_hash(c, seed);
    let noise = |salt: u64| -> f64 {
        let x = (h ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 11;
        let unit = (x % 100_000) as f64 / 100_000.0; // [0,1)
        1.0 + 0.12 * (unit - 0.5) // ±6 %
    };
    let resources = Resources {
        lut: (mean.lut * noise(1)).round(),
        ff: (mean.ff * noise(2)).round(),
        bram: mean.bram, // hard blocks do not jitter
        dsp: mean.dsp,
    };
    // Simulated OOC synthesis wall clock: tool startup + size-proportional.
    let seconds = 25.0 + resources.lut / 55.0;
    SynthesisRun { resources, seconds }
}

/// Resources after place & route: synthesis optimization passes shrink the
/// OOC estimate (the paper notes its model "behaves pessimistically").
pub fn synthesize_post_pnr(c: &ComponentFeatures, seed: u64) -> Resources {
    synthesize(c, seed).resources * 0.88
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, NodeKind};

    fn general_features() -> Vec<ComponentFeatures> {
        let adg = mesh(&MeshSpec::general());
        adg.nodes()
            .filter_map(|(id, _)| features_of(&adg, id))
            .collect()
    }

    #[test]
    fn features_cover_learned_kinds_only() {
        let adg = mesh(&MeshSpec::general());
        for (id, n) in adg.nodes() {
            let f = features_of(&adg, id);
            match n.kind() {
                NodeKind::Pe | NodeKind::Switch | NodeKind::InPort | NodeKind::OutPort => {
                    assert!(f.is_some())
                }
                _ => assert!(f.is_none()),
            }
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        for c in general_features() {
            let a = synthesize(&c, 42);
            let b = synthesize(&c, 42);
            assert_eq!(a.resources, b.resources);
            assert!(a.resources.is_valid());
            assert!(a.seconds > 0.0);
        }
    }

    #[test]
    fn noise_is_bounded() {
        for c in general_features() {
            let mean = mean_cost(&c);
            for seed in 0..20 {
                let r = synthesize(&c, seed).resources;
                assert!((r.lut - mean.lut).abs() <= mean.lut * 0.065 + 1.0);
                assert!((r.ff - mean.ff).abs() <= mean.ff * 0.065 + 1.0);
            }
        }
    }

    #[test]
    fn full_cap_pe_costs_more_than_lean_pe() {
        let adg_full = mesh(&MeshSpec::general());
        let adg_lean = mesh(&MeshSpec::default());
        let full_pe = adg_full
            .nodes_of_kind(NodeKind::Pe)
            .into_iter()
            .next()
            .unwrap();
        let lean_pe = adg_lean
            .nodes_of_kind(NodeKind::Pe)
            .into_iter()
            .next()
            .unwrap();
        let cf = mean_cost(&features_of(&adg_full, full_pe).unwrap());
        let cl = mean_cost(&features_of(&adg_lean, lean_pe).unwrap());
        assert!(cf.lut > 3.0 * cl.lut);
        assert!(cf.dsp > cl.dsp);
    }

    #[test]
    fn full_cap_pe_in_plausible_range() {
        // The general overlay datapath should land in the thousands of LUTs
        // per PE so that 4 general tiles approach full-device LUT use.
        let adg = mesh(&MeshSpec::general());
        let pe = adg.nodes_of_kind(NodeKind::Pe)[0];
        let c = mean_cost(&features_of(&adg, pe).unwrap());
        assert!(c.lut > 3_000.0 && c.lut < 15_000.0, "pe lut {}", c.lut);
    }

    #[test]
    fn wide_port_uses_bram() {
        let adg = mesh(&MeshSpec::general()); // 32-byte ports
        let ip = adg.nodes_of_kind(NodeKind::InPort)[0];
        let c = mean_cost(&features_of(&adg, ip).unwrap());
        assert_eq!(c.bram, 1.0);
        let small = mesh(&MeshSpec::default()); // 8-byte ports
        let ips = small.nodes_of_kind(NodeKind::InPort)[0];
        let cs = mean_cost(&features_of(&small, ips).unwrap());
        assert_eq!(cs.bram, 0.0);
    }

    #[test]
    fn switch_cost_scales_with_radix() {
        let lo = ComponentFeatures {
            kind: ComponentKind::Switch,
            f: [2.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let hi = ComponentFeatures {
            kind: ComponentKind::Switch,
            f: [6.0, 6.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        assert!(mean_cost(&hi).lut > 4.0 * mean_cost(&lo).lut);
    }

    #[test]
    fn post_pnr_is_smaller() {
        for c in general_features().into_iter().take(5) {
            let ooc = synthesize(&c, 7).resources;
            let pnr = synthesize_post_pnr(&c, 7);
            assert!(pnr.lut < ooc.lut);
        }
    }

    #[test]
    fn paper_sample_counts() {
        assert_eq!(ComponentKind::Pe.paper_sample_count(), 100_000);
        assert_eq!(ComponentKind::Switch.paper_sample_count(), 56_700);
        assert_eq!(ComponentKind::InPort.paper_sample_count(), 34_412);
        assert_eq!(ComponentKind::OutPort.paper_sample_count(), 25_796);
    }
}
