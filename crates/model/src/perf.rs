//! The bottleneck performance model of §V-C (Equations 1 and 2).
//!
//! `Perf = (mDFG Insts) x (# of Tiles) x min over levels of
//! (R_production / R_consumption)` where the levels are the scratchpad,
//! the shared L2, and DRAM, and each stream's consumption is its bandwidth
//! divided by the reuse captured above that level.

use std::collections::BTreeSet;
use std::fmt;

use overgen_adg::SystemParams;
use overgen_mdfg::{Mdfg, MdfgNode, MemPref};

/// A memory-hierarchy level (L1 = scratchpad, L2 = shared cache, L3 = DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Level {
    /// On-tile scratchpads.
    Spad,
    /// Shared banked L2 over the NoC.
    L2,
    /// FPGA DRAM channel(s).
    Dram,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Spad => "spad",
            Level::L2 => "l2",
            Level::Dram => "dram",
        };
        f.write_str(s)
    }
}

/// Which arrays are placed in scratchpads (everything else streams through
/// DMA). Produced by the spatial scheduler; [`Placement::from_prefs`] gives
/// the compiler's preference-based default for schedule-free estimation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Placement {
    /// Names of scratchpad-resident arrays.
    pub spad_arrays: BTreeSet<String>,
}

impl Placement {
    /// Default placement from the mDFG's array preferences.
    pub fn from_prefs(mdfg: &Mdfg) -> Self {
        let mut spad_arrays = BTreeSet::new();
        for (_, n) in mdfg.nodes() {
            if let MdfgNode::Array(a) = n {
                if a.pref == MemPref::PreferSpad {
                    spad_arrays.insert(a.name.clone());
                }
            }
        }
        Placement { spad_arrays }
    }
}

/// Result of a performance estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerfEstimate {
    /// Whole-FPGA estimated IPC (Equation 1).
    pub ipc: f64,
    /// Per-tile IPC.
    pub per_tile_ipc: f64,
    /// Bottleneck factors `[spad, l2, dram]`, each capped at 1.
    pub factors: [f64; 3],
}

impl PerfEstimate {
    /// The binding level, or `None` when compute bound.
    pub fn bottleneck(&self) -> Option<Level> {
        let min = self.factors[0].min(self.factors[1]).min(self.factors[2]);
        if min >= 1.0 {
            return None;
        }
        if min == self.factors[0] {
            Some(Level::Spad)
        } else if min == self.factors[1] {
            Some(Level::L2)
        } else {
            Some(Level::Dram)
        }
    }
}

/// Estimate IPC of one mDFG on a system (Equations 1–2).
///
/// `spad_bw_total` is the summed read bandwidth of the tile's scratchpads
/// in bytes/cycle (zero when the tile has none).
pub fn estimate_ipc(
    mdfg: &Mdfg,
    sys: &SystemParams,
    spad_bw_total: f64,
    placement: &Placement,
) -> PerfEstimate {
    // Cross-iteration regions neither tile-parallelize nor fire every
    // cycle: the dependency chain sets the firing interval.
    let tiles = if mdfg.sequential() {
        1.0
    } else {
        f64::from(sys.tiles)
    };
    let interval = if mdfg.sequential() {
        (mdfg.critical_path_len() as f64 / 2.0).max(1.0)
    } else {
        1.0
    };
    let insts = mdfg.insts_per_firing() / interval;

    // Per-tile consumption rates at each level (Equation 2's sum of
    // stream bandwidth over reuse).
    let mut cons_spad = 0.0f64;
    let mut cons_l2 = 0.0f64;
    let mut cons_dram = 0.0f64;

    for (_, n) in mdfg.nodes() {
        let s = match n.as_stream() {
            Some(s) => s,
            None => continue,
        };
        if s.array.is_empty() {
            continue; // generate streams produce values, not memory traffic
        }
        let bw = s.bytes_per_firing as f64;
        let datapath_reuse = s.reuse.datapath_reuse();
        // Strided DRAM access wastes most of every line (stride-3/4
        // channel interleaving): ~4x bandwidth amplification.
        let amp = if s.pattern == crate::perf::strided_pattern() {
            4.0
        } else {
            1.0
        };
        let residual = bw * amp / datapath_reuse;
        if s.reuse.recurrent.is_some() {
            // Recurrence pairs stay in the fabric; negligible memory traffic.
            continue;
        }
        if placement.spad_arrays.contains(&s.array) && !s.broadcast {
            cons_spad += residual;
        } else {
            cons_l2 += residual;
            // DRAM pressure: reduced by L2 capture when the footprint
            // (shared across tiles) fits in the cache.
            let fits_l2 = s.reuse.footprint_bytes * tiles <= f64::from(sys.l2_kb) * 1024.0;
            let l2_capture = if fits_l2 {
                s.reuse.scratchpad_benefit() // general reuse not yet captured
            } else {
                1.0
            };
            cons_dram += residual / l2_capture;
        }
    }

    let factor = |prod: f64, cons: f64| -> f64 {
        if cons <= 0.0 {
            1.0
        } else {
            (prod / cons).min(1.0)
        }
    };

    // L1: replicated per tile (# shared tiles = 1).
    let f_spad = factor(spad_bw_total, cons_spad);
    // L2: shared across tiles; NoC link width also caps per-tile ingest.
    let l2_prod = sys.l2_bw_bytes() as f64;
    let f_l2 = factor(l2_prod, cons_l2 * tiles).min(factor(f64::from(sys.noc_bw_bytes), cons_l2));
    // DRAM: fixed total bandwidth shared across tiles.
    let f_dram = factor(sys.dram_bw_bytes() as f64, cons_dram * tiles);

    let bottleneck = f_spad.min(f_l2).min(f_dram);
    let per_tile_ipc = insts * bottleneck;
    PerfEstimate {
        ipc: per_tile_ipc * tiles,
        per_tile_ipc,
        factors: [f_spad, f_l2, f_dram],
    }
}

/// The strided pattern constant (helper keeping the match local).
pub(crate) fn strided_pattern() -> overgen_mdfg::StreamPattern {
    overgen_mdfg::StreamPattern::Strided
}

/// Weighted geometric mean of per-workload IPCs — the DSE objective
/// ("mean performance of the best-performing mDFG for each workload",
/// §III-A).
/// An empty slice or a non-positive weight is a caller bug — the DSE
/// objective would silently collapse to 0.0 and every proposal would look
/// equally worthless. Both are hard errors in debug builds; release builds
/// keep the 0.0 escape hatch so a malformed run degrades instead of
/// aborting mid-anneal.
pub fn weighted_geomean_ipc(ipcs: &[(f64, f64)]) -> f64 {
    debug_assert!(
        !ipcs.is_empty(),
        "weighted_geomean_ipc: empty input (objective would be 0.0)"
    );
    debug_assert!(
        ipcs.iter().all(|&(_, w)| w > 0.0),
        "weighted_geomean_ipc: non-positive weight in {ipcs:?}"
    );
    let total_w: f64 = ipcs.iter().map(|(_, w)| w).sum();
    if total_w <= 0.0 {
        return 0.0;
    }
    let log_sum: f64 = ipcs.iter().map(|(ipc, w)| w * ipc.max(1e-12).ln()).sum();
    (log_sum / total_w).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{DataType, Op};
    use overgen_mdfg::{ArrayNode, InstNode, MdfgNode, MemPref, ReuseInfo, StreamNode};

    /// A streaming kernel: 2 input streams + 1 output, no reuse.
    fn streaming_mdfg(bytes_per_firing: u64) -> Mdfg {
        let mut g = Mdfg::new("stream", 0);
        g.set_unroll(2);
        g.set_total_iterations(4096.0);
        let info = ReuseInfo {
            traffic_bytes: 4096.0 * 8.0,
            footprint_bytes: 4096.0 * 8.0,
            ..ReuseInfo::default()
        };
        let aa = g.add_node(MdfgNode::Array(ArrayNode::new(
            "a",
            32768,
            MemPref::PreferDram,
        )));
        let ab = g.add_node(MdfgNode::Array(ArrayNode::new(
            "b",
            32768,
            MemPref::PreferDram,
        )));
        let ac = g.add_node(MdfgNode::Array(ArrayNode::new(
            "c",
            32768,
            MemPref::PreferDram,
        )));
        let ra = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "a",
            bytes_per_firing,
            info,
        )));
        let rb = g.add_node(MdfgNode::InputStream(StreamNode::read(
            "b",
            bytes_per_firing,
            info,
        )));
        let add = g.add_node(MdfgNode::Inst(InstNode::new(Op::Add, DataType::I64, 1)));
        let wc = g.add_node(MdfgNode::OutputStream(StreamNode::write(
            "c",
            bytes_per_firing,
            info,
        )));
        g.add_edge(aa, ra).unwrap();
        g.add_edge(ab, rb).unwrap();
        g.add_edge(ra, add).unwrap();
        g.add_edge(rb, add).unwrap();
        g.add_edge(add, wc).unwrap();
        g.add_edge(wc, ac).unwrap();
        g
    }

    fn sys(tiles: u32, banks: u32, channels: u32) -> SystemParams {
        SystemParams {
            tiles,
            l2_banks: banks,
            l2_kb: 512,
            noc_bw_bytes: 64,
            dram_channels: channels,
        }
    }

    #[test]
    fn compute_bound_when_bandwidth_ample() {
        let g = streaming_mdfg(8);
        let p = estimate_ipc(&g, &sys(1, 8, 4), 0.0, &Placement::default());
        assert_eq!(p.bottleneck(), None);
        assert!((p.per_tile_ipc - g.insts_per_firing()).abs() < 1e-9);
    }

    #[test]
    fn dram_bound_with_many_tiles() {
        // 16 tiles x 3 streams x 32B = 1536 B/cyc demand vs 64 B/cyc DRAM.
        let g = streaming_mdfg(32);
        let p = estimate_ipc(&g, &sys(16, 32, 1), 0.0, &Placement::default());
        assert_eq!(p.bottleneck(), Some(Level::Dram));
        assert!(p.factors[2] < 0.1);
    }

    #[test]
    fn more_channels_relieve_dram() {
        let g = streaming_mdfg(32);
        let p1 = estimate_ipc(&g, &sys(8, 32, 1), 0.0, &Placement::default());
        let p4 = estimate_ipc(&g, &sys(8, 32, 4), 0.0, &Placement::default());
        assert!(p4.ipc > p1.ipc);
    }

    #[test]
    fn scaling_tiles_saturates() {
        let g = streaming_mdfg(32);
        let p4 = estimate_ipc(&g, &sys(4, 4, 1), 0.0, &Placement::default());
        let p16 = estimate_ipc(&g, &sys(16, 4, 1), 0.0, &Placement::default());
        // more tiles cannot exceed DRAM-limited throughput
        assert!(p16.ipc <= p4.ipc * 1.5);
    }

    #[test]
    fn spad_placement_removes_l2_pressure() {
        let g = streaming_mdfg(32);
        let mut placement = Placement::default();
        placement.spad_arrays.insert("a".into());
        placement.spad_arrays.insert("b".into());
        placement.spad_arrays.insert("c".into());
        let without = estimate_ipc(&g, &sys(8, 2, 1), 0.0, &Placement::default());
        let with = estimate_ipc(&g, &sys(8, 2, 1), 128.0, &placement);
        assert!(with.ipc > without.ipc);
        // but an undersized scratchpad bandwidth becomes the new bottleneck
        let starved = estimate_ipc(&g, &sys(8, 2, 1), 8.0, &placement);
        assert_eq!(starved.bottleneck(), Some(Level::Spad));
    }

    #[test]
    fn stationary_reuse_divides_pressure() {
        let mut g = streaming_mdfg(32);
        // Mark stream `a` as 32x port-stationary.
        let ids: Vec<_> = g.nodes().map(|(id, _)| id).collect();
        for id in ids {
            if let Some(MdfgNode::InputStream(s)) = g.node_mut(id) {
                if s.array == "a" {
                    s.reuse.stationary = 32.0;
                }
            }
        }
        let base = streaming_mdfg(32);
        let p_plain = estimate_ipc(&base, &sys(8, 2, 1), 0.0, &Placement::default());
        let p_reuse = estimate_ipc(&g, &sys(8, 2, 1), 0.0, &Placement::default());
        assert!(p_reuse.ipc >= p_plain.ipc);
    }

    #[test]
    fn geomean() {
        let v = weighted_geomean_ipc(&[(4.0, 1.0), (16.0, 1.0)]);
        assert!((v - 8.0).abs() < 1e-9);
        // weights shift the mean
        let w = weighted_geomean_ipc(&[(4.0, 3.0), (16.0, 1.0)]);
        assert!(w < 8.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "empty input")]
    fn geomean_rejects_empty_input() {
        weighted_geomean_ipc(&[]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-positive weight")]
    fn geomean_rejects_non_positive_weight() {
        weighted_geomean_ipc(&[(4.0, 1.0), (16.0, 0.0)]);
    }

    #[test]
    fn placement_from_prefs() {
        let mut g = Mdfg::new("x", 0);
        let a = g.add_node(MdfgNode::Array(ArrayNode::new(
            "hot",
            64,
            MemPref::PreferSpad,
        )));
        let _ = a;
        g.add_node(MdfgNode::Array(ArrayNode::new(
            "cold",
            64,
            MemPref::PreferDram,
        )));
        let p = Placement::from_prefs(&g);
        assert!(p.spad_arrays.contains("hot"));
        assert!(!p.spad_arrays.contains("cold"));
    }
}
