//! Dataset generation and MLP-model training for the FPGA resource model
//! (paper §V-D, Table I).

use overgen_telemetry::Rng;

use std::collections::BTreeMap;

use crate::estimate::ResourceModel;
use crate::mlp::{Mlp, TrainConfig, TrainReport};
use crate::resources::Resources;
use crate::synthesis::{synthesize, ComponentFeatures, ComponentKind, NUM_FEATURES};

/// One component class's dataset: features plus oracle responses, and the
/// total simulated synthesis time spent producing it.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Component class.
    pub kind: ComponentKind,
    /// Feature vectors.
    pub xs: Vec<Vec<f64>>,
    /// Resource targets `[lut, ff, bram, dsp]`.
    pub ys: Vec<Vec<f64>>,
    /// Simulated synthesis hours spent.
    pub synth_hours: f64,
}

/// Sample a random, plausible feature vector of a component class.
pub fn random_features(kind: ComponentKind, rng: &mut Rng) -> ComponentFeatures {
    let mut f = [0.0; NUM_FEATURES];
    match kind {
        ComponentKind::Pe => {
            f[0] = rng.gen_range(0..40) as f64; // addlike
            f[1] = rng.gen_range(0..8) as f64; // int mul
            f[2] = rng.gen_range(0..10) as f64; // int div
            f[3] = rng.gen_range(0..4) as f64; // flt add
            f[4] = rng.gen_range(0..4) as f64; // flt mul
            f[5] = rng.gen_range(0..5) as f64; // flt div/sqrt
            f[6] = rng.gen_range(0..40) as f64; // logic
            f[7] = [0.125, 0.25, 0.5, 1.0][rng.gen_range(0..4usize)]; // bits/64
            f[8] = rng.gen_range(1..9) as f64; // delay fifo depth
            f[9] = rng.gen_range(2..9) as f64; // radix
        }
        ComponentKind::Switch => {
            f[0] = rng.gen_range(1..9) as f64;
            f[1] = rng.gen_range(1..9) as f64;
            f[2] = 1.0;
        }
        ComponentKind::InPort => {
            f[0] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0][rng.gen_range(0..7usize)];
            f[1] = f64::from(rng.gen_range(0..2u8));
            f[2] = f64::from(rng.gen_range(0..2u8));
            f[3] = rng.gen_range(1..5) as f64;
        }
        ComponentKind::OutPort => {
            f[0] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0][rng.gen_range(0..7usize)];
            f[1] = rng.gen_range(1..5) as f64;
        }
    }
    ComponentFeatures { kind, f }
}

/// Generate a dataset of `n` oracle-synthesized samples for one class.
pub fn generate(kind: ComponentKind, n: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed ^ (kind as u64) << 32);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut seconds = 0.0;
    for i in 0..n {
        let feats = random_features(kind, &mut rng);
        let run = synthesize(&feats, seed.wrapping_add(i as u64));
        xs.push(feats.f.to_vec());
        ys.push(run.resources.to_array().to_vec());
        seconds += run.seconds;
    }
    Dataset {
        kind,
        xs,
        ys,
        synth_hours: seconds / 3600.0,
    }
}

/// The trained per-class MLP resource model (the object the DSE queries).
#[derive(Debug, Clone)]
pub struct MlpResourceModel {
    models: BTreeMap<ComponentKind, Mlp>,
    reports: BTreeMap<ComponentKind, TrainReport>,
}

impl MlpResourceModel {
    /// Train one MLP per component class on oracle datasets of the given
    /// sizes. `sizes` maps class -> sample count (use
    /// [`ComponentKind::paper_sample_count`] to reproduce Table I exactly).
    pub fn train(sizes: &BTreeMap<ComponentKind, usize>, seed: u64) -> Self {
        let mut models = BTreeMap::new();
        let mut reports = BTreeMap::new();
        for (&kind, &n) in sizes {
            let ds = generate(kind, n, seed);
            let mut mlp = Mlp::new(NUM_FEATURES, 24, 16, 4, seed ^ kind as u64);
            let report = mlp.train(
                &ds.xs,
                &ds.ys,
                &TrainConfig {
                    epochs: 40,
                    ..Default::default()
                },
            );
            models.insert(kind, mlp);
            reports.insert(kind, report);
        }
        MlpResourceModel { models, reports }
    }

    /// Quick default: a few thousand samples per class (minutes of
    /// simulated synthesis rather than the paper's weeks).
    pub fn train_default(seed: u64) -> Self {
        let sizes = ComponentKind::ALL.into_iter().map(|k| (k, 1_500)).collect();
        Self::train(&sizes, seed)
    }

    /// Training report per class.
    pub fn report(&self, kind: ComponentKind) -> Option<&TrainReport> {
        self.reports.get(&kind)
    }
}

impl ResourceModel for MlpResourceModel {
    fn component(&self, feats: &ComponentFeatures) -> Resources {
        match self.models.get(&feats.kind) {
            Some(mlp) => {
                let out = mlp.forward(&feats.f);
                Resources {
                    lut: out[0].max(0.0),
                    ff: out[1].max(0.0),
                    bram: out[2].max(0.0),
                    dsp: out[3].max(0.0),
                }
            }
            None => crate::synthesis::mean_cost(feats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::AnalyticModel;

    #[test]
    fn dataset_shapes_and_time() {
        let ds = generate(ComponentKind::Switch, 200, 1);
        assert_eq!(ds.xs.len(), 200);
        assert_eq!(ds.ys.len(), 200);
        assert_eq!(ds.xs[0].len(), NUM_FEATURES);
        assert_eq!(ds.ys[0].len(), 4);
        assert!(ds.synth_hours > 0.0);
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = generate(ComponentKind::Pe, 50, 9);
        let b = generate(ComponentKind::Pe, 50, 9);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
    }

    #[test]
    fn mlp_model_tracks_oracle() {
        // Small but real end-to-end train; assert the learned model is
        // within ~20% of the analytic mean on fresh samples.
        let sizes = [(ComponentKind::Switch, 800)].into_iter().collect();
        let model = MlpResourceModel::train(&sizes, 5);
        let report = model.report(ComponentKind::Switch).unwrap();
        assert!(
            report.test_rel_err < 0.15,
            "switch test err {}",
            report.test_rel_err
        );
        let mut rng = Rng::seed_from_u64(99);
        let analytic = AnalyticModel;
        let mut err = 0.0;
        let mut mag = 0.0;
        for _ in 0..50 {
            let f = random_features(ComponentKind::Switch, &mut rng);
            let p = model.component(&f);
            let t = analytic.component(&f);
            err += (p.lut - t.lut).abs();
            mag += t.lut;
        }
        assert!(err / mag < 0.2, "mlp vs analytic rel err {}", err / mag);
    }

    #[test]
    fn unknown_kind_falls_back_to_analytic() {
        let model = MlpResourceModel {
            models: BTreeMap::new(),
            reports: BTreeMap::new(),
        };
        let mut rng = Rng::seed_from_u64(1);
        let f = random_features(ComponentKind::Pe, &mut rng);
        let r = model.component(&f);
        assert_eq!(r, crate::synthesis::mean_cost(&f));
    }
}
