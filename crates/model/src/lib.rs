//! Performance, FPGA-resource, and time models for OverGen's DSE.
//!
//! Three model families from the paper:
//!
//! - **Performance** ([`perf`]): the bottleneck analysis of §V-C
//!   (Equations 1–2) — estimated IPC from mDFG instruction bandwidth, tile
//!   count, and production/consumption ratios at each memory level.
//! - **FPGA resources** ([`resources`], [`synthesis`], [`mlp`]): per-element
//!   LUT/FF/BRAM/DSP estimates. The paper trains a 3-layer MLP on
//!   out-of-context Vivado synthesis runs (§V-D, Table I); here a synthetic
//!   synthesis oracle plays Vivado's role and the same MLP pipeline is
//!   trained against it. An analytic model (the oracle mean) is also
//!   available for fast exact queries.
//! - **Time** ([`time`]): wall-clock models for HLS synthesis, place &
//!   route, overlay compilation, and reconfiguration — the quantities of
//!   Figures 15 and 17.
//!
//! # Example
//!
//! ```
//! use overgen_model::resources::{Resources, XCVU9P};
//! let r = Resources { lut: 100_000.0, ff: 80_000.0, bram: 120.0, dsp: 64.0 };
//! assert!(XCVU9P.utilization(&r).lut < 0.1);
//! ```

pub mod dataset;
pub mod estimate;
pub mod mlp;
pub mod perf;
pub mod placement;
pub mod resources;
pub mod synthesis;
pub mod time;

pub use dataset::{generate, Dataset, MlpResourceModel};
pub use estimate::{
    accelerator_resources, breakdown, core_resources, dispatcher_resources, engine_resources,
    l2_resources, noc_resources, AnalyticModel, ResourceModel,
};
pub use mlp::{Mlp, TrainConfig, TrainReport};
pub use perf::{estimate_ipc, weighted_geomean_ipc, Level, PerfEstimate, Placement};
pub use placement::{
    noc_wirelength, ClockRegionGrid, GridCell, PlacementMetrics, PlacementReport, Placer,
    PlacerKind, SimpleGridPlacer,
};
pub use resources::{
    fmax_curve, DeviceBudget, FpgaDevice, ResourceBreakdown, Resources, Utilization,
    FMAX_FLOOR_MHZ, XCVU9P,
};
pub use synthesis::{
    features_of, synthesize, synthesize_post_pnr, ComponentFeatures, ComponentKind, SynthesisRun,
};
pub use time::TimeModel;
