//! Spatial placement of an overlay onto a modeled clock-region/SLR grid.
//!
//! OverGen's overlays fail in practice on *placement and routing
//! congestion*, not scalar area: the paper's quad-tile design closes at
//! 92.87 MHz precisely because of multi-die congestion on the VCU118
//! (§VI-D). The four-channel [`Resources`] sums the rest of the model
//! works with cannot see that axis, so this module adds the coarsest
//! physical model that can: the device is a grid of *clock regions*
//! grouped into SLRs ([`ClockRegionGrid`]), a [`Placer`] maps the
//! system-level tiles and their NoC links onto grid cells, and the
//! resulting [`PlacementReport`] carries NoC wirelength, peak region
//! congestion, SLR-boundary crossings, and the achievable clock those
//! imply. The abstraction follows the RapidWright pre-implemented-overlay
//! work (arXiv:2001.11886): tiles are relocatable rectangular footprints
//! on a device grid, and quality is a function of where they land.
//!
//! Placers are trait objects so DSE configuration can carry a placer
//! *choice* (see [`PlacerKind`]) while the shipped implementation stays a
//! zero-state deterministic function: [`SimpleGridPlacer`] packs tile
//! footprints row-major and routes every NoC link to a central hub.
//! Everything here is a pure function of its inputs — no RNG, no ambient
//! state — which is what lets DSE traces stay byte-identical at any
//! thread count when placement is enabled.

use overgen_adg::SysAdg;

use crate::estimate::l2_resources;
use crate::resources::{fmax_curve, FpgaDevice, Resources, FMAX_FLOOR_MHZ, XCVU9P};

/// One clock-region cell on the device grid. Columns run left-to-right,
/// rows bottom-to-top (row 0 is the bottom of SLR 0), matching Xilinx
/// `CLOCKREGION_X#Y#` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridCell {
    /// Clock-region column (`X` coordinate).
    pub col: u32,
    /// Clock-region row (`Y` coordinate), counted across SLRs.
    pub row: u32,
}

impl GridCell {
    /// Manhattan distance to `other` in clock-region hops — the wirelength
    /// unit of this model.
    pub fn manhattan(self, other: GridCell) -> u32 {
        self.col.abs_diff(other.col) + self.row.abs_diff(other.row)
    }
}

/// A device modeled as a grid of homogeneous clock regions grouped into
/// SLRs. Resources are assumed uniform per region (the real XCVU9P is
/// close: its columns differ, but tile-granularity placement does not
/// resolve below a region anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockRegionGrid {
    /// The device whose total resources the regions partition.
    pub device: FpgaDevice,
    /// Clock-region columns.
    pub cols: u32,
    /// Clock-region rows, counted across all SLRs.
    pub rows: u32,
    /// Rows per SLR; `rows / rows_per_slr` is the SLR count.
    pub rows_per_slr: u32,
}

impl ClockRegionGrid {
    /// The VCU118's XCVU9P: 3 SLRs of 5 clock-region rows each, 7 columns
    /// wide (`CLOCKREGION_X0Y0` through `X6Y14`).
    pub const fn vcu118() -> ClockRegionGrid {
        ClockRegionGrid {
            device: XCVU9P,
            cols: 7,
            rows: 15,
            rows_per_slr: 5,
        }
    }

    /// Total clock regions.
    pub fn regions(&self) -> u32 {
        self.cols * self.rows
    }

    /// Resources of one clock region (uniform partition of the device).
    pub fn region_capacity(&self) -> Resources {
        self.device.total * (1.0 / f64::from(self.regions().max(1)))
    }

    /// The cell of a row-major region index (wrapping, so packing more
    /// demand than the device has regions folds back onto the grid and
    /// shows up as congestion rather than an error).
    pub fn cell(&self, index: u32) -> GridCell {
        let i = index % self.regions().max(1);
        GridCell {
            col: i % self.cols,
            row: i / self.cols,
        }
    }

    /// Which SLR a cell lies in.
    pub fn slr_of(&self, cell: GridCell) -> u32 {
        cell.row / self.rows_per_slr.max(1)
    }

    /// Is `cell` on the grid?
    pub fn contains(&self, cell: GridCell) -> bool {
        cell.col < self.cols && cell.row < self.rows
    }

    /// SLR boundaries a straight NoC route between two cells crosses
    /// (super-long-line hops; each costs latency and clock margin).
    pub fn slr_crossings_between(&self, a: GridCell, b: GridCell) -> u32 {
        self.slr_of(a).abs_diff(self.slr_of(b))
    }
}

/// Per-tile clock penalty of one SLR crossing, in MHz. Calibrated so the
/// four-tile VCU118 point lands in the paper's 92.87 MHz regime (§VI-D)
/// once the congestion curve has taken its share.
const SLR_CROSSING_MHZ: f64 = 1.0;

/// Outcome of placing one overlay configuration: the tile anchors plus the
/// three quality axes the DSE can trade against IPC and area.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementReport {
    /// Anchor cell of each tile, in tile-id order (tile `i` is
    /// `cells[i]`).
    pub cells: Vec<GridCell>,
    /// Cell of the shared L2/NoC hub every tile's link routes to.
    pub hub: GridCell,
    /// Clock regions in each tile's footprint (identical for homogeneous
    /// tiles).
    pub span: u32,
    /// Total NoC wirelength in clock-region hops: the tile→hub Manhattan
    /// links plus each tile's internal footprint extent.
    pub wirelength: f64,
    /// Peak limiting-channel utilization over all clock regions. Above
    /// 1.0 the grid is over-subscribed (footprints wrapped onto each
    /// other) and the clock model degrades steeply.
    pub congestion: f64,
    /// Total SLR boundaries crossed by NoC links and intra-tile
    /// footprints.
    pub slr_crossings: u64,
    /// Achievable clock implied by congestion and SLR crossings, via the
    /// shared [`fmax_curve`] with [`SLR_CROSSING_MHZ`] per crossing,
    /// floored at [`FMAX_FLOOR_MHZ`].
    pub fmax_mhz: f64,
}

impl PlacementReport {
    /// The `Copy` metric triple plus clock, as Pareto tracking keeps it.
    pub fn metrics(&self) -> PlacementMetrics {
        PlacementMetrics {
            wirelength: self.wirelength,
            congestion: self.congestion,
            slr_crossings: self.slr_crossings,
            fmax_mhz: self.fmax_mhz,
        }
    }
}

/// The placement quality axes, as a `Copy` value for Pareto points and
/// checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementMetrics {
    /// Total NoC wirelength in clock-region hops.
    pub wirelength: f64,
    /// Peak clock-region limiting-channel utilization.
    pub congestion: f64,
    /// Total SLR boundary crossings.
    pub slr_crossings: u64,
    /// Achievable clock in MHz.
    pub fmax_mhz: f64,
}

/// A spatial placer: maps the system-level tiles (and their NoC links) of
/// an overlay onto a [`ClockRegionGrid`]. Implementations must be pure
/// deterministic functions of their arguments — reports feed cached,
/// byte-compared DSE evaluations.
pub trait Placer: Send + Sync {
    /// Stable identifier, folded into config hashes and checkpoints.
    fn name(&self) -> &'static str;

    /// Place `sys.sys.tiles` homogeneous tiles of `tile` resources each
    /// (plus the shared L2 at the hub) onto `grid`.
    fn place(&self, sys: &SysAdg, tile: &Resources, grid: &ClockRegionGrid) -> PlacementReport;
}

/// The shipped deterministic placer: tiles take contiguous row-major runs
/// of clock regions sized to their demand, the L2/NoC hub sits at the
/// grid's center region, and every tile's NoC link routes straight to it.
/// No search — placement cost must stay negligible against scheduling and
/// the system DSE, and a pure layout function is trivially deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleGridPlacer;

impl Placer for SimpleGridPlacer {
    fn name(&self) -> &'static str {
        "simple_grid"
    }

    fn place(&self, sys: &SysAdg, tile: &Resources, grid: &ClockRegionGrid) -> PlacementReport {
        let tiles = sys.sys.tiles.max(1);
        let regions = grid.regions().max(1);
        // Footprint: enough regions that no channel of the spread-out tile
        // exceeds one region's capacity (before over-subscription).
        let demand = grid.device.utilization(tile).limiting() * f64::from(regions);
        let span = (demand.ceil() as u32).clamp(1, regions);

        // Hub first: the shared L2 + NoC crossbar, spread over its own
        // footprint at the grid center — a multi-bank L2 no more fits in
        // one clock region than a tile does, and charging it to a single
        // region would pin congestion at the hub for every configuration.
        let l2 = l2_resources(&sys.sys);
        let hub_demand = grid.device.utilization(&l2).limiting() * f64::from(regions);
        let hub_span = (hub_demand.ceil() as u32).clamp(1, regions);
        let hub_start = (regions / 2).saturating_sub(hub_span / 2);
        let hub = grid.cell(regions / 2);
        let mut occupancy = vec![Resources::ZERO; regions as usize];
        let per_hub_region = l2 * (1.0 / f64::from(hub_span));
        for r in 0..hub_span {
            occupancy[((hub_start + r) % regions) as usize] += per_hub_region;
        }

        // Tiles pack row-major in contiguous runs of `span` regions over
        // the regions the hub left free, wrapping only when the grid
        // genuinely runs out (over-subscription → congestion, never
        // failure: the DSE's objective is what rejects).
        let free: Vec<u32> = if hub_span >= regions {
            (0..regions).collect()
        } else {
            (0..regions)
                .filter(|i| *i < hub_start || *i >= hub_start + hub_span)
                .collect()
        };
        let nfree = free.len() as u64;
        let per_region = *tile * (1.0 / f64::from(span));
        let mut cells = Vec::with_capacity(tiles as usize);
        let mut wirelength = 0.0f64;
        let mut slr_crossings = 0u64;
        for t in 0..tiles {
            let base = u64::from(t) * u64::from(span);
            let anchor = grid.cell(free[(base % nfree) as usize]);
            for r in 0..span {
                let idx = free[((base + u64::from(r)) % nfree) as usize] as usize;
                occupancy[idx] += per_region;
            }
            let last = grid.cell(free[((base + u64::from(span) - 1) % nfree) as usize]);
            // One NoC link per tile, anchor → hub, plus the footprint's
            // own extent (intra-tile routing).
            wirelength += f64::from(anchor.manhattan(hub)) + f64::from(span - 1);
            slr_crossings += u64::from(grid.slr_crossings_between(anchor, hub));
            slr_crossings += u64::from(grid.slr_crossings_between(anchor, last));
            cells.push(anchor);
        }

        let congestion = occupancy
            .iter()
            .map(|r| {
                grid.device
                    .utilization(&(*r * f64::from(regions)))
                    .limiting()
            })
            .fold(0.0f64, f64::max);
        let fmax_mhz =
            (fmax_curve(congestion) - SLR_CROSSING_MHZ * slr_crossings as f64).max(FMAX_FLOOR_MHZ);
        PlacementReport {
            cells,
            hub,
            span,
            wirelength,
            congestion,
            slr_crossings,
            fmax_mhz,
        }
    }
}

/// A serializable placer choice, resolvable to the trait object the
/// evaluation pipeline calls. This is what configs, hashes, and
/// checkpoints carry; [`Placer`] stays open for unregistered
/// implementations in library use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacerKind {
    /// [`SimpleGridPlacer`].
    SimpleGrid,
}

impl PlacerKind {
    /// Stable name (checkpoints, config hashes).
    pub fn name(self) -> &'static str {
        match self {
            PlacerKind::SimpleGrid => "simple_grid",
        }
    }

    /// Parse a stable name back to a kind.
    pub fn from_name(name: &str) -> Option<PlacerKind> {
        match name {
            "simple_grid" => Some(PlacerKind::SimpleGrid),
            _ => None,
        }
    }

    /// The placer this kind names.
    pub fn placer(self) -> &'static dyn Placer {
        match self {
            PlacerKind::SimpleGrid => &SimpleGridPlacer,
        }
    }
}

/// Total NoC wirelength of a set of tile anchors linked to one hub, in
/// clock-region hops. Exposed separately from [`Placer::place`] so the
/// relabeling-invariance property (wirelength is a function of the cell
/// *multiset*, never of tile ids) is testable directly.
pub fn noc_wirelength(cells: &[GridCell], hub: GridCell) -> f64 {
    cells.iter().map(|c| f64::from(c.manhattan(hub))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SystemParams};

    fn sys_with_tiles(tiles: u32) -> SysAdg {
        SysAdg::new(
            mesh(&MeshSpec::default()),
            SystemParams {
                tiles,
                ..SystemParams::default()
            },
        )
    }

    fn tile(lut: f64) -> Resources {
        Resources {
            lut,
            ff: lut * 1.1,
            bram: lut / 2_000.0,
            dsp: lut / 5_000.0,
        }
    }

    #[test]
    fn vcu118_grid_shape() {
        let g = ClockRegionGrid::vcu118();
        assert_eq!(g.regions(), 105);
        assert_eq!(g.slr_of(GridCell { col: 0, row: 0 }), 0);
        assert_eq!(g.slr_of(GridCell { col: 6, row: 4 }), 0);
        assert_eq!(g.slr_of(GridCell { col: 0, row: 5 }), 1);
        assert_eq!(g.slr_of(GridCell { col: 0, row: 14 }), 2);
        let cap = g.region_capacity();
        assert!((cap.lut * 105.0 - g.device.total.lut).abs() < 1e-6);
    }

    #[test]
    fn every_tile_gets_one_legal_cell() {
        let g = ClockRegionGrid::vcu118();
        for tiles in [1, 2, 4, 8, 16, 64] {
            let r = SimpleGridPlacer.place(&sys_with_tiles(tiles), &tile(60_000.0), &g);
            assert_eq!(r.cells.len(), tiles as usize);
            for c in &r.cells {
                assert!(g.contains(*c), "tile anchor {c:?} off the grid");
            }
            assert!(g.contains(r.hub));
        }
    }

    #[test]
    fn fitting_tiles_get_distinct_anchors_and_bounded_congestion() {
        let g = ClockRegionGrid::vcu118();
        let r = SimpleGridPlacer.place(&sys_with_tiles(4), &tile(60_000.0), &g);
        let mut anchors = r.cells.clone();
        anchors.sort();
        anchors.dedup();
        assert_eq!(anchors.len(), 4, "fitting tiles must not share anchors");
        assert!(r.congestion <= 1.0 + 1e-9, "congestion {}", r.congestion);
        assert!(r.fmax_mhz > 60.0 && r.fmax_mhz < 160.0);
    }

    #[test]
    fn oversubscription_degrades_to_the_clock_floor() {
        let g = ClockRegionGrid::vcu118();
        // 64 tiles of a third of the device each: hopeless over-packing.
        let r = SimpleGridPlacer.place(&sys_with_tiles(64), &tile(400_000.0), &g);
        assert!(r.congestion > 1.0);
        assert_eq!(r.fmax_mhz, FMAX_FLOOR_MHZ);
    }

    #[test]
    fn quad_tile_clock_lands_near_the_paper() {
        // The paper's quad-tile VCU118 design closes at 92.87 MHz (§VI-D);
        // a four-tile placement filling most of the device must land in
        // the same regime.
        let g = ClockRegionGrid::vcu118();
        let r = SimpleGridPlacer.place(&sys_with_tiles(4), &(XCVU9P.total * 0.22), &g);
        assert!(
            (80.0..=105.0).contains(&r.fmax_mhz),
            "quad-tile fmax {} MHz",
            r.fmax_mhz
        );
    }

    #[test]
    fn wirelength_is_invariant_under_tile_relabeling() {
        let g = ClockRegionGrid::vcu118();
        let r = SimpleGridPlacer.place(&sys_with_tiles(6), &tile(80_000.0), &g);
        let base = noc_wirelength(&r.cells, r.hub);
        // Any permutation of tile ids yields the same total wirelength.
        let mut relabeled = r.cells.clone();
        relabeled.reverse();
        assert_eq!(noc_wirelength(&relabeled, r.hub), base);
        relabeled.rotate_left(2);
        assert_eq!(noc_wirelength(&relabeled, r.hub), base);
    }

    #[test]
    fn placement_is_a_pure_function() {
        let g = ClockRegionGrid::vcu118();
        let a = SimpleGridPlacer.place(&sys_with_tiles(5), &tile(70_000.0), &g);
        let b = SimpleGridPlacer.place(&sys_with_tiles(5), &tile(70_000.0), &g);
        assert_eq!(a, b);
    }

    #[test]
    fn placer_kind_round_trips() {
        let k = PlacerKind::SimpleGrid;
        assert_eq!(PlacerKind::from_name(k.name()), Some(k));
        assert_eq!(PlacerKind::from_name("no_such_placer"), None);
        assert_eq!(k.placer().name(), "simple_grid");
    }
}
