//! Wall-clock models: synthesis / place & route hours, HLS and overlay
//! compile times, and reconfiguration times (Figures 15 and 17).
//!
//! These are the "clock" of the reproduction: real tool runtimes cannot
//! exist here, so every experiment that reports hours uses this model,
//! calibrated to the magnitudes the paper reports (AutoDSE totals of
//! 52–93 h per suite; >1 s FPGA reconfiguration; seconds-scale overlay
//! compilation).

use crate::resources::{FpgaDevice, Resources};

/// The time model. All methods are pure functions of design size.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeModel {
    /// Hours for a full-device synthesis at 100% LUT utilization.
    pub synth_hours_full: f64,
    /// Hours for full-device place & route at 100% utilization.
    pub pnr_hours_full: f64,
    /// Hours per AutoDSE candidate evaluation (Merlin + HLS estimate).
    pub hls_candidate_hours: f64,
    /// Seconds to flash a full FPGA bitstream (paper: >1 s).
    pub fpga_reconfig_seconds: f64,
    /// Bytes/cycle at which the accelerator's config network reloads
    /// bitstreams from the D-cache (§VI-B).
    pub config_reload_bytes_per_cycle: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            synth_hours_full: 4.5,
            pnr_hours_full: 5.5,
            hls_candidate_hours: 0.35,
            fpga_reconfig_seconds: 1.1,
            config_reload_bytes_per_cycle: 16.0,
        }
    }
}

impl TimeModel {
    /// Hours to synthesize a design of the given size on a device.
    pub fn synth_hours(&self, used: &Resources, device: &FpgaDevice) -> f64 {
        let u = device.utilization(used).limiting();
        0.4 + self.synth_hours_full * u
    }

    /// Hours for place & route; congestion above ~85% utilization grows
    /// the runtime sharply (multi-die SLR crossings, §VI-D).
    pub fn pnr_hours(&self, used: &Resources, device: &FpgaDevice) -> f64 {
        let u = device.utilization(used).limiting();
        let congestion = if u > 0.85 {
            1.0 + 4.0 * (u - 0.85)
        } else {
            1.0
        };
        0.5 + self.pnr_hours_full * u * congestion
    }

    /// Full HLS flow for one application design (synthesis + P&R): what a
    /// *new* application costs on the HLS path (Figure 17's compile-time
    /// numerator).
    pub fn hls_flow_hours(&self, used: &Resources, device: &FpgaDevice) -> f64 {
        self.synth_hours(used, device) + self.pnr_hours(used, device)
    }

    /// Seconds to compile one application for an existing overlay
    /// (paper: "Fast Compile ~seconds"; Figure 17 reports ~10^4 x faster
    /// than HLS). Scales mildly with DFG and fabric size.
    pub fn overlay_compile_seconds(&self, mdfg_nodes: usize, adg_nodes: usize) -> f64 {
        0.3 + 0.004 * mdfg_nodes as f64 * (adg_nodes as f64).sqrt()
    }

    /// Seconds to reconfigure a running overlay: the configuration
    /// bitstream streams from the D-cache over the config network (§VI-B).
    pub fn overlay_reconfig_seconds(&self, config_bytes: u64, fmax_mhz: f64) -> f64 {
        let cycles = config_bytes as f64 / self.config_reload_bytes_per_cycle;
        // configuration handshake overhead ~1k cycles
        (cycles + 1_000.0) / (fmax_mhz * 1e6)
    }

    /// Simulated seconds for one spatial-scheduling invocation during DSE
    /// (scheduling dominates DSE iteration cost, §V-A).
    pub fn schedule_seconds(&self, mdfg_nodes: usize, adg_nodes: usize) -> f64 {
        0.08 + 2.5e-4 * (mdfg_nodes * adg_nodes) as f64
    }

    /// Simulated seconds for a schedule *repair* (much cheaper than a full
    /// reschedule; only touched nodes are revisited).
    pub fn repair_seconds(&self, touched_nodes: usize, adg_nodes: usize) -> f64 {
        0.01 + 2.5e-5 * (touched_nodes * adg_nodes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::XCVU9P;

    fn used(frac: f64) -> Resources {
        Resources {
            lut: XCVU9P.total.lut * frac,
            ..Resources::ZERO
        }
    }

    #[test]
    fn synth_scales_with_size() {
        let t = TimeModel::default();
        assert!(t.synth_hours(&used(0.9), &XCVU9P) > t.synth_hours(&used(0.2), &XCVU9P));
    }

    #[test]
    fn congestion_penalty_above_85pct() {
        let t = TimeModel::default();
        let a = t.pnr_hours(&used(0.84), &XCVU9P);
        let b = t.pnr_hours(&used(0.95), &XCVU9P);
        assert!(b > a * 1.2);
    }

    #[test]
    fn compile_speedup_is_about_1e4() {
        // Figure 17: overlay compilation ~10^4 x faster than the HLS flow.
        let t = TimeModel::default();
        let hls_s = t.hls_flow_hours(&used(0.3), &XCVU9P) * 3600.0;
        let ovl_s = t.overlay_compile_seconds(40, 80);
        let speedup = hls_s / ovl_s;
        assert!(
            speedup > 2e3 && speedup < 6e4,
            "compile speedup {speedup:.0}"
        );
    }

    #[test]
    fn reconfig_speedup_is_tens_of_thousands() {
        // Figure 17: mean 54000x faster reconfiguration.
        let t = TimeModel::default();
        let ovl = t.overlay_reconfig_seconds(20_000, 92.87);
        let speedup = t.fpga_reconfig_seconds / ovl;
        assert!(
            speedup > 1e4 && speedup < 2e5,
            "reconfig speedup {speedup:.0}"
        );
    }

    #[test]
    fn repair_cheaper_than_reschedule() {
        let t = TimeModel::default();
        assert!(t.repair_seconds(5, 100) < t.schedule_seconds(40, 100));
    }
}
