//! A from-scratch 3-layer multi-layer perceptron, replicating the paper's
//! component-level FPGA resource model (§V-D): trained per component class
//! on synthesis-oracle samples with an 80/10/10 train/validation/test
//! split, predicting `[lut, ff, bram, dsp]` from component features.
//!
//! ReLU hidden activations, linear output, Adam optimizer, z-score input
//! normalization and max-scaling of outputs.

use overgen_telemetry::Rng;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Minibatch size.
    pub batch: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            lr: 3e-3,
            batch: 32,
            seed: 7,
        }
    }
}

/// Report of a training run (relative errors are mean |err|/mean(|y|)).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainReport {
    /// Relative error on the training split.
    pub train_rel_err: f64,
    /// Relative error on the validation split.
    pub val_rel_err: f64,
    /// Relative error on the held-out test split.
    pub test_rel_err: f64,
    /// Samples used.
    pub samples: usize,
}

/// A dense 3-layer MLP: `in -> h1 (ReLU) -> h2 (ReLU) -> out (linear)`.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mlp {
    sizes: [usize; 4],
    // weights\[l\] has shape (sizes\[l+1\], sizes\[l\]), row major.
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
    in_mean: Vec<f64>,
    in_std: Vec<f64>,
    out_scale: Vec<f64>,
}

impl Mlp {
    /// Create with random (He) initialization.
    pub fn new(inputs: usize, h1: usize, h2: usize, outputs: usize, seed: u64) -> Self {
        let sizes = [inputs, h1, h2, outputs];
        let mut rng = Rng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for l in 0..3 {
            let (n_in, n_out) = (sizes[l], sizes[l + 1]);
            let scale = (2.0 / n_in as f64).sqrt();
            weights.push(
                (0..n_in * n_out)
                    .map(|_| (rng.gen_f64() * 2.0 - 1.0) * scale)
                    .collect(),
            );
            biases.push(vec![0.0; n_out]);
        }
        Mlp {
            sizes,
            weights,
            biases,
            in_mean: vec![0.0; inputs],
            in_std: vec![1.0; inputs],
            out_scale: vec![1.0; outputs],
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.sizes[0]
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.sizes[3]
    }

    fn normalize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(i, v)| (v - self.in_mean[i]) / self.in_std[i])
            .collect()
    }

    /// Forward pass returning denormalized outputs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input size.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.sizes[0], "input size mismatch");
        let (_, _, out) = self.forward_norm(&self.normalize(x));
        out.iter()
            .zip(&self.out_scale)
            .map(|(v, s)| v * s)
            .collect()
    }

    /// Forward pass on normalized inputs, returning all activations.
    fn forward_norm(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h1 = self.layer(0, x, true);
        let h2 = self.layer(1, &h1, true);
        let out = self.layer(2, &h2, false);
        (h1, h2, out)
    }

    fn layer(&self, l: usize, x: &[f64], relu: bool) -> Vec<f64> {
        let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
        let w = &self.weights[l];
        let b = &self.biases[l];
        (0..n_out)
            .map(|o| {
                let mut acc = b[o];
                let row = &w[o * n_in..(o + 1) * n_in];
                for (wi, xi) in row.iter().zip(x) {
                    acc += wi * xi;
                }
                if relu {
                    acc.max(0.0)
                } else {
                    acc
                }
            })
            .collect()
    }

    /// Train on `(xs, ys)` with an 80/10/10 train/val/test split
    /// (paper §V-D). Returns the error report.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length or are too small to split.
    pub fn train(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], cfg: &TrainConfig) -> TrainReport {
        assert_eq!(xs.len(), ys.len());
        assert!(xs.len() >= 10, "need at least 10 samples");
        let n = xs.len();
        let mut rng = Rng::seed_from_u64(cfg.seed);

        // Shuffle indices deterministically, then split 80/10/10.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_train = n * 8 / 10;
        let n_val = n / 10;
        let (train_idx, rest) = idx.split_at(n_train);
        let (val_idx, test_idx) = rest.split_at(n_val);

        // Fit input normalization and output scale on the training split.
        let d = self.sizes[0];
        let o = self.sizes[3];
        self.in_mean = vec![0.0; d];
        self.in_std = vec![0.0; d];
        for &i in train_idx {
            for (k, v) in xs[i].iter().enumerate() {
                self.in_mean[k] += v;
            }
        }
        for m in &mut self.in_mean {
            *m /= train_idx.len() as f64;
        }
        for &i in train_idx {
            for (k, v) in xs[i].iter().enumerate() {
                self.in_std[k] += (v - self.in_mean[k]).powi(2);
            }
        }
        for s in &mut self.in_std {
            *s = (*s / train_idx.len() as f64).sqrt().max(1e-9);
        }
        self.out_scale = vec![1e-9; o];
        for &i in train_idx {
            for (k, v) in ys[i].iter().enumerate() {
                self.out_scale[k] = self.out_scale[k].max(v.abs());
            }
        }

        // Adam state.
        let mut mw: Vec<Vec<f64>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut vw = mw.clone();
        let mut mb: Vec<Vec<f64>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        let mut vb = mb.clone();
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut t = 0usize;

        let mut order: Vec<usize> = train_idx.to_vec();
        for _epoch in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(cfg.batch) {
                t += 1;
                // Accumulate gradients over the minibatch.
                let mut gw: Vec<Vec<f64>> =
                    self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
                let mut gb: Vec<Vec<f64>> =
                    self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
                for &i in chunk {
                    let x = self.normalize(&xs[i]);
                    let y: Vec<f64> = ys[i]
                        .iter()
                        .zip(&self.out_scale)
                        .map(|(v, s)| v / s)
                        .collect();
                    let (h1, h2, out) = self.forward_norm(&x);
                    // dL/dout for MSE
                    let mut delta: Vec<f64> =
                        out.iter().zip(&y).map(|(o, y)| 2.0 * (o - y)).collect();
                    // layer 2 (h2 -> out)
                    self.accumulate(2, &h2, &delta, &mut gw, &mut gb);
                    delta = self.backprop(2, &delta, &h2);
                    // layer 1 (h1 -> h2)
                    self.accumulate(1, &h1, &delta, &mut gw, &mut gb);
                    delta = self.backprop(1, &delta, &h1);
                    // layer 0 (x -> h1)
                    self.accumulate(0, &x, &delta, &mut gw, &mut gb);
                }
                let scale = 1.0 / chunk.len() as f64;
                let lr_t = cfg.lr * (1.0 - b2.powi(t as i32)).sqrt() / (1.0 - b1.powi(t as i32));
                for l in 0..3 {
                    for k in 0..self.weights[l].len() {
                        let g = gw[l][k] * scale;
                        mw[l][k] = b1 * mw[l][k] + (1.0 - b1) * g;
                        vw[l][k] = b2 * vw[l][k] + (1.0 - b2) * g * g;
                        self.weights[l][k] -= lr_t * mw[l][k] / (vw[l][k].sqrt() + eps);
                    }
                    for k in 0..self.biases[l].len() {
                        let g = gb[l][k] * scale;
                        mb[l][k] = b1 * mb[l][k] + (1.0 - b1) * g;
                        vb[l][k] = b2 * vb[l][k] + (1.0 - b2) * g * g;
                        self.biases[l][k] -= lr_t * mb[l][k] / (vb[l][k].sqrt() + eps);
                    }
                }
            }
        }

        TrainReport {
            train_rel_err: self.relative_error(xs, ys, train_idx),
            val_rel_err: self.relative_error(xs, ys, val_idx),
            test_rel_err: self.relative_error(xs, ys, test_idx),
            samples: n,
        }
    }

    /// Gradient accumulation for layer `l` given its input activations and
    /// the output-side delta.
    fn accumulate(
        &self,
        l: usize,
        input: &[f64],
        delta: &[f64],
        gw: &mut [Vec<f64>],
        gb: &mut [Vec<f64>],
    ) {
        let n_in = self.sizes[l];
        for (o, d) in delta.iter().enumerate() {
            gb[l][o] += d;
            let row = &mut gw[l][o * n_in..(o + 1) * n_in];
            for (k, x) in input.iter().enumerate() {
                row[k] += d * x;
            }
        }
    }

    /// Propagate delta through layer `l` onto its (ReLU) input.
    fn backprop(&self, l: usize, delta: &[f64], input_act: &[f64]) -> Vec<f64> {
        let n_in = self.sizes[l];
        let w = &self.weights[l];
        (0..n_in)
            .map(|i| {
                if input_act[i] <= 0.0 {
                    0.0 // ReLU gate
                } else {
                    delta
                        .iter()
                        .enumerate()
                        .map(|(o, d)| d * w[o * n_in + i])
                        .sum()
                }
            })
            .collect()
    }

    /// Mean relative error over an index subset.
    fn relative_error(&self, xs: &[Vec<f64>], ys: &[Vec<f64>], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mut err = 0.0;
        let mut mag = 0.0;
        for &i in idx {
            let p = self.forward(&xs[i]);
            for (pi, yi) in p.iter().zip(&ys[i]) {
                err += (pi - yi).abs();
                mag += yi.abs();
            }
        }
        err / mag.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth synthetic regression target.
    fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..4.0);
            let b: f64 = rng.gen_range(0.0..4.0);
            xs.push(vec![a, b]);
            ys.push(vec![100.0 + 50.0 * a + 20.0 * a * b, 10.0 * b]);
        }
        (xs, ys)
    }

    #[test]
    fn learns_a_smooth_function() {
        let (xs, ys) = dataset(800);
        let mut mlp = Mlp::new(2, 16, 8, 2, 1);
        let report = mlp.train(&xs, &ys, &TrainConfig::default());
        assert!(
            report.test_rel_err < 0.08,
            "test error too high: {}",
            report.test_rel_err
        );
        // validation close to test (no gross overfit)
        assert!(report.val_rel_err < 0.1);
    }

    #[test]
    fn forward_is_deterministic() {
        let (xs, ys) = dataset(100);
        let mut mlp = Mlp::new(2, 8, 4, 2, 1);
        mlp.train(
            &xs,
            &ys,
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let a = mlp.forward(&xs[0]);
        let b = mlp.forward(&xs[0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let mlp = Mlp::new(3, 4, 4, 1, 0);
        let _ = mlp.forward(&[1.0]);
    }

    #[test]
    fn shapes() {
        let mlp = Mlp::new(10, 24, 16, 4, 0);
        assert_eq!(mlp.inputs(), 10);
        assert_eq!(mlp.outputs(), 4);
        assert_eq!(mlp.forward(&[0.0; 10]).len(), 4);
    }
}
