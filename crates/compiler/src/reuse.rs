//! Reuse analysis (paper §IV-B): footprint, traffic, stationary and
//! recurrent reuse of each array reference.

use overgen_ir::{ArrayRef, IndexExpr, Kernel};
use overgen_mdfg::{MemPref, RecurrenceInfo, ReuseInfo, StreamPattern};

/// Full analysis result for one array reference in a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RefAnalysis {
    /// Reuse annotations for the stream node.
    pub reuse: ReuseInfo,
    /// Pattern classification.
    pub pattern: StreamPattern,
    /// Pattern dimensionality (distinct loop variables involved, capped 3).
    pub dims: u8,
    /// Stride along the innermost loop (0 = stationary, 1 = linear).
    pub innermost_stride: i64,
}

/// Analyse one reference of `kernel` (read or write side).
///
/// Implements the paper's three reuse patterns:
///
/// - **General**: `traffic = Π trip counts x element size`;
///   `footprint = range(index expr) x element size` (indirect accesses use
///   the whole target array, assuming uniform distribution).
/// - **Stationary**: product of trip counts of the innermost consecutive
///   loops whose variables do not appear in the index.
/// - **Recurrent**: detected by the caller for accumulations; attached via
///   [`recurrence_of`].
pub fn analyze_ref(kernel: &Kernel, r: &ArrayRef, is_write: bool) -> RefAnalysis {
    let nest = kernel.nest();
    let elem_bytes = kernel.array(&r.array).map(|a| a.dtype.bytes()).unwrap_or(8) as f64;

    let traffic = nest.total_iterations() * elem_bytes;

    let (footprint, pattern) = match &r.index {
        IndexExpr::Affine(e) => {
            let (lo, hi) = e.value_range(&|v| nest.extent(v));
            let span = (hi - lo + 1).max(1) as f64;
            let innermost_var = nest.innermost().map(|l| l.var.as_str()).unwrap_or("");
            let stride = e.stride_of(innermost_var);
            let pattern = if stride.abs() > 1 {
                StreamPattern::Strided
            } else {
                StreamPattern::Linear
            };
            (span * elem_bytes, pattern)
        }
        IndexExpr::Indirect { .. } => {
            // Uniform-distribution assumption: footprint is the whole array.
            let arr_bytes = kernel.array(&r.array).map(|a| a.size_bytes()).unwrap_or(0) as f64;
            (arr_bytes.max(elem_bytes), StreamPattern::Indirect)
        }
    };

    // Stationary reuse: innermost consecutive loops absent from the index.
    let mut stationary = 1.0;
    if !r.index.is_indirect() {
        let e = r.index.affine();
        for l in nest.loops().iter().rev() {
            if e.involves(&l.var) {
                break;
            }
            stationary *= l.trip.expected();
        }
    }
    // A write stream cannot be stationary: every firing produces data.
    if is_write {
        stationary = 1.0;
    }

    let dims = r.index.affine().num_vars().clamp(1, 3) as u8;

    let innermost_var = nest.innermost().map(|l| l.var.as_str()).unwrap_or("");
    let innermost_stride = r.index.affine().stride_of(innermost_var);

    RefAnalysis {
        reuse: ReuseInfo {
            traffic_bytes: traffic,
            footprint_bytes: footprint,
            stationary,
            recurrent: None,
        },
        pattern,
        dims,
        innermost_stride,
    }
}

/// Recurrent-reuse parameters of an accumulation `dst[e] += ...`
/// (paper §IV-B): walking outward from the innermost loop, involved loops
/// contribute *concurrent instances* until the first uninvolved loop, which
/// is the recurrence loop and contributes the *depth*.
///
/// Returns `None` when every loop is involved (no recurrence dimension).
pub fn recurrence_of(kernel: &Kernel, r: &ArrayRef) -> Option<RecurrenceInfo> {
    let e = match &r.index {
        IndexExpr::Affine(e) => e,
        IndexExpr::Indirect { .. } => return None,
    };
    let nest = kernel.nest();
    let mut concurrent = 1u64;
    for l in nest.loops().iter().rev() {
        if e.involves(&l.var) {
            concurrent = concurrent.saturating_mul(l.trip.max());
        } else {
            return Some(RecurrenceInfo {
                concurrent,
                depth: l.trip.max(),
            });
        }
    }
    None
}

/// Allocation size of an array when placed in a scratchpad: its footprint
/// plus double-buffering space (§IV-A).
pub fn array_footprint_bytes(kernel: &Kernel, array: &str) -> u64 {
    // Footprint is the max over all references of that array.
    let mut fp = 0f64;
    for r in kernel.reads().iter().chain(kernel.writes().iter()) {
        if r.array == array {
            fp = fp.max(analyze_ref(kernel, r, false).reuse.footprint_bytes);
        }
        if let IndexExpr::Indirect { index_array, .. } = &r.index {
            if index_array == array {
                fp = fp.max(
                    kernel
                        .array(array)
                        .map(|a| a.size_bytes() as f64)
                        .unwrap_or(0.0),
                );
            }
        }
    }
    fp as u64
}

/// Placement preference of an array given its best scratchpad benefit over
/// all its read streams.
pub fn placement_pref(benefit: f64, footprint_bytes: u64, spad_cap_bytes: u64) -> MemPref {
    if footprint_bytes == 0 || footprint_bytes > spad_cap_bytes {
        MemPref::PreferDram
    } else if benefit >= 8.0 {
        MemPref::PreferSpad
    } else if benefit > 1.5 {
        MemPref::Either
    } else {
        MemPref::PreferDram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    /// The paper's Figure 5 tiled FIR.
    fn fir() -> Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::I32)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn figure5_a_traffic_and_footprint() {
        let k = fir();
        let reads = k.reads();
        let a_ref = reads.iter().find(|r| r.array == "a").unwrap();
        let ra = analyze_ref(&k, a_ref, false);
        // Traf.: 32*128*4 iterations x 4 bytes
        assert_eq!(ra.reuse.traffic_bytes, (4 * 128 * 32) as f64 * 4.0);
        // Foot.: 255 elements
        assert_eq!(ra.reuse.footprint_bytes, 255.0 * 4.0);
        // a is touched every iteration: no stationary reuse
        assert_eq!(ra.reuse.stationary, 1.0);
        assert_eq!(ra.pattern, StreamPattern::Linear);
    }

    #[test]
    fn figure5_b_stationary() {
        let k = fir();
        let reads = k.reads();
        let b_ref = reads.iter().find(|r| r.array == "b").unwrap();
        let rb = analyze_ref(&k, b_ref, false);
        // Port Reuse: 32 (innermost ii absent)
        assert_eq!(rb.reuse.stationary, 32.0);
        assert_eq!(rb.reuse.footprint_bytes, 128.0 * 4.0);
        assert_eq!(rb.innermost_stride, 0);
    }

    #[test]
    fn figure5_c_recurrence() {
        let k = fir();
        let c_ref = k.writes()[0].clone();
        let rec = recurrence_of(&k, &c_ref).unwrap();
        // 32 concurrent instances (ii), recurring along j (depth 128)
        assert_eq!(rec.concurrent, 32);
        assert_eq!(rec.depth, 128);
    }

    #[test]
    fn no_recurrence_when_all_loops_involved() {
        let k = KernelBuilder::new("copy", Suite::Dsp, DataType::I64)
            .array_input("a", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .accum("c", expr::idx("i"), expr::load("a", expr::idx("i")))
            .build()
            .unwrap();
        assert!(recurrence_of(&k, k.writes()[0]).is_none());
    }

    #[test]
    fn indirect_footprint_is_whole_array() {
        let k = KernelBuilder::new("gather", Suite::MachSuite, DataType::F64)
            .array_input("val", 2048)
            .array_input("col", 512)
            .array_output("y", 512)
            .loop_const("i", 512)
            .accum(
                "y",
                expr::idx("i"),
                expr::load_indirect("val", "col", expr::idx("i")),
            )
            .build()
            .unwrap();
        let reads = k.reads();
        let v = reads.iter().find(|r| r.array == "val").unwrap();
        let rv = analyze_ref(&k, v, false);
        assert_eq!(rv.pattern, StreamPattern::Indirect);
        assert_eq!(rv.reuse.footprint_bytes, 2048.0 * 8.0);
    }

    #[test]
    fn strided_pattern_detected() {
        let k = KernelBuilder::new("strided", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 256)
            .loop_const("i", 256)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx_scaled("i", 4)),
            )
            .build()
            .unwrap();
        let reads = k.reads();
        let ra = analyze_ref(&k, reads[0], false);
        assert_eq!(ra.pattern, StreamPattern::Strided);
        assert_eq!(ra.innermost_stride, 4);
    }

    #[test]
    fn writes_never_stationary() {
        let k = fir();
        let c_ref = k.writes()[0].clone();
        let rc = analyze_ref(&k, &c_ref, true);
        assert_eq!(rc.reuse.stationary, 1.0);
    }

    #[test]
    fn placement_rules() {
        assert_eq!(placement_pref(64.0, 1024, 32 * 1024), MemPref::PreferSpad);
        assert_eq!(
            placement_pref(64.0, 64 * 1024, 32 * 1024),
            MemPref::PreferDram
        );
        assert_eq!(placement_pref(1.0, 1024, 32 * 1024), MemPref::PreferDram);
        assert_eq!(placement_pref(2.0, 1024, 32 * 1024), MemPref::Either);
    }

    #[test]
    fn footprint_helper_takes_max() {
        let k = fir();
        assert_eq!(array_footprint_bytes(&k, "a"), 255 * 4);
        assert_eq!(array_footprint_bytes(&k, "b"), 128 * 4);
        assert_eq!(array_footprint_bytes(&k, "c"), 128 * 4);
    }
}
