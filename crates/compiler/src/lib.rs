//! The decoupled-spatial compiler of the OverGen reproduction.
//!
//! Mirrors the paper's §II-B/§IV-B compiler responsibilities:
//!
//! 1. **Slicing**: the innermost loop body is split into memory-access
//!    streams and computational instructions (the generic transformation).
//! 2. **Reuse analysis**: every stream is annotated with data traffic,
//!    footprint, stationary reuse, and recurrent reuse; every referenced
//!    array becomes an array node with a placement preference.
//! 3. **Variant generation**: instead of recompiling during DSE, the
//!    compiler pre-generates a set of mDFGs per region using different
//!    transformations (unroll degrees, recurrence vs. memory round-trip
//!    accumulation) — the DSE later picks whichever schedules best
//!    (paper §III-A, "Overlay Generation").
//!
//! # Example
//!
//! ```
//! use overgen_ir::{KernelBuilder, DataType, Suite, expr};
//! use overgen_compiler::{compile_variants, CompileOptions};
//!
//! let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
//!     .array_input("a", 1024).array_input("b", 1024).array_output("c", 1024)
//!     .loop_const("i", 1024)
//!     .assign("c", expr::idx("i"),
//!             expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")))
//!     .build().unwrap();
//! let variants = compile_variants(&k, &CompileOptions::default())?;
//! assert!(!variants.is_empty());
//! // variant 0 is the most aggressive (widest) one
//! assert!(variants[0].unroll() >= variants.last().unwrap().unroll());
//! # Ok::<(), overgen_compiler::CompileError>(())
//! ```

mod lower;
mod reuse;
mod variants;

pub use lower::{lower, LowerChoices};
pub use reuse::{analyze_ref, array_footprint_bytes, RefAnalysis};
pub use variants::{compile_variants, CompileOptions};

use std::fmt;

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The kernel region cannot be decoupled (no `config` pragma).
    NotConfigured,
    /// The unroll degree does not divide into the innermost trip count.
    BadUnroll {
        /// Requested degree.
        unroll: u32,
    },
    /// Internal graph construction failed.
    Graph(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotConfigured => {
                write!(f, "kernel lacks `#pragma dsa config`; nothing to offload")
            }
            CompileError::BadUnroll { unroll } => {
                write!(f, "unroll degree {unroll} incompatible with innermost loop")
            }
            CompileError::Graph(m) => write!(f, "mDFG construction failed: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}
