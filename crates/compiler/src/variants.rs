//! Variant pre-generation (paper §V-A): instead of recompiling during DSE,
//! the compiler emits a set of mDFGs per region using different
//! transformations; the DSE keeps them all and uses whichever schedules.

use overgen_ir::Kernel;
use overgen_mdfg::Mdfg;
use overgen_telemetry::{event, span};

use crate::lower::{lower, LowerChoices};
use crate::CompileError;

/// Options controlling variant generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Maximum innermost unroll degree to attempt (powers of two down to 1
    /// are generated).
    pub max_unroll: u32,
    /// Also emit non-recurrence variants of accumulating kernels (the
    /// "use a recurrence stream instead of accumulation" toggle of §V-A).
    pub include_no_recurrence: bool,
    /// Scratchpad capacity assumed when computing placement preferences.
    pub spad_cap_bytes: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            max_unroll: 16,
            include_no_recurrence: true,
            spad_cap_bytes: 256 * 1024,
        }
    }
}

/// Compile a kernel into its pre-generated mDFG variants, most aggressive
/// (widest) first. Variant indices are assigned in order.
///
/// # Errors
///
/// Propagates lowering failures; succeeds with at least the unroll-1
/// variant for any valid kernel.
pub fn compile_variants(kernel: &Kernel, opts: &CompileOptions) -> Result<Vec<Mdfg>, CompileError> {
    let _span = span!(
        "compiler.variants",
        kernel = kernel.name(),
        max_unroll = opts.max_unroll,
    );
    let innermost_trip = kernel.nest().innermost().map(|l| l.trip.max()).unwrap_or(1);
    let mut degrees = Vec::new();
    let mut u = opts.max_unroll.max(1);
    // Round down to a power of two within the trip count.
    while u as u64 > innermost_trip {
        u /= 2;
    }
    let mut p = 1u32;
    while p <= u {
        degrees.push(p);
        p *= 2;
    }
    degrees.reverse(); // widest first

    let has_accum = kernel.body().iter().any(|s| s.accumulate);

    let mut out = Vec::new();
    let mut variant = 0u32;
    for &deg in &degrees {
        out.push(lower(
            kernel,
            variant,
            &LowerChoices {
                unroll: deg,
                use_recurrence: true,
                spad_cap_bytes: opts.spad_cap_bytes,
            },
        )?);
        variant += 1;
        if has_accum && opts.include_no_recurrence {
            out.push(lower(
                kernel,
                variant,
                &LowerChoices {
                    unroll: deg,
                    use_recurrence: false,
                    spad_cap_bytes: opts.spad_cap_bytes,
                },
            )?);
            variant += 1;
        }
    }
    if let Some(c) = overgen_telemetry::current() {
        c.registry()
            .counter("compiler.variants")
            .add(out.len() as u64);
    }
    event!(
        "compiler.variants",
        kernel = kernel.name(),
        count = out.len(),
        widest_unroll = degrees.first().copied().unwrap_or(1),
        has_accum = has_accum,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn vecadd(n: u64) -> Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn widest_first_and_all_powers() {
        let vs = compile_variants(&vecadd(1024), &CompileOptions::default()).unwrap();
        let unrolls: Vec<u32> = vs.iter().map(|v| v.unroll()).collect();
        assert_eq!(unrolls, vec![16, 8, 4, 2, 1]);
    }

    #[test]
    fn unroll_capped_by_trip_count() {
        let vs = compile_variants(&vecadd(4), &CompileOptions::default()).unwrap();
        assert_eq!(vs[0].unroll(), 4);
    }

    #[test]
    fn accumulation_doubles_variants() {
        let k = KernelBuilder::new("dot", Suite::Dsp, DataType::F64)
            .array_input("a", 64)
            .array_input("b", 64)
            .array_output("c", 1)
            .loop_const("i", 64)
            .accum(
                "c",
                expr::idx_const(0),
                expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let with = compile_variants(&k, &CompileOptions::default()).unwrap();
        let without = compile_variants(
            &k,
            &CompileOptions {
                include_no_recurrence: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(with.len(), 2 * without.len());
    }

    #[test]
    fn variant_indices_are_sequential() {
        let vs = compile_variants(&vecadd(64), &CompileOptions::default()).unwrap();
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(v.variant() as usize, i);
        }
    }

    #[test]
    fn all_variants_validate() {
        for v in compile_variants(&vecadd(256), &CompileOptions::default()).unwrap() {
            v.validate().unwrap();
        }
    }
}
