//! Lowering: kernel IR -> one mDFG, for a fixed set of transformation
//! choices (unroll degree, recurrence usage).

use std::collections::BTreeMap;

use overgen_ir::{ArrayRef, DataType, Expr, IndexExpr, Kernel, Op};
use overgen_mdfg::{
    ArrayNode, InstNode, Mdfg, MdfgNode, MdfgNodeId, MemPref, ReuseInfo, StreamNode,
};

use crate::reuse::{analyze_ref, array_footprint_bytes, placement_pref, recurrence_of};
use crate::CompileError;

/// Transformation choices for one lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerChoices {
    /// Innermost-loop unroll degree (vectorization width in elements).
    pub unroll: u32,
    /// Map accumulations to the recurrence engine (vs. a memory
    /// round-trip) when legal.
    pub use_recurrence: bool,
    /// Scratchpad capacity assumed for placement preferences.
    pub spad_cap_bytes: u64,
}

impl Default for LowerChoices {
    fn default() -> Self {
        LowerChoices {
            unroll: 1,
            use_recurrence: true,
            spad_cap_bytes: 256 * 1024,
        }
    }
}

/// Key identifying a unique stream: array + rendered index + direction.
fn ref_key(r: &ArrayRef, write: bool) -> String {
    format!("{}{}{}", if write { "w:" } else { "r:" }, r.array, r.index)
}

struct LowerCtx<'k> {
    kernel: &'k Kernel,
    g: Mdfg,
    unroll: u32,
    innermost_var: String,
    arrays: BTreeMap<String, MdfgNodeId>,
    read_streams: BTreeMap<String, MdfgNodeId>,
    write_streams: BTreeMap<String, MdfgNodeId>,
    /// Read clustering: maps (array, variable-part, constant) to a cluster
    /// descriptor so that window/coefficient loads share one stream.
    clusters: BTreeMap<(String, String, i64), ClusterInfo>,
}

/// One cluster of same-array reads whose indices differ only by nearby
/// constant offsets: a sliding window (stencils) or a coefficient vector.
/// The whole cluster is served by a single stream/port (cf. Table II's low
/// `#ivp` for the stencil kernels).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClusterInfo {
    /// Stream key shared by the cluster.
    key: String,
    /// Smallest constant offset in the cluster (the representative ref).
    min_const: i64,
    /// Number of distinct elements the window spans.
    span: i64,
}

/// Maximum gap between constant offsets merged into one window cluster.
const CLUSTER_GAP: i64 = 8;

/// Render the variable part of an affine expression (terms only).
fn var_part(e: &overgen_ir::AffineExpr) -> String {
    e.terms()
        .map(|(v, c)| format!("{c}*{v}"))
        .collect::<Vec<_>>()
        .join("+")
}

/// Pre-compute read clusters for a kernel's body.
fn build_clusters(kernel: &Kernel) -> BTreeMap<(String, String, i64), ClusterInfo> {
    use overgen_ir::IndexExpr as Ix;
    // (array, varpart) -> sorted constants
    let mut groups: BTreeMap<(String, String), Vec<i64>> = BTreeMap::new();
    for r in kernel.reads() {
        if let Ix::Affine(e) = &r.index {
            groups
                .entry((r.array.clone(), var_part(e)))
                .or_default()
                .push(e.constant_term());
        }
    }
    let mut out = BTreeMap::new();
    for ((array, vp), mut consts) in groups {
        consts.sort_unstable();
        consts.dedup();
        let mut cluster: Vec<i64> = Vec::new();
        let mut cluster_idx = 0usize;
        let flush = |cluster: &mut Vec<i64>,
                     cluster_idx: &mut usize,
                     out: &mut BTreeMap<(String, String, i64), ClusterInfo>| {
            if cluster.is_empty() {
                return;
            }
            let min_c = *cluster.first().expect("non-empty");
            let max_c = *cluster.last().expect("non-empty");
            let info = ClusterInfo {
                key: format!("r:{array}:{vp}:#{cluster_idx}"),
                min_const: min_c,
                span: max_c - min_c + 1,
            };
            for c in cluster.drain(..) {
                out.insert((array.clone(), vp.clone(), c), info.clone());
            }
            *cluster_idx += 1;
        };
        for c in consts {
            if let Some(&last) = cluster.last() {
                if c - last > CLUSTER_GAP {
                    flush(&mut cluster, &mut cluster_idx, &mut out);
                }
            }
            cluster.push(c);
        }
        flush(&mut cluster, &mut cluster_idx, &mut out);
    }
    out
}

impl<'k> LowerCtx<'k> {
    fn err(e: impl std::fmt::Display) -> CompileError {
        CompileError::Graph(e.to_string())
    }

    fn elem_bytes(&self, name: &str) -> u64 {
        self.kernel
            .array(name)
            .map(|a| a.dtype.bytes())
            .unwrap_or(8)
    }

    fn ensure_array(&mut self, name: &str) -> MdfgNodeId {
        if let Some(id) = self.arrays.get(name) {
            return *id;
        }
        let fp = array_footprint_bytes(self.kernel, name);
        let id = self
            .g
            .add_node(MdfgNode::Array(ArrayNode::new(name, fp, MemPref::Either)));
        self.arrays.insert(name.to_string(), id);
        id
    }

    /// Bytes a stream of `r` moves per DFG firing.
    fn firing_bytes(&self, r: &ArrayRef) -> u64 {
        let eb = self.elem_bytes(&r.array);
        let involves_inner =
            r.index.affine().involves(&self.innermost_var) || r.index.is_indirect();
        if involves_inner {
            u64::from(self.unroll) * eb
        } else {
            eb
        }
    }

    fn make_read(&mut self, r: &ArrayRef) -> Result<MdfgNodeId, CompileError> {
        // Affine reads resolve through their window/coefficient cluster:
        // the cluster's representative ref defines the stream.
        let (key, rep, window_span) = match &r.index {
            IndexExpr::Affine(e) => {
                match self
                    .clusters
                    .get(&(r.array.clone(), var_part(e), e.constant_term()))
                    .cloned()
                {
                    Some(c) => {
                        let rep_e = e.clone().offset(c.min_const - e.constant_term());
                        (c.key, ArrayRef::affine(r.array.clone(), rep_e), c.span)
                    }
                    None => (ref_key(r, false), r.clone(), 1),
                }
            }
            IndexExpr::Indirect { .. } => (ref_key(r, false), r.clone(), 1),
        };
        if let Some(id) = self.read_streams.get(&key) {
            return Ok(*id);
        }
        let r = &rep;
        let an = analyze_ref(self.kernel, r, false);
        let extra = (window_span - 1).max(0) as u64 * self.elem_bytes(&r.array);
        let mut stream = StreamNode::read(r.array.clone(), self.firing_bytes(r) + extra, an.reuse)
            .with_pattern(an.pattern, an.dims);
        if self.kernel.nest().has_variable_trip() {
            stream = stream.with_variable_tc();
        }
        // Broadcast-pathology kernels replicate indirect gather targets to
        // every tile (the ellpack outlier).
        if self.kernel.traits().wants_broadcast && r.index.is_indirect() {
            stream = stream.with_broadcast();
        }
        let sid = self.g.add_node(MdfgNode::InputStream(stream));
        let aid = self.ensure_array(&r.array);
        self.g.add_edge(aid, sid).map_err(Self::err)?;
        // Indirect: the index array is itself read by a linear stream.
        if let IndexExpr::Indirect { index_array, .. } = &r.index {
            let idx_ref = ArrayRef::affine(index_array.clone(), r.index.affine().clone());
            let ikey = ref_key(&idx_ref, false);
            if !self.read_streams.contains_key(&ikey) {
                let ian = analyze_ref(self.kernel, &idx_ref, false);
                let istream =
                    StreamNode::read(index_array.clone(), self.firing_bytes(&idx_ref), ian.reuse)
                        .with_pattern(ian.pattern, ian.dims);
                let isid = self.g.add_node(MdfgNode::InputStream(istream));
                let iaid = self.ensure_array(index_array);
                self.g.add_edge(iaid, isid).map_err(Self::err)?;
                // The index stream feeds the target stream's indirect
                // request generator.
                self.g.add_edge(isid, sid).map_err(Self::err)?;
                self.read_streams.insert(ikey, isid);
            }
        }
        self.read_streams.insert(key, sid);
        Ok(sid)
    }

    /// Build instruction nodes for an expression tree. Returns the
    /// producing node id, or `None` for constant subtrees.
    fn build_expr(
        &mut self,
        e: &Expr,
        dtype: DataType,
        lanes: u32,
    ) -> Result<Option<MdfgNodeId>, CompileError> {
        match e {
            Expr::Const(_) => Ok(None),
            Expr::Load(r) => Ok(Some(self.make_read(r)?)),
            Expr::Unary { op, arg } => {
                let a = self.build_expr(arg, dtype, lanes)?;
                let node = self
                    .g
                    .add_node(MdfgNode::Inst(InstNode::new(*op, dtype, lanes)));
                if let Some(a) = a {
                    self.g.add_edge(a, node).map_err(Self::err)?;
                }
                Ok(Some(node))
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.build_expr(lhs, dtype, lanes)?;
                let r = self.build_expr(rhs, dtype, lanes)?;
                if l.is_none() && r.is_none() {
                    return Ok(None);
                }
                let node = self
                    .g
                    .add_node(MdfgNode::Inst(InstNode::new(*op, dtype, lanes)));
                for src in [l, r].into_iter().flatten() {
                    self.g.add_edge(src, node).map_err(Self::err)?;
                }
                Ok(Some(node))
            }
        }
    }
}

/// Lower a kernel into a memory-enhanced dataflow graph (paper Figure 3's
/// "Decoupled-Spatial Compiler" step plus §IV-B memory enhancement).
///
/// # Errors
///
/// Returns [`CompileError::NotConfigured`] when the kernel lacks the
/// `config` pragma, [`CompileError::BadUnroll`] for a zero or oversized
/// unroll degree, and [`CompileError::Graph`] for internal construction
/// failures (a bug).
pub fn lower(kernel: &Kernel, variant: u32, choices: &LowerChoices) -> Result<Mdfg, CompileError> {
    if !kernel.pragmas().config {
        return Err(CompileError::NotConfigured);
    }
    let innermost = kernel
        .nest()
        .innermost()
        .ok_or(CompileError::Graph("empty nest".into()))?;
    let u = choices.unroll;
    if u == 0 || u as u64 > innermost.trip.max() {
        return Err(CompileError::BadUnroll { unroll: u });
    }

    let mut g = Mdfg::new(kernel.name(), variant);
    g.set_unroll(u);
    g.set_total_iterations(kernel.nest().total_iterations());
    g.set_sequential(kernel.traits().cross_iteration);

    let mut ctx = LowerCtx {
        clusters: build_clusters(kernel),
        kernel,
        g,
        unroll: u,
        innermost_var: innermost.var.clone(),
        arrays: BTreeMap::new(),
        read_streams: BTreeMap::new(),
        write_streams: BTreeMap::new(),
    };

    let dtype = kernel.dtype();
    let lanes = dtype.subword_lanes().min(u);
    let groups = u.div_ceil(lanes).max(1);

    for stmt in kernel.body() {
        let mut group_values: Vec<MdfgNodeId> = Vec::new();

        for _group in 0..groups {
            let v = ctx.build_expr(&stmt.value, dtype, lanes)?;
            let v = match v {
                Some(id) => id,
                // Pure-constant statement: values come from a generate
                // stream (empty array name = generate engine).
                None => ctx.g.add_node(MdfgNode::InputStream(StreamNode::read(
                    "",
                    u64::from(lanes) * dtype.bytes(),
                    ReuseInfo::default(),
                ))),
            };
            let v = if stmt.guarded {
                // Predicated execution through the control lookup table.
                let sel = ctx
                    .g
                    .add_node(MdfgNode::Inst(InstNode::new(Op::Select, dtype, lanes)));
                ctx.g.add_edge(v, sel).map_err(LowerCtx::err)?;
                sel
            } else {
                v
            };
            group_values.push(v);
        }

        let dst = stmt.dst.clone();
        let dst_involves_inner = dst.index.affine().involves(&ctx.innermost_var);

        // Cross-group reduction when the destination is not vectorized.
        let final_values = if !dst_involves_inner && group_values.len() > 1 {
            let mut acc = group_values[0];
            for &v in &group_values[1..] {
                let red = ctx
                    .g
                    .add_node(MdfgNode::Inst(InstNode::new(Op::Add, dtype, lanes)));
                ctx.g.add_edge(acc, red).map_err(LowerCtx::err)?;
                ctx.g.add_edge(v, red).map_err(LowerCtx::err)?;
                acc = red;
            }
            vec![acc]
        } else {
            group_values
        };

        // Write stream (dedup).
        let wkey = ref_key(&dst, true);
        let wid = if let Some(id) = ctx.write_streams.get(&wkey) {
            *id
        } else {
            let wan = analyze_ref(kernel, &dst, true);
            let stream = StreamNode::write(dst.array.clone(), ctx.firing_bytes(&dst), wan.reuse)
                .with_pattern(wan.pattern, wan.dims);
            let id = ctx.g.add_node(MdfgNode::OutputStream(stream));
            let aid = ctx.ensure_array(&dst.array);
            ctx.g.add_edge(id, aid).map_err(LowerCtx::err)?;
            ctx.write_streams.insert(wkey, id);
            id
        };

        if stmt.accumulate {
            let rec = recurrence_of(kernel, &dst);
            let use_rec = choices.use_recurrence && rec.is_some_and(|r| r.concurrent <= 4096);
            let rkey = ref_key(&dst, false);
            let rid = if let Some(id) = ctx.read_streams.get(&rkey) {
                *id
            } else {
                let mut ran = analyze_ref(kernel, &dst, false);
                if use_rec {
                    ran.reuse.recurrent = rec;
                }
                let stream = StreamNode::read(dst.array.clone(), ctx.firing_bytes(&dst), ran.reuse)
                    .with_pattern(ran.pattern, ran.dims);
                let id = ctx.g.add_node(MdfgNode::InputStream(stream));
                if use_rec {
                    // Recurrence pair: write stream feeds the read stream
                    // directly, bypassing memory.
                    ctx.g.add_edge(wid, id).map_err(LowerCtx::err)?;
                } else {
                    let aid = ctx.ensure_array(&dst.array);
                    ctx.g.add_edge(aid, id).map_err(LowerCtx::err)?;
                }
                ctx.read_streams.insert(rkey, id);
                id
            };
            for v in final_values {
                let add = ctx
                    .g
                    .add_node(MdfgNode::Inst(InstNode::new(Op::Add, dtype, lanes)));
                ctx.g.add_edge(v, add).map_err(LowerCtx::err)?;
                ctx.g.add_edge(rid, add).map_err(LowerCtx::err)?;
                ctx.g.add_edge(add, wid).map_err(LowerCtx::err)?;
            }
        } else {
            for v in final_values {
                ctx.g.add_edge(v, wid).map_err(LowerCtx::err)?;
            }
        }
    }

    let mut g = ctx.g;
    refine_placements(&mut g, choices.spad_cap_bytes);
    g.validate().map_err(LowerCtx::err)?;
    Ok(g)
}

/// Set each array node's placement preference from the best scratchpad
/// benefit among its read streams.
fn refine_placements(g: &mut Mdfg, spad_cap_bytes: u64) {
    use overgen_mdfg::MdfgNodeKind;
    let arrays = g.nodes_of_kind(MdfgNodeKind::Array);
    for aid in arrays {
        let mut benefit = 1.0f64;
        for &sid in g.succs(aid) {
            if let Some(s) = g.node(sid).and_then(MdfgNode::as_stream) {
                benefit = benefit.max(s.reuse.scratchpad_benefit());
            }
        }
        let size = g
            .node(aid)
            .and_then(MdfgNode::as_array)
            .map(|a| a.size_bytes)
            .unwrap_or(0);
        let pref = placement_pref(benefit, size, spad_cap_bytes);
        if let Some(MdfgNode::Array(a)) = g.node_mut(aid) {
            a.pref = pref;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, KernelBuilder, Suite};
    use overgen_mdfg::MdfgNodeKind;

    fn fir() -> Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::F64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn fir_unroll4_shape() {
        let g = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // f64: lanes = 1, groups = 4 -> 4 muls, 4 accumulate adds
        assert_eq!(g.count_op(Op::Mul), 4);
        assert_eq!(g.count_op(Op::Add), 4);
        // streams: read a, read b, read c (recurrence), write c
        assert_eq!(g.input_stream_count(), 3);
        assert_eq!(g.output_stream_count(), 1);
        assert_eq!(g.array_count(), 3);
        assert_eq!(g.unroll(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn fir_recurrence_pair_exists() {
        let g = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let has_rec_edge = g.edges().any(|(s, d)| {
            g.node(s).unwrap().kind() == MdfgNodeKind::OutputStream
                && g.node(d).unwrap().kind() == MdfgNodeKind::InputStream
        });
        assert!(has_rec_edge);
    }

    #[test]
    fn fir_no_recurrence_variant_roundtrips_memory() {
        let g = lower(
            &fir(),
            1,
            &LowerChoices {
                unroll: 2,
                use_recurrence: false,
                ..Default::default()
            },
        )
        .unwrap();
        let has_rec_edge = g.edges().any(|(s, d)| {
            g.node(s).unwrap().kind() == MdfgNodeKind::OutputStream
                && g.node(d).unwrap().kind() == MdfgNodeKind::InputStream
        });
        assert!(!has_rec_edge);
        g.validate().unwrap();
    }

    #[test]
    fn subword_simd_folds_lanes() {
        let k = KernelBuilder::new("scale", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 1024)
            .loop_const("i", 1024)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) * expr::lit(3.0),
            )
            .build()
            .unwrap();
        let g = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 16,
                ..Default::default()
            },
        )
        .unwrap();
        // i16 -> 4 lanes; 16 unroll -> 4 groups -> 4 mul nodes of 4 lanes
        assert_eq!(g.count_op(Op::Mul), 4);
        let scalar_muls: u32 = g
            .nodes()
            .filter_map(|(_, n)| n.as_inst())
            .filter(|i| i.op == Op::Mul)
            .map(|i| i.lanes)
            .sum();
        assert_eq!(scalar_muls, 16);
    }

    #[test]
    fn stationary_operand_gets_scalar_stream() {
        let g = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let b_stream = g
            .nodes()
            .find_map(|(_, n)| match n {
                MdfgNode::InputStream(s) if s.array == "b" => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        // b[j] does not involve the innermost loop: one element per firing
        assert_eq!(b_stream.bytes_per_firing, 8);
        assert_eq!(b_stream.reuse.stationary, 32.0);
        let a_stream = g
            .nodes()
            .find_map(|(_, n)| match n {
                MdfgNode::InputStream(s) if s.array == "a" => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(a_stream.bytes_per_firing, 4 * 8);
    }

    #[test]
    fn indirect_creates_index_stream() {
        let k = KernelBuilder::new("gather", Suite::MachSuite, DataType::F64)
            .array_input("val", 2048)
            .array_input("col", 512)
            .array_output("y", 512)
            .loop_const("i", 512)
            .accum(
                "y",
                expr::idx("i"),
                expr::load_indirect("val", "col", expr::idx("i")),
            )
            .build()
            .unwrap();
        let g = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(g.input_stream_count() >= 3);
        let val_stream = g
            .nodes()
            .find_map(|(_, n)| match n {
                MdfgNode::InputStream(s) if s.array == "val" => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(val_stream.pattern, overgen_mdfg::StreamPattern::Indirect);
    }

    #[test]
    fn bad_unroll_rejected() {
        assert!(matches!(
            lower(
                &fir(),
                0,
                &LowerChoices {
                    unroll: 0,
                    ..Default::default()
                }
            ),
            Err(CompileError::BadUnroll { .. })
        ));
        assert!(matches!(
            lower(
                &fir(),
                0,
                &LowerChoices {
                    unroll: 64,
                    ..Default::default()
                }
            ),
            Err(CompileError::BadUnroll { .. })
        ));
    }

    #[test]
    fn reduction_when_dst_not_vectorized() {
        // dot product: c[0] += a[i] * b[i]
        let k = KernelBuilder::new("dot", Suite::Dsp, DataType::F64)
            .array_input("a", 128)
            .array_input("b", 128)
            .array_output("c", 1)
            .loop_const("i", 128)
            .accum(
                "c",
                expr::idx_const(0),
                expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let g = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // 4 muls + 3 reduction adds + 1 accumulate add
        assert_eq!(g.count_op(Op::Mul), 4);
        assert_eq!(g.count_op(Op::Add), 4);
    }

    #[test]
    fn pure_copy_stream_to_stream() {
        let k = KernelBuilder::new("copy", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 1024)
            .loop_const("i", 1024)
            .assign("c", expr::idx("i"), expr::load("a", expr::idx("i")))
            .build()
            .unwrap();
        let g = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.inst_count(), 0);
        assert_eq!(g.input_stream_count(), 1);
        assert_eq!(g.output_stream_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn spad_preference_for_high_reuse_array() {
        let g = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let a_pref = g
            .nodes()
            .find_map(|(_, n)| match n {
                MdfgNode::Array(a) if a.name == "a" => Some(a.pref),
                _ => None,
            })
            .unwrap();
        // a has ~64x general reuse, none captured stationary -> spad
        assert_eq!(a_pref, MemPref::PreferSpad);
        let b_pref = g
            .nodes()
            .find_map(|(_, n)| match n {
                MdfgNode::Array(a) if a.name == "b" => Some(a.pref),
                _ => None,
            })
            .unwrap();
        // b's reuse is mostly captured at the port: residual benefit (4x
        // across the io loop) is not enough to demand a scratchpad.
        assert_ne!(b_pref, MemPref::PreferSpad);
    }

    #[test]
    fn guarded_statement_adds_select() {
        let k = KernelBuilder::new("guarded", Suite::MachSuite, DataType::I64)
            .array_input("a", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .stmt(
                overgen_ir::Stmt::assign(
                    overgen_ir::ArrayRef::affine("c", expr::idx("i")),
                    expr::load("a", expr::idx("i")),
                )
                .with_guard(),
            )
            .build()
            .unwrap();
        let g = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.count_op(Op::Select), 2);
    }
}
