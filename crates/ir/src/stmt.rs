use std::fmt;

use crate::expression::map_ref;
use crate::{AffineExpr, ArrayRef, Expr};

/// One statement of a kernel's innermost loop body: a (possibly
/// accumulating) store of an expression into an array element.
///
/// `accumulate == true` encodes `dst += value`, the read-modify-write
/// pattern the paper maps onto the recurrence stream engine when the live
/// set fits on chip (recurrent reuse, §IV-B).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stmt {
    /// Destination element.
    pub dst: ArrayRef,
    /// Value computed each iteration.
    pub value: Expr,
    /// Whether the statement accumulates into `dst` (`+=`) rather than
    /// overwriting it.
    pub accumulate: bool,
    /// Optional guard: the statement only executes when the guard loop
    /// variable predicate holds. Models the `if`-guarded bodies introduced
    /// when flattening imperfect nests; executed via PE predication on
    /// OverGen and via conditional pipeline stages on HLS.
    pub guarded: bool,
}

impl Stmt {
    /// Plain assignment `dst = value`.
    pub fn assign(dst: ArrayRef, value: Expr) -> Self {
        Stmt {
            dst,
            value,
            accumulate: false,
            guarded: false,
        }
    }

    /// Accumulation `dst += value`.
    pub fn accum(dst: ArrayRef, value: Expr) -> Self {
        Stmt {
            dst,
            value,
            accumulate: true,
            guarded: false,
        }
    }

    /// Mark the statement as guarded by a data-dependent predicate.
    pub fn with_guard(mut self) -> Self {
        self.guarded = true;
        self
    }

    /// All array reads of the statement, including the read side of an
    /// accumulation.
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = self.value.loads();
        if self.accumulate {
            out.push(&self.dst);
        }
        out
    }

    /// The single array write of the statement.
    pub fn write(&self) -> &ArrayRef {
        &self.dst
    }

    /// Rewrite all indices (unrolling / strength reduction).
    pub fn map_indices(&self, f: &dyn Fn(&AffineExpr) -> AffineExpr) -> Stmt {
        Stmt {
            dst: map_ref(&self.dst, f),
            value: self.value.map_indices(f),
            accumulate: self.accumulate,
            guarded: self.guarded,
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.accumulate { "+=" } else { "=" };
        if self.guarded {
            write!(f, "if (guard) ")?;
        }
        write!(f, "{} {} {}", self.dst, op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr;

    #[test]
    fn accumulate_reads_dst() {
        let s = Stmt::accum(
            ArrayRef::affine("c", expr::idx("i")),
            expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i")),
        );
        let reads = s.reads();
        assert_eq!(reads.len(), 3);
        assert_eq!(reads[2].array, "c");
        assert_eq!(s.write().array, "c");
    }

    #[test]
    fn plain_assign_does_not_read_dst() {
        let s = Stmt::assign(
            ArrayRef::affine("c", expr::idx("i")),
            expr::load("a", expr::idx("i")),
        );
        assert_eq!(s.reads().len(), 1);
    }

    #[test]
    fn map_indices_applies_everywhere() {
        let s = Stmt::accum(
            ArrayRef::affine("c", expr::idx("i")),
            expr::load("a", expr::idx("i")),
        );
        let s2 = s.map_indices(&|e| e.shifted("i", 2));
        assert_eq!(s2.dst.index.affine().constant_term(), 2);
        assert_eq!(s2.reads()[0].index.affine().constant_term(), 2);
    }

    #[test]
    fn display() {
        let s = Stmt::accum(
            ArrayRef::affine("c", expr::idx("i")),
            expr::load("a", expr::idx("i")),
        )
        .with_guard();
        assert_eq!(s.to_string(), "if (guard) c[i] += a[i]");
    }
}
