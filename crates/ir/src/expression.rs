use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::{AffineExpr, Op};

/// How an array is indexed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IndexExpr {
    /// Affine function of loop variables: the common case.
    Affine(AffineExpr),
    /// Indirect access `a[b[affine]]`: the index is itself loaded from
    /// another array. The paper's reuse analysis assumes the inner access is
    /// linear and the indirection is uniformly distributed over the target
    /// (§IV-B).
    Indirect {
        /// Array holding the indices.
        index_array: String,
        /// Affine index into `index_array`.
        index: AffineExpr,
    },
}

impl IndexExpr {
    /// Whether this is an indirect access.
    pub fn is_indirect(&self) -> bool {
        matches!(self, IndexExpr::Indirect { .. })
    }

    /// The affine part: the target index for affine accesses, or the index
    /// into the index array for indirect accesses.
    pub fn affine(&self) -> &AffineExpr {
        match self {
            IndexExpr::Affine(e) => e,
            IndexExpr::Indirect { index, .. } => index,
        }
    }
}

impl From<AffineExpr> for IndexExpr {
    fn from(e: AffineExpr) -> Self {
        IndexExpr::Affine(e)
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::Affine(e) => write!(f, "{e}"),
            IndexExpr::Indirect { index_array, index } => write!(f, "{index_array}[{index}]"),
        }
    }
}

/// A reference to one element of a declared array.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayRef {
    /// Name of the referenced array.
    pub array: String,
    /// Index expression.
    pub index: IndexExpr,
}

impl ArrayRef {
    /// Convenience constructor for an affine reference.
    pub fn affine(array: impl Into<String>, index: AffineExpr) -> Self {
        ArrayRef {
            array: array.into(),
            index: IndexExpr::Affine(index),
        }
    }

    /// Convenience constructor for an indirect reference `array[idx_array[index]]`.
    pub fn indirect(
        array: impl Into<String>,
        index_array: impl Into<String>,
        index: AffineExpr,
    ) -> Self {
        ArrayRef {
            array: array.into(),
            index: IndexExpr::Indirect {
                index_array: index_array.into(),
                index,
            },
        }
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.array, self.index)
    }
}

/// A scalar expression tree over array loads and constants.
///
/// Build expressions with [`expr_ops`] helpers and the overloaded `+`, `-`,
/// `*` operators:
///
/// ```
/// use overgen_ir::expr;
/// let e = expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("j"));
/// assert_eq!(e.count_loads(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// Load one element from an array.
    Load(ArrayRef),
    /// Integer/float literal (stored as f64; the datatype comes from the
    /// kernel).
    Const(f64),
    /// Binary operation.
    Binary {
        /// Operation.
        op: Op,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operation.
        op: Op,
        /// Operand.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// Binary helper.
    pub fn binary(op: Op, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Unary helper.
    pub fn unary(op: Op, arg: Expr) -> Expr {
        Expr::Unary {
            op,
            arg: Box::new(arg),
        }
    }

    /// Visit every node of the tree.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Unary { arg, .. } => arg.visit(f),
            Expr::Load(_) | Expr::Const(_) => {}
        }
    }

    /// All array references loaded by this expression, in visit order.
    pub fn loads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Load(r) => out.push(r),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_loads(out);
                rhs.collect_loads(out);
            }
            Expr::Unary { arg, .. } => arg.collect_loads(out),
            Expr::Const(_) => {}
        }
    }

    /// Number of loads in the tree.
    pub fn count_loads(&self) -> usize {
        self.loads().len()
    }

    /// Number of arithmetic operations of a given op in the tree.
    pub fn count_op(&self, op: Op) -> usize {
        let mut n = 0;
        self.visit(&mut |e| match e {
            Expr::Binary { op: o, .. } | Expr::Unary { op: o, .. } if *o == op => n += 1,
            _ => {}
        });
        n
    }

    /// Total number of arithmetic operation nodes.
    pub fn count_ops(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Binary { .. } | Expr::Unary { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Rewrite every affine index with the given function (used for loop
    /// unrolling / strength reduction).
    pub fn map_indices(&self, f: &dyn Fn(&AffineExpr) -> AffineExpr) -> Expr {
        match self {
            Expr::Load(r) => Expr::Load(map_ref(r, f)),
            Expr::Const(c) => Expr::Const(*c),
            Expr::Binary { op, lhs, rhs } => {
                Expr::binary(*op, lhs.map_indices(f), rhs.map_indices(f))
            }
            Expr::Unary { op, arg } => Expr::unary(*op, arg.map_indices(f)),
        }
    }
}

pub(crate) fn map_ref(r: &ArrayRef, f: &dyn Fn(&AffineExpr) -> AffineExpr) -> ArrayRef {
    let index = match &r.index {
        IndexExpr::Affine(e) => IndexExpr::Affine(f(e)),
        IndexExpr::Indirect { index_array, index } => IndexExpr::Indirect {
            index_array: index_array.clone(),
            index: f(index),
        },
    };
    ArrayRef {
        array: r.array.clone(),
        index,
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binary(Op::Add, self, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(Op::Sub, self, rhs)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(Op::Mul, self, rhs)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Load(r) => write!(f, "{r}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Unary { op, arg } => write!(f, "{op}({arg})"),
        }
    }
}

/// Free-function helpers for building expressions tersely. Re-exported as
/// `overgen_ir::expr`.
pub mod expr_ops {
    use super::*;

    /// An affine index consisting of a single variable.
    pub fn idx(var: &str) -> AffineExpr {
        AffineExpr::var(var)
    }

    /// `k * var`.
    pub fn idx_scaled(var: &str, k: i64) -> AffineExpr {
        AffineExpr::var(var).scaled(k)
    }

    /// A constant index.
    pub fn idx_const(k: i64) -> AffineExpr {
        AffineExpr::constant(k)
    }

    /// Load `array[index]`.
    pub fn load(array: &str, index: AffineExpr) -> Expr {
        Expr::Load(ArrayRef::affine(array, index))
    }

    /// Indirect load `array[index_array[index]]`.
    pub fn load_indirect(array: &str, index_array: &str, index: AffineExpr) -> Expr {
        Expr::Load(ArrayRef::indirect(array, index_array, index))
    }

    /// Constant literal.
    pub fn lit(c: f64) -> Expr {
        Expr::Const(c)
    }

    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::binary(Op::Min, a, b)
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::binary(Op::Max, a, b)
    }

    /// `abs(a)`.
    pub fn abs(a: Expr) -> Expr {
        Expr::unary(Op::Abs, a)
    }

    /// `sqrt(a)`.
    pub fn sqrt(a: Expr) -> Expr {
        Expr::unary(Op::Sqrt, a)
    }

    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::binary(Op::Div, a, b)
    }

    /// `a >> k`.
    pub fn shr(a: Expr, k: i64) -> Expr {
        Expr::binary(Op::Shr, a, Expr::Const(k as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::expr_ops as expr;
    use super::*;

    #[test]
    fn build_and_count() {
        let e = expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("j"))
            + expr::load("c", expr::idx("i"));
        assert_eq!(e.count_loads(), 3);
        assert_eq!(e.count_op(Op::Mul), 1);
        assert_eq!(e.count_op(Op::Add), 1);
        assert_eq!(e.count_ops(), 2);
    }

    #[test]
    fn loads_in_order() {
        let e = expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i"));
        let ls = e.loads();
        assert_eq!(ls[0].array, "a");
        assert_eq!(ls[1].array, "b");
    }

    #[test]
    fn indirect_access() {
        let e = expr::load_indirect("val", "col", expr::idx("j"));
        let ls = e.loads();
        assert!(ls[0].index.is_indirect());
        assert_eq!(ls[0].index.affine().coeff("j"), 1);
    }

    #[test]
    fn map_indices_shifts() {
        let e = expr::load("a", expr::idx("i"));
        let shifted = e.map_indices(&|ix| ix.shifted("i", 3));
        match &shifted {
            Expr::Load(r) => assert_eq!(r.index.affine().constant_term(), 3),
            _ => panic!("expected load"),
        }
    }

    #[test]
    fn display() {
        let e = expr::load("a", expr::idx("i")) + expr::lit(1.0);
        assert_eq!(e.to_string(), "(a[i] add 1)");
    }
}
