use std::fmt;

use crate::DataType;

/// Primitive operation a processing element can execute.
///
/// The set mirrors the functional units OverGen generates (Table III lists
/// integer and float add/mul/div plus square root; the Vision kernels also
/// use min/max, shifts, and absolute difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// Addition (also used for subtraction hardware-wise).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Square root.
    Sqrt,
    /// Minimum of two operands.
    Min,
    /// Maximum of two operands.
    Max,
    /// Absolute value.
    Abs,
    /// Logical/arithmetic shift left.
    Shl,
    /// Logical/arithmetic shift right.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Predicated select (conditional move); the control lookup-table path.
    Select,
    /// Comparison producing a predicate.
    Cmp,
}

impl Op {
    /// Every operation, in a stable order.
    pub const ALL: [Op; 15] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Sqrt,
        Op::Min,
        Op::Max,
        Op::Abs,
        Op::Shl,
        Op::Shr,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Select,
        Op::Cmp,
    ];

    /// Coarse cost class of the operation, used by the resource model.
    pub fn class(self) -> OpClass {
        match self {
            Op::Add | Op::Sub | Op::Min | Op::Max | Op::Abs | Op::Cmp => OpClass::AddLike,
            Op::Mul => OpClass::MulLike,
            Op::Div | Op::Sqrt => OpClass::DivLike,
            Op::Shl | Op::Shr | Op::And | Op::Or | Op::Xor | Op::Select => OpClass::Logic,
        }
    }

    /// Pipeline latency in cycles of a dedicated functional unit for this
    /// operation, at the granularity the simulator models.
    pub fn latency(self, dtype: DataType) -> u32 {
        let base = match self.class() {
            OpClass::Logic => 1,
            OpClass::AddLike => 1,
            OpClass::MulLike => 2,
            OpClass::DivLike => 8,
        };
        if dtype.is_float() {
            base + 2
        } else {
            base
        }
    }

    /// Number of input operands.
    pub fn arity(self) -> usize {
        match self {
            Op::Abs | Op::Sqrt => 1,
            Op::Select => 3,
            _ => 2,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Sqrt => "sqrt",
            Op::Min => "min",
            Op::Max => "max",
            Op::Abs => "abs",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Select => "select",
            Op::Cmp => "cmp",
        };
        f.write_str(s)
    }
}

/// Cost class of an operation: determines functional-unit area and whether
/// the FPGA mapping uses DSP blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OpClass {
    /// Adders, comparators, min/max: cheap LUT logic.
    AddLike,
    /// Multipliers: DSP blocks (integer wide or float).
    MulLike,
    /// Dividers and square root: large iterative units.
    DivLike,
    /// Shifts and bitwise logic: trivial.
    Logic,
}

/// A functional-unit capability: one operation at one datatype.
///
/// The set of [`FuCap`]s of a processing element defines what instructions
/// can be mapped to it; the DSE adds and prunes capabilities
/// (module-capability pruning, paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FuCap {
    /// Operation implemented.
    pub op: Op,
    /// Datatype the unit operates on.
    pub dtype: DataType,
}

impl FuCap {
    /// Convenience constructor.
    pub fn new(op: Op, dtype: DataType) -> Self {
        FuCap { op, dtype }
    }
}

impl fmt::Display for FuCap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.op, self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_ops() {
        for op in Op::ALL {
            // class() must not panic and latency must be positive.
            let _ = op.class();
            assert!(op.latency(DataType::I64) >= 1);
            assert!(
                op.latency(DataType::F64) > op.latency(DataType::I64)
                    || op.class() == OpClass::Logic && op.latency(DataType::F64) >= 1
            );
        }
    }

    #[test]
    fn float_ops_are_slower() {
        assert!(Op::Mul.latency(DataType::F32) > Op::Mul.latency(DataType::I32));
    }

    #[test]
    fn fucap_display() {
        assert_eq!(FuCap::new(Op::Mul, DataType::F64).to_string(), "mul.f64");
    }

    #[test]
    fn arity() {
        assert_eq!(Op::Sqrt.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Select.arity(), 3);
    }
}
