use std::collections::BTreeSet;
use std::fmt;

use crate::{AffineExpr, ArrayRef, DataType, IndexExpr, Loop, LoopNest, Op, Stmt, TripCount};

/// Which benchmark suite a kernel belongs to (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Suite {
    /// Digital signal processing kernels (from REVEL).
    Dsp,
    /// MachSuite commonly-accelerated kernels.
    MachSuite,
    /// Xilinx Vitis computer-vision kernels.
    Vision,
}

impl Suite {
    /// All suites in paper order.
    pub const ALL: [Suite; 3] = [Suite::Dsp, Suite::MachSuite, Suite::Vision];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Dsp => "dsp",
            Suite::MachSuite => "machsuite",
            Suite::Vision => "vision",
        };
        f.write_str(s)
    }
}

/// Role of an array in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArrayKind {
    /// Read-only input.
    Input,
    /// Write (possibly read-modify-write) output.
    Output,
    /// Internal temporary.
    Temp,
}

/// A declared array with its element count and type.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayDecl {
    /// Name referenced by [`ArrayRef`]s.
    pub name: String,
    /// Number of elements.
    pub elems: u64,
    /// Element type.
    pub dtype: DataType,
    /// Role.
    pub kind: ArrayKind,
}

impl ArrayDecl {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.elems * self.dtype.bytes()
    }
}

/// The `#pragma dsa` annotations of a kernel region (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pragmas {
    /// `#pragma dsa config`: the region shares one spatial configuration.
    pub config: bool,
    /// `#pragma dsa decouple`: memory accesses under the loop are alias-free
    /// when made through different pointers, enabling decoupling.
    pub decouple: bool,
}

impl Default for Pragmas {
    fn default() -> Self {
        Pragmas {
            config: true,
            decouple: true,
        }
    }
}

/// Kernel-tuning status, used by the Q2 study (Figure 14, Table IV).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tuning {
    /// Whether this is the manually tuned variant of the kernel.
    pub tuned: bool,
    /// Human-readable note of what the tuning did.
    pub note: String,
}

/// Structural traits of a kernel that drive the HLS initiation-interval
/// model and the outlier discussion of the evaluation (Q1/Q2).
///
/// These are *derived* from the IR by [`Kernel::traits`]; tests assert they
/// match the paper's Table IV causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelTraits {
    /// Any loop has a data-dependent trip count (Table IV "Var. Loop TC").
    pub variable_trip_count: bool,
    /// Innermost-dimension access with stride > 1 (Table IV "Inefficient
    /// Strided Access").
    pub strided_innermost: bool,
    /// Multiple reads of one array at constant offsets of the innermost
    /// variable — a sliding window (stencils; favours HLS line buffers).
    pub sliding_window: bool,
    /// Uses indirect (gather) accesses.
    pub indirect: bool,
    /// Contains guarded statements (imperfect-nest flattening).
    pub guarded: bool,
    /// An input array is re-read identically by every tile, wanting a
    /// DRAM-to-scratchpad broadcast OverGen lacks (the `ellpack` outlier).
    pub wants_broadcast: bool,
    /// Some array is read at a *different* index shape than it is written
    /// in the same body: a cross-iteration dependence (triangular solves,
    /// factorizations). Such regions neither tile-parallelize nor pipeline
    /// at II = 1 on any target.
    pub cross_iteration: bool,
}

/// A complete kernel: the unit of compilation and the row granularity of
/// every evaluation table.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Kernel {
    name: String,
    suite: Suite,
    dtype: DataType,
    arrays: Vec<ArrayDecl>,
    nest: LoopNest,
    body: Vec<Stmt>,
    pragmas: Pragmas,
    tuning: Tuning,
    wants_broadcast: bool,
}

impl Kernel {
    /// Kernel name, e.g. `"fir"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Benchmark suite.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Primary element datatype.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Look up an array declaration.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// The loop nest, outermost first.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Innermost-body statements.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Pragma annotations.
    pub fn pragmas(&self) -> Pragmas {
        self.pragmas
    }

    /// Tuning status.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// Total bytes moved if every innermost iteration touched memory once
    /// per reference (upper bound used in table reporting).
    pub fn total_iterations(&self) -> f64 {
        self.nest.total_iterations()
    }

    /// All array reads in the body.
    pub fn reads(&self) -> Vec<&ArrayRef> {
        self.body.iter().flat_map(|s| s.reads()).collect()
    }

    /// All array writes in the body.
    pub fn writes(&self) -> Vec<&ArrayRef> {
        self.body.iter().map(|s| s.write()).collect()
    }

    /// Count of arithmetic operations of `op` across the body (one unrolled
    /// iteration), counting the implied add of accumulations.
    pub fn count_op(&self, op: Op) -> usize {
        self.body
            .iter()
            .map(|s| s.value.count_op(op) + usize::from(op == Op::Add && s.accumulate))
            .sum()
    }

    /// Derive the structural traits of the kernel (see [`KernelTraits`]).
    pub fn traits(&self) -> KernelTraits {
        let innermost = self.nest.innermost().map(|l| l.var.clone());
        let mut strided_innermost = false;
        let mut indirect = false;
        let mut guarded = false;

        for stmt in &self.body {
            guarded |= stmt.guarded;
            for r in stmt.reads().iter().chain(std::iter::once(&stmt.write())) {
                match &r.index {
                    IndexExpr::Affine(e) => {
                        if let Some(iv) = &innermost {
                            let s = e.stride_of(iv);
                            if s.abs() > 1 {
                                strided_innermost = true;
                            }
                        }
                    }
                    IndexExpr::Indirect { .. } => indirect = true,
                }
            }
        }

        KernelTraits {
            variable_trip_count: self.nest.has_variable_trip(),
            strided_innermost,
            sliding_window: self.detect_sliding_window(),
            indirect,
            guarded,
            wants_broadcast: self.wants_broadcast,
            cross_iteration: self.detect_cross_iteration(),
        }
    }

    /// Cross-iteration dependence: an array is both written and read with
    /// *different* affine index expressions (beyond the same-cell
    /// read-modify-write of an accumulation).
    fn detect_cross_iteration(&self) -> bool {
        for w in self.writes() {
            for r in self.reads() {
                if r.array == w.array && r.index != w.index {
                    if let (IndexExpr::Affine(re), IndexExpr::Affine(we)) = (&r.index, &w.index) {
                        // Ignore pure window offsets (same variable part).
                        let same_vars =
                            re.terms().collect::<Vec<_>>() == we.terms().collect::<Vec<_>>();
                        if !same_vars {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Sliding-window detection: some array is read at two or more distinct
    /// constant offsets along a loop variable it strides by 1 on.
    fn detect_sliding_window(&self) -> bool {
        let mut per_array: std::collections::BTreeMap<(&str, String), BTreeSet<i64>> =
            Default::default();
        for r in self.reads() {
            if let IndexExpr::Affine(e) = &r.index {
                for (v, c) in e.terms() {
                    if c == 1 {
                        per_array
                            .entry((r.array.as_str(), v.to_string()))
                            .or_default()
                            .insert(e.constant_term());
                    }
                }
            }
        }
        per_array.values().any(|offsets| offsets.len() >= 2)
    }

    /// Return a copy flagged as the tuned variant with a new body/nest.
    pub fn tuned_variant(&self, note: &str, nest: LoopNest, body: Vec<Stmt>) -> Kernel {
        Kernel {
            nest,
            body,
            tuning: Tuning {
                tuned: true,
                note: note.to_string(),
            },
            ..self.clone()
        }
    }
}

/// Errors from [`KernelBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The kernel body is empty.
    EmptyBody,
    /// The loop nest is empty.
    EmptyNest,
    /// A statement references an undeclared array.
    UnknownArray(String),
    /// An index uses a variable that is not a loop induction variable.
    UnknownVariable(String),
    /// Two loops share an induction-variable name.
    DuplicateLoopVar(String),
    /// Two arrays share a name.
    DuplicateArray(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyBody => write!(f, "kernel body is empty"),
            BuildError::EmptyNest => write!(f, "loop nest is empty"),
            BuildError::UnknownArray(a) => write!(f, "statement references undeclared array `{a}`"),
            BuildError::UnknownVariable(v) => {
                write!(f, "index uses `{v}` which is not a loop variable")
            }
            BuildError::DuplicateLoopVar(v) => write!(f, "duplicate loop variable `{v}`"),
            BuildError::DuplicateArray(a) => write!(f, "duplicate array `{a}`"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Kernel`], validating references at [`build`](Self::build).
///
/// ```
/// use overgen_ir::{KernelBuilder, DataType, Suite, expr};
/// let k = KernelBuilder::new("fir", Suite::Dsp, DataType::F64)
///     .array_input("a", 255)
///     .array_input("b", 128)
///     .array_output("c", 128)
///     .loop_const("io", 4)
///     .loop_const("j", 128)
///     .loop_const("ii", 32)
///     .accum(
///         "c",
///         expr::idx_scaled("io", 32) + expr::idx("ii"),
///         expr::load("a", expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"))
///             * expr::load("b", expr::idx("j")),
///     )
///     .build()?;
/// assert_eq!(k.nest().depth(), 3);
/// # Ok::<(), overgen_ir::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    suite: Suite,
    dtype: DataType,
    arrays: Vec<ArrayDecl>,
    nest: LoopNest,
    body: Vec<Stmt>,
    pragmas: Pragmas,
    tuning: Tuning,
    wants_broadcast: bool,
}

impl KernelBuilder {
    /// Start a kernel with a name, suite, and primary datatype.
    pub fn new(name: impl Into<String>, suite: Suite, dtype: DataType) -> Self {
        KernelBuilder {
            name: name.into(),
            suite,
            dtype,
            arrays: Vec::new(),
            nest: LoopNest::default(),
            body: Vec::new(),
            pragmas: Pragmas::default(),
            tuning: Tuning::default(),
            wants_broadcast: false,
        }
    }

    /// Declare an input array with the kernel's primary datatype.
    pub fn array_input(mut self, name: &str, elems: u64) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elems,
            dtype: self.dtype,
            kind: ArrayKind::Input,
        });
        self
    }

    /// Declare an output array with the kernel's primary datatype.
    pub fn array_output(mut self, name: &str, elems: u64) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elems,
            dtype: self.dtype,
            kind: ArrayKind::Output,
        });
        self
    }

    /// Declare an array with an explicit datatype and kind.
    pub fn array(mut self, name: &str, elems: u64, dtype: DataType, kind: ArrayKind) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elems,
            dtype,
            kind,
        });
        self
    }

    /// Add a loop (outermost first) with a constant trip count.
    pub fn loop_const(mut self, var: &str, trip: u64) -> Self {
        self.nest.push(Loop::new(var, trip));
        self
    }

    /// Add a loop with a data-dependent trip count.
    pub fn loop_variable(mut self, var: &str, max: u64, expected: f64) -> Self {
        self.nest.push(Loop {
            var: var.into(),
            trip: TripCount::Variable { max, expected },
        });
        self
    }

    /// Add a plain assignment statement.
    pub fn assign(mut self, dst: &str, index: AffineExpr, value: crate::Expr) -> Self {
        self.body
            .push(Stmt::assign(ArrayRef::affine(dst, index), value));
        self
    }

    /// Add an accumulation statement `dst[index] += value`.
    pub fn accum(mut self, dst: &str, index: AffineExpr, value: crate::Expr) -> Self {
        self.body
            .push(Stmt::accum(ArrayRef::affine(dst, index), value));
        self
    }

    /// Add an arbitrary prebuilt statement.
    pub fn stmt(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Override pragmas.
    pub fn pragmas(mut self, pragmas: Pragmas) -> Self {
        self.pragmas = pragmas;
        self
    }

    /// Mark the kernel as a tuned variant.
    pub fn tuned(mut self, note: &str) -> Self {
        self.tuning = Tuning {
            tuned: true,
            note: note.into(),
        };
        self
    }

    /// Flag that the kernel replicates a read-only array to every tile's
    /// scratchpad (the `ellpack` broadcast pathology).
    pub fn wants_broadcast(mut self) -> Self {
        self.wants_broadcast = true;
        self
    }

    /// Validate and build the kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the body or nest is empty, a statement
    /// references an undeclared array, an index uses a non-loop variable, or
    /// names collide.
    pub fn build(self) -> Result<Kernel, BuildError> {
        if self.body.is_empty() {
            return Err(BuildError::EmptyBody);
        }
        if self.nest.depth() == 0 {
            return Err(BuildError::EmptyNest);
        }
        let mut seen_loops = BTreeSet::new();
        for l in self.nest.loops() {
            if !seen_loops.insert(l.var.clone()) {
                return Err(BuildError::DuplicateLoopVar(l.var.clone()));
            }
        }
        let mut seen_arrays = BTreeSet::new();
        for a in &self.arrays {
            if !seen_arrays.insert(a.name.clone()) {
                return Err(BuildError::DuplicateArray(a.name.clone()));
            }
        }
        let check_ref = |r: &ArrayRef| -> Result<(), BuildError> {
            if !seen_arrays.contains(&r.array) {
                return Err(BuildError::UnknownArray(r.array.clone()));
            }
            if let IndexExpr::Indirect { index_array, .. } = &r.index {
                if !seen_arrays.contains(index_array) {
                    return Err(BuildError::UnknownArray(index_array.clone()));
                }
            }
            for (v, _) in r.index.affine().terms() {
                if !seen_loops.contains(v) {
                    return Err(BuildError::UnknownVariable(v.to_string()));
                }
            }
            Ok(())
        };
        for s in &self.body {
            check_ref(&s.dst)?;
            for r in s.value.loads() {
                check_ref(r)?;
            }
        }
        Ok(Kernel {
            name: self.name,
            suite: self.suite,
            dtype: self.dtype,
            arrays: self.arrays,
            nest: self.nest,
            body: self.body,
            pragmas: self.pragmas,
            tuning: self.tuning,
            wants_broadcast: self.wants_broadcast,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr;

    fn fir() -> Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::F64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn build_fir() {
        let k = fir();
        assert_eq!(k.name(), "fir");
        assert_eq!(k.arrays().len(), 3);
        assert_eq!(k.count_op(Op::Mul), 1);
        // accumulation implies an add
        assert_eq!(k.count_op(Op::Add), 1);
        assert_eq!(k.total_iterations(), (4 * 128 * 32) as f64);
    }

    #[test]
    fn traits_plain_fir() {
        let t = fir().traits();
        assert!(!t.variable_trip_count);
        assert!(!t.strided_innermost);
        assert!(!t.indirect);
    }

    #[test]
    fn rejects_unknown_array() {
        let err = KernelBuilder::new("bad", Suite::Dsp, DataType::I64)
            .array_input("a", 8)
            .loop_const("i", 8)
            .assign("zzz", expr::idx("i"), expr::load("a", expr::idx("i")))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownArray("zzz".into()));
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = KernelBuilder::new("bad", Suite::Dsp, DataType::I64)
            .array_input("a", 8)
            .array_output("c", 8)
            .loop_const("i", 8)
            .assign("c", expr::idx("i"), expr::load("a", expr::idx("q")))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownVariable("q".into()));
    }

    #[test]
    fn rejects_empty() {
        let err = KernelBuilder::new("bad", Suite::Dsp, DataType::I64)
            .loop_const("i", 8)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::EmptyBody);
    }

    #[test]
    fn rejects_duplicates() {
        let err = KernelBuilder::new("bad", Suite::Dsp, DataType::I64)
            .array_input("a", 8)
            .array_input("a", 8)
            .loop_const("i", 8)
            .assign("a", expr::idx("i"), expr::lit(0.0))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DuplicateArray("a".into()));
    }

    #[test]
    fn sliding_window_detection() {
        // stencil: reads a[i-1], a[i], a[i+1]
        let k = KernelBuilder::new("stencil1d", Suite::MachSuite, DataType::I64)
            .array_input("a", 66)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i"))
                    + expr::load("a", expr::idx("i").offset(1))
                    + expr::load("a", expr::idx("i").offset(2)),
            )
            .build()
            .unwrap();
        assert!(k.traits().sliding_window);
        assert!(!fir().traits().sliding_window);
    }

    #[test]
    fn strided_and_variable_traits() {
        let k = KernelBuilder::new("strided", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 256)
            .loop_const("i", 128)
            .loop_variable("k", 8, 4.0)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx_scaled("i", 4) + expr::idx("k")),
            )
            .build()
            .unwrap();
        let t = k.traits();
        assert!(t.variable_trip_count);
        // innermost is k with stride 1; i is strided but not innermost
        assert!(!t.strided_innermost);

        let k2 = KernelBuilder::new("strided2", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 256)
            .loop_const("i", 256)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx_scaled("i", 4)),
            )
            .build()
            .unwrap();
        assert!(k2.traits().strided_innermost);
    }

    #[test]
    fn indirect_trait() {
        let k = KernelBuilder::new("gather", Suite::MachSuite, DataType::F64)
            .array_input("val", 1024)
            .array_input("col", 512)
            .array_output("y", 512)
            .loop_const("i", 512)
            .accum(
                "y",
                expr::idx("i"),
                expr::load_indirect("val", "col", expr::idx("i")),
            )
            .build()
            .unwrap();
        assert!(k.traits().indirect);
    }

    #[test]
    fn tuned_variant_flag() {
        let k = fir();
        let t = k.tuned_variant("peeled", k.nest().clone(), k.body().to_vec());
        assert!(t.tuning().tuned);
        assert_eq!(t.tuning().note, "peeled");
        assert!(!k.tuning().tuned);
    }
}
