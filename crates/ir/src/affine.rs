use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul};

/// An affine expression over loop induction variables:
/// `c0 + c1*v1 + c2*v2 + ...`.
///
/// Affine expressions index arrays (`a[io*32 + ii + j]` in the paper's
/// Figure 5) and drive the compiler's reuse analysis: which loop variables
/// participate in an index determines footprint, traffic, and stationary
/// reuse.
///
/// ```
/// use overgen_ir::AffineExpr;
/// let e = AffineExpr::var("io").scaled(32) + AffineExpr::var("ii") + AffineExpr::var("j");
/// assert_eq!(e.coeff("io"), 32);
/// assert!(e.involves("j"));
/// assert!(!e.involves("k"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AffineExpr {
    terms: BTreeMap<String, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        AffineExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single variable with coefficient one.
    pub fn var(name: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1);
        AffineExpr { terms, constant: 0 }
    }

    /// Multiply the whole expression by a constant.
    pub fn scaled(mut self, k: i64) -> Self {
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.terms.retain(|_, c| *c != 0);
        self.constant *= k;
        self
    }

    /// Add a constant offset.
    pub fn offset(mut self, k: i64) -> Self {
        self.constant += k;
        self
    }

    /// Coefficient of a variable (zero if absent).
    pub fn coeff(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// Constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Whether the variable appears with a non-zero coefficient.
    pub fn involves(&self, var: &str) -> bool {
        self.coeff(var) != 0
    }

    /// Iterator over `(variable, coefficient)` pairs, in name order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(v, c)| (v.as_str(), *c))
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// Evaluate with a variable assignment. Unbound variables evaluate to 0.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * env.get(v).copied().unwrap_or(0))
                .sum::<i64>()
    }

    /// Substitute `var := var + delta` (used when unrolling a loop: the k-th
    /// unrolled copy of the body sees `i + k`).
    pub fn shifted(&self, var: &str, delta: i64) -> Self {
        let mut out = self.clone();
        out.constant += out.coeff(var) * delta;
        out
    }

    /// Substitute `var := k * var` (used when unrolling rescales a loop's
    /// step, e.g. strength reduction in kernel tuning).
    pub fn rescaled_var(&self, var: &str, k: i64) -> Self {
        let mut out = self.clone();
        if let Some(c) = out.terms.get_mut(var) {
            *c *= k;
        }
        out
    }

    /// Inclusive range `[min, max]` of values this expression takes when
    /// each variable `v` ranges over `[0, extent(v) - 1]`. Variables without
    /// an extent are treated as fixed at zero.
    pub fn value_range(&self, extent: &dyn Fn(&str) -> Option<u64>) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (v, c) in &self.terms {
            let ext = extent(v).unwrap_or(1);
            let span = (*c) * (ext.saturating_sub(1) as i64);
            if span >= 0 {
                hi += span;
            } else {
                lo += span;
            }
        }
        (lo, hi)
    }

    /// The stride of the expression along the given variable: how far the
    /// flattened address moves when `var` increments by one.
    pub fn stride_of(&self, var: &str) -> i64 {
        self.coeff(var)
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;

    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        for (v, c) in rhs.terms {
            let e = self.terms.entry(v).or_insert(0);
            *e += c;
        }
        self.terms.retain(|_, c| *c != 0);
        self.constant += rhs.constant;
        self
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;

    fn mul(self, rhs: i64) -> AffineExpr {
        self.scaled(rhs)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            if *c == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{c}*{v}")?;
            }
            first = false;
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_expr() -> AffineExpr {
        // a[io*32 + ii + j] from the paper's Figure 5.
        AffineExpr::var("io").scaled(32) + AffineExpr::var("ii") + AffineExpr::var("j")
    }

    #[test]
    fn construction_and_coeffs() {
        let e = fir_expr();
        assert_eq!(e.coeff("io"), 32);
        assert_eq!(e.coeff("ii"), 1);
        assert_eq!(e.coeff("j"), 1);
        assert_eq!(e.coeff("missing"), 0);
        assert_eq!(e.num_vars(), 3);
    }

    #[test]
    fn eval() {
        let e = fir_expr().offset(5);
        let mut env = BTreeMap::new();
        env.insert("io".to_string(), 2);
        env.insert("ii".to_string(), 3);
        env.insert("j".to_string(), 7);
        assert_eq!(e.eval(&env), 2 * 32 + 3 + 7 + 5);
    }

    #[test]
    fn value_range_matches_fir_footprint() {
        // Paper: footprint of a[io*32+ii+j] over io<4, ii<32, j<128 is 255
        // elements (0 ..= 254).
        let e = fir_expr();
        let extent = |v: &str| -> Option<u64> {
            match v {
                "io" => Some(4),
                "ii" => Some(32),
                "j" => Some(128),
                _ => None,
            }
        };
        let (lo, hi) = e.value_range(&extent);
        assert_eq!((lo, hi), (0, 254));
        assert_eq!(hi - lo + 1, 255);
    }

    #[test]
    fn shifted_for_unrolling() {
        let e = AffineExpr::var("i").scaled(2).offset(1);
        let e1 = e.shifted("i", 1);
        assert_eq!(e1.constant_term(), 3);
        assert_eq!(e1.coeff("i"), 2);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let e = AffineExpr::var("i") + AffineExpr::var("i").scaled(-1);
        assert_eq!(e.num_vars(), 0);
        assert_eq!(e, AffineExpr::zero());
    }

    #[test]
    fn negative_coefficient_range() {
        let e = AffineExpr::var("i").scaled(-2).offset(10);
        let (lo, hi) = e.value_range(&|v| if v == "i" { Some(4) } else { None });
        assert_eq!((lo, hi), (4, 10));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(fir_expr().to_string(), "ii + 32*io + j");
        assert_eq!(AffineExpr::zero().to_string(), "0");
    }
}
