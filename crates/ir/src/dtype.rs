use std::fmt;

/// Element datatype of a kernel or functional unit.
///
/// OverGen supports integer datatypes from 8 to 64 bits plus single and
/// double precision floating point (paper §III-B). Processing elements are
/// 64-bit wide; narrower datatypes execute as subword SIMD, so the number of
/// SIMD lanes per 64-bit word is `64 / bits()`.
///
/// ```
/// use overgen_ir::DataType;
/// assert_eq!(DataType::I16.subword_lanes(), 4);
/// assert!(DataType::F64.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DataType {
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 single precision float.
    F32,
    /// IEEE-754 double precision float.
    F64,
}

impl DataType {
    /// All supported datatypes, narrowest first.
    pub const ALL: [DataType; 6] = [
        DataType::I8,
        DataType::I16,
        DataType::I32,
        DataType::I64,
        DataType::F32,
        DataType::F64,
    ];

    /// Bit width of one element.
    pub fn bits(self) -> u32 {
        match self {
            DataType::I8 => 8,
            DataType::I16 => 16,
            DataType::I32 => 32,
            DataType::I64 | DataType::F64 => 64,
            DataType::F32 => 32,
        }
    }

    /// Byte width of one element.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits()) / 8
    }

    /// Whether this is a floating-point type (maps to DSP blocks on FPGA).
    pub fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// Number of subword SIMD lanes a 64-bit processing element provides for
    /// this datatype.
    pub fn subword_lanes(self) -> u32 {
        64 / self.bits()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::I8 => "i8",
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_consistent() {
        for dt in DataType::ALL {
            assert_eq!(dt.bytes() * 8, u64::from(dt.bits()));
            assert_eq!(dt.subword_lanes() * dt.bits(), 64);
        }
    }

    #[test]
    fn float_classification() {
        assert!(DataType::F32.is_float());
        assert!(DataType::F64.is_float());
        assert!(!DataType::I8.is_float());
        assert!(!DataType::I64.is_float());
    }

    #[test]
    fn display_matches_paper_table() {
        assert_eq!(DataType::I16.to_string(), "i16");
        assert_eq!(DataType::F64.to_string(), "f64");
    }
}
