//! Kernel intermediate representation for the OverGen reproduction.
//!
//! The original OverGen framework consumes C annotated with `#pragma dsa`
//! hints through an LLVM-based compiler. This crate provides the equivalent
//! substrate for a pure-Rust environment: a typed IR of affine loop nests
//! over declared arrays, with the two pragmas the paper defines
//! (`#pragma dsa config` and `#pragma dsa decouple`) represented as kernel
//! attributes.
//!
//! Everything downstream (the decoupled-spatial compiler, the reuse
//! analysis, the HLS baseline's initiation-interval analysis) operates on
//! this IR.
//!
//! # Example
//!
//! A vector addition, the paper's Figure 2 example:
//!
//! ```
//! use overgen_ir::{KernelBuilder, DataType, Suite, expr};
//!
//! let n = 1024;
//! let kernel = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
//!     .array_input("a", n)
//!     .array_input("b", n)
//!     .array_output("c", n)
//!     .loop_const("i", n)
//!     .assign("c", expr::idx("i"), expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")))
//!     .build()
//!     .expect("valid kernel");
//! assert_eq!(kernel.body().len(), 1);
//! ```

mod affine;
mod dtype;
mod expression;
mod kernel;
mod loops;
mod op;
mod stmt;

pub use affine::AffineExpr;
pub use dtype::DataType;
pub use expression::{expr_ops as expr, ArrayRef, Expr, IndexExpr};
pub use kernel::{
    ArrayDecl, ArrayKind, BuildError, Kernel, KernelBuilder, KernelTraits, Pragmas, Suite, Tuning,
};
pub use loops::{Loop, LoopNest, TripCount};
pub use op::{FuCap, Op, OpClass};
pub use stmt::Stmt;
