use std::fmt;

/// Trip count of a loop.
///
/// OverGen's ISA supports variable trip-count streams natively (inherited
/// from REVEL), while HLS pipelines suffer initiation-interval penalties on
/// them — the distinction drives Table IV and the kernel-tuning study (Q2).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TripCount {
    /// Compile-time constant trip count.
    Const(u64),
    /// Data-dependent trip count bounded by `max` with a typical value of
    /// `expected` iterations.
    Variable {
        /// Upper bound on iterations (the value HLS tuning pads to).
        max: u64,
        /// Expected iterations used for performance estimation.
        expected: f64,
    },
}

impl TripCount {
    /// The value used for performance estimation and simulation.
    pub fn expected(self) -> f64 {
        match self {
            TripCount::Const(n) => n as f64,
            TripCount::Variable { expected, .. } => expected,
        }
    }

    /// The maximum possible iterations.
    pub fn max(self) -> u64 {
        match self {
            TripCount::Const(n) => n,
            TripCount::Variable { max, .. } => max,
        }
    }

    /// Whether the trip count is data dependent.
    pub fn is_variable(self) -> bool {
        matches!(self, TripCount::Variable { .. })
    }
}

impl fmt::Display for TripCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripCount::Const(n) => write!(f, "{n}"),
            TripCount::Variable { max, expected } => write!(f, "var(max={max},exp={expected})"),
        }
    }
}

/// One loop of a nest.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Loop {
    /// Induction variable name, unique within the nest.
    pub var: String,
    /// Trip count.
    pub trip: TripCount,
}

impl Loop {
    /// Convenience constructor for a constant-trip loop.
    pub fn new(var: impl Into<String>, trip: u64) -> Self {
        Loop {
            var: var.into(),
            trip: TripCount::Const(trip),
        }
    }
}

/// A perfect loop nest, outermost loop first.
///
/// The decoupled-spatial transformation operates on the innermost loop body
/// (paper §II-B); imperfect nests are expressed by hoisting outer-loop work
/// into guarded statements, matching how the paper's kernels are written.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoopNest {
    loops: Vec<Loop>,
}

impl LoopNest {
    /// Create a nest from loops listed outermost first.
    pub fn new(loops: Vec<Loop>) -> Self {
        LoopNest { loops }
    }

    /// Loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The innermost loop, if any.
    pub fn innermost(&self) -> Option<&Loop> {
        self.loops.last()
    }

    /// Look up a loop by induction variable.
    pub fn find(&self, var: &str) -> Option<&Loop> {
        self.loops.iter().find(|l| l.var == var)
    }

    /// Extent (trip count max) of a variable; `None` when not a loop var.
    pub fn extent(&self, var: &str) -> Option<u64> {
        self.find(var).map(|l| l.trip.max())
    }

    /// Product of expected trip counts of all loops — the total number of
    /// innermost iterations (the paper's "data traffic" multiplier).
    pub fn total_iterations(&self) -> f64 {
        self.loops.iter().map(|l| l.trip.expected()).product()
    }

    /// Product of expected trip counts of the loops strictly inside
    /// (after) the loop with variable `var`.
    pub fn iterations_inside(&self, var: &str) -> f64 {
        let pos = match self.loops.iter().position(|l| l.var == var) {
            Some(p) => p,
            None => return 1.0,
        };
        self.loops[pos + 1..]
            .iter()
            .map(|l| l.trip.expected())
            .product()
    }

    /// Whether any loop has a data-dependent trip count.
    pub fn has_variable_trip(&self) -> bool {
        self.loops.iter().any(|l| l.trip.is_variable())
    }

    /// Push a new innermost loop.
    pub fn push(&mut self, l: Loop) {
        self.loops.push(l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_nest() -> LoopNest {
        LoopNest::new(vec![
            Loop::new("io", 4),
            Loop::new("j", 128),
            Loop::new("ii", 32),
        ])
    }

    #[test]
    fn totals() {
        let n = fir_nest();
        assert_eq!(n.total_iterations(), (4 * 128 * 32) as f64);
        assert_eq!(n.iterations_inside("io"), (128 * 32) as f64);
        assert_eq!(n.iterations_inside("ii"), 1.0);
        assert_eq!(n.iterations_inside("not_a_loop"), 1.0);
    }

    #[test]
    fn innermost_and_lookup() {
        let n = fir_nest();
        assert_eq!(n.innermost().unwrap().var, "ii");
        assert_eq!(n.extent("j"), Some(128));
        assert_eq!(n.extent("zz"), None);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn variable_trip() {
        let mut n = fir_nest();
        assert!(!n.has_variable_trip());
        n.push(Loop {
            var: "k".into(),
            trip: TripCount::Variable {
                max: 64,
                expected: 32.0,
            },
        });
        assert!(n.has_variable_trip());
        assert_eq!(n.extent("k"), Some(64));
        assert_eq!(n.find("k").unwrap().trip.expected(), 32.0);
    }
}
