//! The simulated-annealing DSE driver (paper Figure 6).

use std::collections::{BTreeMap, BTreeSet};

use overgen_telemetry::{event, span, Counter, Histogram, Rng};

use overgen_adg::{mesh, Adg, MeshSpec, SpadNode, SysAdg, SystemParams};
use overgen_compiler::{compile_variants, CompileOptions};
use overgen_ir::{Expr, FuCap, Kernel, Op};
use overgen_mdfg::Mdfg;
use overgen_model::{accelerator_resources, AnalyticModel, ResourceModel, TimeModel};
use overgen_scheduler::{repair, schedule, RepairOutcome, Schedule};

use crate::system::{system_dse, SystemDseConfig};
use crate::transforms::{random_mutation, TransformCtx};

/// DSE configuration.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Simulated-annealing iterations.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Enable schedule-preserving transformations (§V-B). Disabling this
    /// reproduces the "non-preserved" curves of Figure 20.
    pub schedule_preserving: bool,
    /// Nested system-DSE configuration.
    pub system: SystemDseConfig,
    /// Compiler options for the up-front variant generation.
    pub compile: CompileOptions,
    /// Per-workload weights (defaults to 1.0 each).
    pub weights: BTreeMap<String, f64>,
    /// Mutations applied per proposal.
    pub mutations_per_step: usize,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            iterations: 150,
            seed: 17,
            schedule_preserving: true,
            system: SystemDseConfig::default(),
            compile: CompileOptions::default(),
            weights: BTreeMap::new(),
            mutations_per_step: 2,
        }
    }
}

/// Counters of what the DSE did.
///
/// This is a *snapshot view*: the live values are telemetry
/// [`Counter`]s (named `dse.iterations`, `dse.accepted`, …) registered on
/// the installed collector, and a `DseStats` is the per-run delta read off
/// them when [`Dse::run`] returns. With no collector installed the counters
/// are detached (private to the run) and the semantics are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Proposals evaluated.
    pub iterations: usize,
    /// Proposals accepted.
    pub accepted: usize,
    /// Proposals rejected because some workload had no schedulable variant.
    pub invalid: usize,
    /// Full (from-scratch) scheduling invocations.
    pub full_schedules: usize,
    /// Repair invocations that moved nodes.
    pub repairs: usize,
    /// Repairs that found the schedule intact.
    pub intact: usize,
}

/// The live counters behind [`DseStats`], shared with the installed
/// telemetry registry when one is present.
struct DseCounters {
    iterations: Counter,
    accepted: Counter,
    invalid: Counter,
    full_schedules: Counter,
    repairs: Counter,
    intact: Counter,
    /// Nodes moved per successful repair.
    repair_moved: Histogram,
}

impl DseCounters {
    /// Bind to the current collector's registry, or detached counters when
    /// no collector is installed.
    fn attach() -> Self {
        match overgen_telemetry::current() {
            Some(c) => {
                let r = c.registry();
                DseCounters {
                    iterations: r.counter("dse.iterations"),
                    accepted: r.counter("dse.accepted"),
                    invalid: r.counter("dse.invalid"),
                    full_schedules: r.counter("dse.full_schedules"),
                    repairs: r.counter("dse.repairs"),
                    intact: r.counter("dse.intact"),
                    repair_moved: r.histogram("dse.repair_moved"),
                }
            }
            None => DseCounters {
                iterations: Counter::detached(),
                accepted: Counter::detached(),
                invalid: Counter::detached(),
                full_schedules: Counter::detached(),
                repairs: Counter::detached(),
                intact: Counter::detached(),
                repair_moved: Histogram::detached(),
            },
        }
    }

    /// Absolute counter values (used as a baseline at run start).
    fn totals(&self) -> DseStats {
        DseStats {
            iterations: self.iterations.get() as usize,
            accepted: self.accepted.get() as usize,
            invalid: self.invalid.get() as usize,
            full_schedules: self.full_schedules.get() as usize,
            repairs: self.repairs.get() as usize,
            intact: self.intact.get() as usize,
        }
    }

    /// Per-run delta since `base`.
    fn since(&self, base: &DseStats) -> DseStats {
        let now = self.totals();
        DseStats {
            iterations: now.iterations - base.iterations,
            accepted: now.accepted - base.accepted,
            invalid: now.invalid - base.invalid,
            full_schedules: now.full_schedules - base.full_schedules,
            repairs: now.repairs - base.repairs,
            intact: now.intact - base.intact,
        }
    }
}

/// Result of a DSE run.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The chosen system-level ADG.
    pub sys_adg: SysAdg,
    /// Best schedule per workload (on the chosen hardware).
    pub schedules: BTreeMap<String, Schedule>,
    /// Chosen variant index per workload.
    pub variants: BTreeMap<String, u32>,
    /// Pre-generated mDFG variants per workload (kept so callers can
    /// simulate or re-schedule).
    pub mdfgs: BTreeMap<String, Vec<Mdfg>>,
    /// Final objective: weighted geomean estimated IPC.
    pub objective: f64,
    /// Convergence history: (simulated hours, best objective so far).
    pub history: Vec<(f64, f64)>,
    /// Total simulated DSE hours (Figure 15 accounting).
    pub dse_hours: f64,
    /// Activity counters.
    pub stats: DseStats,
}

/// The DSE driver.
pub struct Dse {
    workloads: Vec<Kernel>,
    cfg: DseConfig,
    time: TimeModel,
}

impl Dse {
    /// Create a DSE over a set of workloads (the domain).
    pub fn new(workloads: Vec<Kernel>, cfg: DseConfig) -> Self {
        Dse {
            workloads,
            cfg,
            time: TimeModel::default(),
        }
    }

    /// The capability pool of a domain: every `(op, dtype)` its kernels
    /// execute (plus the adds implied by accumulation and the selects
    /// implied by guards).
    pub fn cap_pool(workloads: &[Kernel]) -> Vec<FuCap> {
        let mut pool = BTreeSet::new();
        for k in workloads {
            let dt = k.dtype();
            pool.insert(FuCap::new(Op::Add, dt));
            for stmt in k.body() {
                if stmt.guarded {
                    pool.insert(FuCap::new(Op::Select, dt));
                }
                stmt.value.visit(&mut |e| match e {
                    Expr::Binary { op, .. } | Expr::Unary { op, .. } => {
                        pool.insert(FuCap::new(*op, dt));
                    }
                    _ => {}
                });
            }
        }
        pool.into_iter().collect()
    }

    /// Seed accelerator for the annealer: a mesh whose PEs carry the
    /// domain's capability pool, sized so every kernel's narrowest
    /// (unroll-1) variant is guaranteed to fit with headroom.
    pub fn seed_adg(workloads: &[Kernel]) -> Adg {
        let caps: BTreeSet<FuCap> = Self::cap_pool(workloads).into_iter().collect();
        // Size by the largest unroll-1 DFG of the domain.
        let mut max_insts = 8usize;
        let mut max_in = 6usize;
        let mut max_out = 4usize;
        for k in workloads {
            if let Ok(m) = overgen_compiler::lower(
                k,
                0,
                &overgen_compiler::LowerChoices {
                    unroll: 1,
                    ..Default::default()
                },
            ) {
                max_insts = max_insts.max(m.inst_count());
                max_in = max_in.max(m.input_stream_count());
                max_out = max_out.max(m.output_stream_count());
            }
        }
        let cols = 5usize;
        let rows = (max_insts + 4).div_ceil(cols).max(3);
        mesh(&MeshSpec {
            rows,
            cols,
            caps,
            in_ports: max_in + 1,
            out_ports: max_out + 1,
            port_width_bytes: 16,
            dma_bw: 32,
            spads: vec![SpadNode {
                capacity_kb: 16,
                bw_bytes: 32,
                indirect: true,
            }],
            with_gen: true,
            with_rec: true,
            with_reg: true,
        })
    }

    /// Run the exploration.
    pub fn run(&self) -> DseResult {
        let _run_span = span!(
            "dse.run",
            seed = self.cfg.seed,
            iterations = self.cfg.iterations,
            workloads = self.workloads.len(),
            preserving = self.cfg.schedule_preserving,
        );
        let mut rng = Rng::seed_from_u64(self.cfg.seed);
        let model: &dyn ResourceModel = &AnalyticModel;
        let caps = Self::cap_pool(&self.workloads);

        // Up-front variant generation (once; §V-A).
        let mut mdfgs: BTreeMap<String, Vec<Mdfg>> = BTreeMap::new();
        {
            let _span = span!("dse.compile_variants");
            for k in &self.workloads {
                let vs = compile_variants(k, &self.cfg.compile).unwrap_or_default();
                mdfgs.insert(k.name().to_string(), vs);
            }
        }

        let mut sim_seconds = 0.0f64;
        let counters = DseCounters::attach();
        let base = counters.totals();

        let mut cur_adg = Self::seed_adg(&self.workloads);
        let mut cur_state = self.evaluate(
            &cur_adg,
            &mdfgs,
            &BTreeMap::new(),
            model,
            &mut sim_seconds,
            &counters,
        );
        // The seed must evaluate; grow ports until it does.
        let mut guard = 0;
        while cur_state.is_none() && guard < 8 {
            // widen everything as a fallback seed fix
            for id in cur_adg.nodes_of_kind(overgen_adg::NodeKind::InPort) {
                if let Some(overgen_adg::AdgNode::InPort(p)) = cur_adg.node_mut(id) {
                    p.width_bytes = (p.width_bytes * 2).min(64);
                }
            }
            cur_state = self.evaluate(
                &cur_adg,
                &mdfgs,
                &BTreeMap::new(),
                model,
                &mut sim_seconds,
                &counters,
            );
            guard += 1;
        }
        let mut cur = cur_state.expect("seed accelerator must schedule the domain");

        let mut best_adg = cur_adg.clone();
        let mut best = cur.clone();
        let mut history = vec![(sim_seconds / 3600.0, best.objective)];

        let t0 = (cur.objective * 0.25).max(1e-3);
        for it in 0..self.cfg.iterations {
            let _iter_span = span!("dse.iteration", iter = it);
            counters.iterations.inc();
            let temp = t0 * (0.985f64).powi(it as i32);

            // Propose.
            let mut prop_adg = cur_adg.clone();
            let mut prop_schedules: Vec<Schedule> = cur.schedules.values().cloned().collect();
            let mut kinds = String::new();
            {
                // "ADG* is constructed using a combination of random and
                // schedule-preserving transformations" (§V-A): preserving
                // guidance applies to most mutations, but some stay fully
                // random so the annealer can restructure used hardware.
                for _ in 0..self.cfg.mutations_per_step {
                    let preserving = self.cfg.schedule_preserving && rng.gen_bool(0.7);
                    let mut ctx = TransformCtx {
                        cap_pool: &caps,
                        schedules: &mut prop_schedules,
                        preserving,
                    };
                    let m = random_mutation(&mut prop_adg, &mut ctx, &mut rng);
                    if !kinds.is_empty() {
                        kinds.push(',');
                    }
                    kinds.push_str(m.kind());
                    if preserving {
                        kinds.push('*');
                    }
                }
            }
            event!(
                "dse.propose",
                iter = it,
                temp = temp,
                mutations = kinds.as_str()
            );
            sim_seconds += 0.5; // proposal overhead

            let prior: BTreeMap<String, Schedule> = prop_schedules
                .into_iter()
                .map(|s| (s.mdfg_name.clone(), s))
                .collect();
            let Some(prop) = self.evaluate(
                &prop_adg,
                &mdfgs,
                &prior,
                model,
                &mut sim_seconds,
                &counters,
            ) else {
                counters.invalid.inc();
                event!("dse.invalid", iter = it);
                history.push((sim_seconds / 3600.0, best.objective));
                continue;
            };

            let delta = prop.combined - cur.combined;
            let accept = prop.combined >= cur.combined || rng.gen_f64() < (delta / temp).exp();
            if accept {
                counters.accepted.inc();
                event!(
                    "dse.accept",
                    iter = it,
                    delta = delta,
                    temp = temp,
                    objective = prop.objective,
                );
                cur_adg = prop_adg;
                cur = prop;
                if cur.combined > best.combined {
                    best = cur.clone();
                    best_adg = cur_adg.clone();
                }
            } else {
                event!("dse.reject", iter = it, delta = delta, temp = temp);
            }
            history.push((sim_seconds / 3600.0, best.objective));
        }

        let stats = counters.since(&base);
        event!(
            "dse.done",
            objective = best.objective,
            accepted = stats.accepted,
            invalid = stats.invalid,
            dse_hours = sim_seconds / 3600.0,
        );
        DseResult {
            sys_adg: SysAdg::new(best_adg, best.sys),
            schedules: best.schedules,
            variants: best.variants,
            mdfgs,
            objective: best.objective,
            history,
            dse_hours: sim_seconds / 3600.0,
            stats,
        }
    }

    fn evaluate(
        &self,
        adg: &Adg,
        mdfgs: &BTreeMap<String, Vec<Mdfg>>,
        prior: &BTreeMap<String, Schedule>,
        model: &dyn ResourceModel,
        sim_seconds: &mut f64,
        counters: &DseCounters,
    ) -> Option<EvalState> {
        let sys_probe = SysAdg::new(adg.clone(), SystemParams::default());
        if sys_probe.validate().is_err() {
            return None;
        }
        let adg_nodes = adg.node_count();

        let mut schedules = BTreeMap::new();
        let mut variants = BTreeMap::new();
        for k in &self.workloads {
            let name = k.name().to_string();
            let vs = mdfgs.get(&name)?;
            let mut found = None;
            for v in vs {
                // Prefer repairing the prior schedule when it is for the
                // same variant.
                let attempt = match prior.get(&name) {
                    Some(p) if p.variant == v.variant() => match repair(p, v, &sys_probe) {
                        Ok((s, RepairOutcome::Intact)) => {
                            counters.intact.inc();
                            event!("dse.repair", workload = name.as_str(), outcome = "intact");
                            *sim_seconds += self.time.repair_seconds(2, adg_nodes);
                            Some(s)
                        }
                        Ok((s, RepairOutcome::Repaired { moved })) => {
                            counters.repairs.inc();
                            counters.repair_moved.record(moved as u64);
                            event!(
                                "dse.repair",
                                workload = name.as_str(),
                                outcome = "repaired",
                                moved = moved,
                            );
                            *sim_seconds += self.time.repair_seconds(moved.max(1), adg_nodes);
                            Some(s)
                        }
                        Err(_) => {
                            counters.full_schedules.inc();
                            event!(
                                "dse.repair",
                                workload = name.as_str(),
                                outcome = "reschedule",
                            );
                            *sim_seconds += self.time.schedule_seconds(v.node_count(), adg_nodes);
                            schedule(v, &sys_probe, Some(p)).ok()
                        }
                    },
                    _ => {
                        counters.full_schedules.inc();
                        *sim_seconds += self.time.schedule_seconds(v.node_count(), adg_nodes);
                        schedule(v, &sys_probe, None).ok()
                    }
                };
                if let Some(s) = attempt {
                    found = Some((v, s));
                    break;
                }
            }
            let (v, s) = found?;
            variants.insert(name.clone(), v.variant());
            schedules.insert(name, s);
        }

        // Nested system DSE.
        let per: Vec<(&Mdfg, &overgen_model::Placement, f64)> = self
            .workloads
            .iter()
            .map(|k| {
                let name = k.name();
                let variant = variants[name];
                let m = mdfgs[name]
                    .iter()
                    .find(|v| v.variant() == variant)
                    .expect("variant exists");
                let placement = &schedules[name].placement;
                let w = self.cfg.weights.get(name).copied().unwrap_or(1.0);
                (m, placement, w)
            })
            .collect();
        let (sys, _raw) = system_dse(adg, &per, model, &self.cfg.system)?;

        // Objective: estimated IPC weighted-geomean (including the
        // schedule's balance penalty) as primary, small pressure on
        // resources-per-accelerator as secondary.
        let objective = {
            let ipcs: Vec<(f64, f64)> = self
                .workloads
                .iter()
                .map(|k| {
                    let s = &schedules[k.name()];
                    let variant = variants[k.name()];
                    let m = mdfgs[k.name()]
                        .iter()
                        .find(|v| v.variant() == variant)
                        .expect("variant exists");
                    let spad_bw: f64 = adg
                        .nodes()
                        .filter_map(|(_, n)| n.as_spad().map(|sp| f64::from(sp.bw_bytes)))
                        .sum();
                    let est = overgen_model::estimate_ipc(m, &sys, spad_bw, &s.placement);
                    let w = self.cfg.weights.get(k.name()).copied().unwrap_or(1.0);
                    (
                        est.ipc * s.balance_penalty * f64::from(sys.tiles) / f64::from(sys.tiles),
                        w,
                    )
                })
                .collect();
            overgen_model::weighted_geomean_ipc(&ipcs)
        };
        let acc = accelerator_resources(adg, model);
        let combined = objective * (1.0 - 0.05 * (acc.lut / 1.0e6).min(1.0));

        Some(EvalState {
            sys,
            schedules,
            variants,
            objective,
            combined,
        })
    }
}

#[derive(Debug, Clone)]
struct EvalState {
    sys: SystemParams,
    schedules: BTreeMap<String, Schedule>,
    variants: BTreeMap<String, u32>,
    objective: f64,
    combined: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn vecadd() -> Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 4096)
            .array_input("b", 4096)
            .array_output("c", 4096)
            .loop_const("i", 4096)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn fir() -> Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    fn quick_cfg(iters: usize, preserving: bool) -> DseConfig {
        DseConfig {
            iterations: iters,
            schedule_preserving: preserving,
            compile: CompileOptions {
                max_unroll: 4,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn cap_pool_covers_domain() {
        let pool = Dse::cap_pool(&[vecadd(), fir()]);
        assert!(pool.contains(&FuCap::new(Op::Add, DataType::I64)));
        assert!(pool.contains(&FuCap::new(Op::Mul, DataType::I64)));
    }

    #[test]
    fn seed_schedules_and_dse_improves() {
        let dse = Dse::new(vec![vecadd(), fir()], quick_cfg(30, true));
        let r = dse.run();
        assert!(r.objective > 0.0);
        assert_eq!(r.schedules.len(), 2);
        assert!(r.history.len() > 10);
        // history is monotone non-decreasing (best-so-far)
        for w in r.history.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        // final hardware validates and fits
        r.sys_adg.validate().unwrap();
        assert!(r.dse_hours > 0.0);
    }

    #[test]
    fn preserving_reduces_full_schedules() {
        let with = Dse::new(vec![fir()], quick_cfg(40, true)).run();
        let without = Dse::new(
            vec![fir()],
            DseConfig {
                seed: 17,
                ..quick_cfg(40, false)
            },
        )
        .run();
        // preserving mode should do more repairs/intact checks and fewer
        // full schedules per iteration
        let with_rate = with.stats.full_schedules as f64 / with.stats.iterations.max(1) as f64;
        let without_rate =
            without.stats.full_schedules as f64 / without.stats.iterations.max(1) as f64;
        assert!(
            with_rate <= without_rate + 0.5,
            "with {} vs without {}",
            with_rate,
            without_rate
        );
        assert!(with.stats.intact + with.stats.repairs > 0);
    }

    #[test]
    fn weights_steer_objective() {
        let mut cfg = quick_cfg(10, true);
        cfg.weights.insert("fir".into(), 5.0);
        let r = Dse::new(vec![vecadd(), fir()], cfg).run();
        assert!(r.objective > 0.0);
    }
}
