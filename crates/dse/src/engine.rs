//! The simulated-annealing DSE driver (paper Figure 6), parallelized on
//! two axes with `std::thread::scope` only:
//!
//! * **intra-proposal fan-out** — every workload's schedule/repair runs on
//!   a worker pool, and the nested system DSE sweeps tile counts in
//!   parallel;
//! * **multi-chain annealing** — [`DseConfig::chains`] independent chains
//!   (seeds derived with [`Rng::split`]) run concurrently and exchange
//!   their best state every [`DseConfig::exchange_interval`] iterations.
//!
//! Determinism is by construction: workers emit telemetry through
//! capture/replay (`overgen_telemetry::capture`), per-workload results and
//! simulated-time deltas are folded in workload-name order, and chain
//! traces replay in chain order — so the `DseResult` and the
//! deterministic-clock JSONL trace are byte-identical for any thread
//! count.
//!
//! Proposal *evaluation* — scheduling, the nested system DSE, performance
//! estimation, memoization — lives in [`crate::eval::EvalPipeline`], and
//! the mapping from an evaluation report to scalar fitness lives in
//! [`crate::Objective`]. This driver only proposes mutations, runs the
//! accept/reject rule on the fitness the pipeline returns, exchanges best
//! states among chains, and tracks the Pareto frontier of visited designs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

use overgen_telemetry::profile::{maybe_phase, NO_CLASS};
use overgen_telemetry::{
    capture, capture_isolated, event, replay, span, Counter, FieldValue, Phase, Registry, Rng,
    SpanGuard,
};

use overgen_adg::{mesh, Adg, MeshSpec, SpadNode, StableHasher, SysAdg};
use overgen_compiler::{compile_variants, CompileOptions};
use overgen_ir::{Expr, FuCap, Kernel, Op};
use overgen_mdfg::Mdfg;
use overgen_model::{AnalyticModel, ResourceModel, TimeModel};
use overgen_scheduler::{Schedule, ScheduleFootprint};

use crate::checkpoint::{Checkpoint, CheckpointConfig};
use crate::eval::{EvalPipeline, EvalState, ParetoFront, ParetoPoint};
use crate::heartbeat::{Heartbeat, HeartbeatConfig};
use crate::objective::Objective;
use crate::pool::fan_out;
use crate::rewrite::{AdgDelta, RuleSet};
use crate::system::SystemDseConfig;
use crate::transforms::TransformCtx;

/// DSE configuration.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Simulated-annealing iterations (total, per chain).
    pub iterations: usize,
    /// RNG seed. Chain RNGs are derived from it with [`Rng::split`], so
    /// every chain explores a distinct but reproducible trajectory.
    pub seed: u64,
    /// Enable schedule-preserving transformations (§V-B). Disabling this
    /// reproduces the "non-preserved" curves of Figure 20.
    pub schedule_preserving: bool,
    /// Fitness policy: how an evaluation report becomes the scalar the
    /// annealer optimizes. The default ([`Objective::WeightedGeomeanIpc`])
    /// reproduces the classic weighted-geomean-IPC behavior bit-for-bit;
    /// [`Objective::ConstrainedIpc`] adds a hard device budget. The
    /// objective is folded into the config hash, so it also keys the
    /// evaluation caches and checkpoint compatibility.
    pub objective: Objective,
    /// Nested system-DSE configuration.
    pub system: SystemDseConfig,
    /// Compiler options for the up-front variant generation.
    pub compile: CompileOptions,
    /// Per-workload weights (defaults to 1.0 each).
    pub weights: BTreeMap<String, f64>,
    /// Mutations applied per proposal.
    pub mutations_per_step: usize,
    /// Worker threads for intra-proposal fan-out (per-workload
    /// scheduling, system-DSE sweep) and for running chains concurrently.
    /// `0` = one worker per available core. The result and trace are
    /// independent of this value.
    pub threads: usize,
    /// Independent annealing chains run as an island model with periodic
    /// best-state exchange. The result depends on `chains` (more chains =
    /// more exploration) but not on how many threads execute them.
    pub chains: usize,
    /// Iterations between best-state exchanges among chains.
    pub exchange_interval: usize,
    /// Memoize evaluations and system-DSE winners by ADG fingerprint.
    pub cache: bool,
    /// Compound proposals: maximum rewrite rules chained into one
    /// proposal step. `1` (the default) applies exactly one rule per step
    /// and is bit-identical to the historical single-mutation dispatch;
    /// `K > 1` draws 1..=K rules per step — the first from the full
    /// registry, follow-ups from the benign (non-removing) subset — with
    /// their deltas and inferred footprints merged into the proposal and
    /// the rule chain folded into evaluation cache keys. Folded into the
    /// config hash (only when enabled, so default hashes are unchanged)
    /// and persisted in checkpoints.
    pub compound: usize,
    /// Take the incremental repair fast path when a mutation's dirty set is
    /// empty (the default). When `false` (env `OVERGEN_REPAIR=0` in the
    /// bench harness), eligible repairs run a silent full placement and
    /// assert it equals the fast reconstruction — results, counters, and
    /// traces must be byte-identical in both modes.
    pub repair: bool,
    /// Periodic crash-safe checkpointing: every `interval` proposals the
    /// full annealer state is atomically written to `path`, and
    /// [`Checkpoint::load`] + [`Checkpoint::resume`] continue the run with
    /// byte-identical results (see `checkpoint.rs` and `DESIGN.md` §9).
    /// `None` disables checkpointing.
    pub checkpoint: Option<CheckpointConfig>,
    /// Graceful-stop proposal budget: stop at the first segment boundary
    /// once this many proposals have run per chain, finalize a checkpoint
    /// (when configured) instead of tearing down mid-proposal, and return
    /// with [`DseResult::completed`] `false`. `None` = run to
    /// `iterations`. Not persisted in checkpoints.
    pub max_proposals: Option<usize>,
    /// Graceful-stop wall-clock budget in seconds, checked at segment
    /// boundaries. Inherently non-deterministic in *where* it stops, but
    /// the finalized checkpoint still resumes deterministically. Not
    /// persisted in checkpoints.
    pub max_wall_seconds: Option<f64>,
    /// Periodic live progress gauges (`dse.heartbeat.*`), refreshed at
    /// segment boundaries. Registry-only and trace-invisible, so traces
    /// stay byte-identical with the heartbeat on or off. Like the stop
    /// budgets, not persisted in checkpoints. `None` disables it.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Persistent shared evaluation store ([`crate::EvalStore`]), consulted
    /// and fed on the in-memory caches' miss path when `cache` is on. A
    /// store-served artifact is byte-identical to recomputation, so
    /// results, counters, and traces are independent of store contents
    /// (DESIGN.md §13). Not part of the config hash; not persisted in
    /// checkpoints. `None` runs fully in-memory.
    pub store: Option<std::sync::Arc<crate::EvalStore>>,
    /// Cooperative cancellation flag for service-managed runs. When raised
    /// the run stops at the next segment boundary with `stop_reason`
    /// `"cancelled"`, finalizing a checkpoint when configured. Like the
    /// stop budgets, not hashed and not persisted.
    pub stop: Option<StopFlag>,
}

/// A sharable cooperative-cancellation flag for [`DseConfig::stop`]: cheap
/// to clone, raised once, never lowered.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl StopFlag {
    /// A fresh, unraised flag.
    pub fn new() -> StopFlag {
        StopFlag::default()
    }

    /// Request a graceful stop at the next segment boundary.
    pub fn raise(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Has a stop been requested?
    pub fn raised(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            iterations: 150,
            seed: 17,
            schedule_preserving: true,
            objective: Objective::default(),
            system: SystemDseConfig::default(),
            compile: CompileOptions::default(),
            weights: BTreeMap::new(),
            mutations_per_step: 2,
            threads: 1,
            chains: 1,
            exchange_interval: 25,
            cache: true,
            compound: 1,
            repair: true,
            checkpoint: None,
            max_proposals: None,
            max_wall_seconds: None,
            heartbeat: None,
            store: None,
            stop: None,
        }
    }
}

/// Why a DSE run could not start or continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The seed accelerator could not schedule every workload in the
    /// domain, even after repeatedly widening its ports.
    UnschedulableSeed {
        /// Port-widening rounds attempted before giving up.
        widenings: usize,
    },
    /// A checkpoint could not be written, read, or resumed. Checkpoint
    /// write failures are hard errors: silently continuing would leave the
    /// user believing the run is crash-safe when it is not.
    Checkpoint(String),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::UnschedulableSeed { widenings } => write!(
                f,
                "seed accelerator cannot schedule the domain \
                 (after {widenings} port-widening rounds)"
            ),
            DseError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for DseError {}

/// Counters of what the DSE did.
///
/// This is a *snapshot view*: the live values are telemetry
/// [`Counter`]s (named `dse.iterations`, `dse.accepted`, …) registered on
/// the installed collector, and a `DseStats` is the per-run delta read off
/// them when [`Dse::run`] returns. With no collector installed the counters
/// live on a private run registry and the semantics are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Proposals evaluated.
    pub iterations: usize,
    /// Proposals accepted.
    pub accepted: usize,
    /// Proposals rejected because some workload had no schedulable variant.
    pub invalid: usize,
    /// Full (from-scratch) scheduling invocations.
    pub full_schedules: usize,
    /// Repair invocations that moved nodes.
    pub repairs: usize,
    /// Repairs that found the schedule intact.
    pub intact: usize,
    /// Evaluations served from the fingerprint cache.
    pub cache_hits: usize,
    /// Evaluations computed fresh (distinct design points visited).
    pub cache_misses: usize,
    /// Repairs resolved on the incremental fast path (empty dirty set — no
    /// placement search ran).
    pub repair_fast: usize,
    /// Repairs that fell back to a seeded full placement.
    pub repair_fallback: usize,
    /// Proposals rejected by the objective's hard resource budget before
    /// any scheduling work (only [`Objective::ConstrainedIpc`] rejects;
    /// always 0 under the default objective).
    pub infeasible: usize,
}

impl DseStats {
    /// Field-wise sum: stats a checkpoint accumulated before the cut plus
    /// the delta the resumed run adds on top.
    pub fn merged(&self, other: &DseStats) -> DseStats {
        DseStats {
            iterations: self.iterations + other.iterations,
            accepted: self.accepted + other.accepted,
            invalid: self.invalid + other.invalid,
            full_schedules: self.full_schedules + other.full_schedules,
            repairs: self.repairs + other.repairs,
            intact: self.intact + other.intact,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            repair_fast: self.repair_fast + other.repair_fast,
            repair_fallback: self.repair_fallback + other.repair_fallback,
            infeasible: self.infeasible + other.infeasible,
        }
    }
}

/// Live counters the driver updates directly. Everything evaluation-side
/// (`dse.full_schedules`, `dse.repairs`, `dse.intact`, `dse.cache.*`,
/// `dse.eval.infeasible`, `sched.*`) is owned by the evaluation pipeline
/// or incremented inside isolated captures and reaches the run registry
/// through [`Registry::merge_from`] — identically on a cache miss and on
/// every hit.
struct DseCounters {
    iterations: Counter,
    accepted: Counter,
    invalid: Counter,
}

impl DseCounters {
    fn attach(r: &Registry) -> Self {
        DseCounters {
            iterations: r.counter("dse.iterations"),
            accepted: r.counter("dse.accepted"),
            invalid: r.counter("dse.invalid"),
        }
    }
}

/// Absolute counter values on `reg` (used as a baseline at run start).
fn stat_totals(reg: &Registry) -> DseStats {
    DseStats {
        iterations: reg.counter_value("dse.iterations") as usize,
        accepted: reg.counter_value("dse.accepted") as usize,
        invalid: reg.counter_value("dse.invalid") as usize,
        full_schedules: reg.counter_value("dse.full_schedules") as usize,
        repairs: reg.counter_value("dse.repairs") as usize,
        intact: reg.counter_value("dse.intact") as usize,
        cache_hits: reg.counter_value("dse.cache.hit") as usize,
        cache_misses: reg.counter_value("dse.cache.miss") as usize,
        repair_fast: reg.counter_value("scheduler.repair.fast") as usize,
        repair_fallback: reg.counter_value("scheduler.repair.fallback") as usize,
        infeasible: reg.counter_value("dse.eval.infeasible") as usize,
    }
}

pub(crate) fn stat_delta(reg: &Registry, base: &DseStats) -> DseStats {
    let now = stat_totals(reg);
    DseStats {
        iterations: now.iterations - base.iterations,
        accepted: now.accepted - base.accepted,
        invalid: now.invalid - base.invalid,
        full_schedules: now.full_schedules - base.full_schedules,
        repairs: now.repairs - base.repairs,
        intact: now.intact - base.intact,
        cache_hits: now.cache_hits - base.cache_hits,
        cache_misses: now.cache_misses - base.cache_misses,
        repair_fast: now.repair_fast - base.repair_fast,
        repair_fallback: now.repair_fallback - base.repair_fallback,
        infeasible: now.infeasible - base.infeasible,
    }
}

/// Result of a DSE run.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The chosen system-level ADG.
    pub sys_adg: SysAdg,
    /// Best schedule per workload (on the chosen hardware).
    pub schedules: BTreeMap<String, Schedule>,
    /// Chosen variant index per workload.
    pub variants: BTreeMap<String, u32>,
    /// Pre-generated mDFG variants per workload (kept so callers can
    /// simulate or re-schedule).
    pub mdfgs: BTreeMap<String, Vec<Mdfg>>,
    /// Final objective: weighted geomean estimated IPC.
    pub objective: f64,
    /// Convergence history of the winning chain: (simulated hours, best
    /// objective so far).
    pub history: Vec<(f64, f64)>,
    /// Total simulated DSE hours (Figure 15 accounting): chains run
    /// concurrently, so this is the *maximum* over chains, not the sum.
    pub dse_hours: f64,
    /// Activity counters (summed over all chains; for a resumed run,
    /// summed over every leg of the run).
    pub stats: DseStats,
    /// Non-dominated (IPC, accelerator-resources) frontier over every
    /// valid design point any chain evaluated, merged in chain-index
    /// order. Deterministic and independent of thread count.
    pub pareto: ParetoFront,
    /// `true` when the run reached `iterations`; `false` when a graceful
    /// stop ([`DseConfig::max_proposals`] / `max_wall_seconds`) ended it
    /// early with a finalized checkpoint to resume from.
    pub completed: bool,
}

/// One annealing chain's mutable state. `Clone` + `pub(crate)` so
/// checkpoints can snapshot and rebuild it (`checkpoint.rs`).
#[derive(Clone)]
pub(crate) struct ChainState {
    pub(crate) rng: Rng,
    pub(crate) cur_adg: Adg,
    pub(crate) cur: EvalState,
    pub(crate) best_adg: Adg,
    pub(crate) best: EvalState,
    pub(crate) sim_seconds: f64,
    pub(crate) history: Vec<(f64, f64)>,
    pub(crate) t0: f64,
    pub(crate) pareto: ParetoFront,
}

/// The DSE driver.
pub struct Dse {
    pub(crate) workloads: Vec<Kernel>,
    pub(crate) cfg: DseConfig,
    time: TimeModel,
}

impl Dse {
    /// Create a DSE over a set of workloads (the domain). Workloads are
    /// kept sorted by name: name order is the canonical fold order for all
    /// parallel per-workload work.
    pub fn new(mut workloads: Vec<Kernel>, cfg: DseConfig) -> Self {
        workloads.sort_by(|a, b| a.name().cmp(b.name()));
        Dse {
            workloads,
            cfg,
            time: TimeModel::default(),
        }
    }

    /// The capability pool of a domain: every `(op, dtype)` its kernels
    /// execute (plus the adds implied by accumulation and the selects
    /// implied by guards).
    pub fn cap_pool(workloads: &[Kernel]) -> Vec<FuCap> {
        let mut pool = BTreeSet::new();
        for k in workloads {
            let dt = k.dtype();
            pool.insert(FuCap::new(Op::Add, dt));
            for stmt in k.body() {
                if stmt.guarded {
                    pool.insert(FuCap::new(Op::Select, dt));
                }
                stmt.value.visit(&mut |e| match e {
                    Expr::Binary { op, .. } | Expr::Unary { op, .. } => {
                        pool.insert(FuCap::new(*op, dt));
                    }
                    _ => {}
                });
            }
        }
        pool.into_iter().collect()
    }

    /// Seed accelerator for the annealer: a mesh whose PEs carry the
    /// domain's capability pool, sized so every kernel's narrowest
    /// (unroll-1) variant is guaranteed to fit with headroom.
    pub fn seed_adg(workloads: &[Kernel]) -> Adg {
        let caps: BTreeSet<FuCap> = Self::cap_pool(workloads).into_iter().collect();
        // Size by the largest unroll-1 DFG of the domain.
        let mut max_insts = 8usize;
        let mut max_in = 6usize;
        let mut max_out = 4usize;
        for k in workloads {
            if let Ok(m) = overgen_compiler::lower(
                k,
                0,
                &overgen_compiler::LowerChoices {
                    unroll: 1,
                    ..Default::default()
                },
            ) {
                max_insts = max_insts.max(m.inst_count());
                max_in = max_in.max(m.input_stream_count());
                max_out = max_out.max(m.output_stream_count());
            }
        }
        let cols = 5usize;
        let rows = (max_insts + 4).div_ceil(cols).max(3);
        mesh(&MeshSpec {
            rows,
            cols,
            caps,
            in_ports: max_in + 1,
            out_ports: max_out + 1,
            port_width_bytes: 16,
            dma_bw: 32,
            spads: vec![SpadNode {
                capacity_kb: 16,
                bw_bytes: 32,
                indirect: true,
            }],
            with_gen: true,
            with_rec: true,
            with_reg: true,
        })
    }

    /// Everything outside the ADG that evaluation outcomes depend on —
    /// including the objective. Folded into every cache key so a `Memo`
    /// never confuses two configurations (cheap insurance, even though
    /// caches are per-run), and into checkpoints so a run can only resume
    /// under the configuration that produced it.
    pub(crate) fn config_hash(cfg: &DseConfig) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(cfg.system.device.name);
        h.write_f64(cfg.system.device.total.lut);
        h.write_f64(cfg.system.device.total.ff);
        h.write_f64(cfg.system.device.total.bram);
        h.write_f64(cfg.system.device.total.dsp);
        h.write_f64(cfg.system.util_cap);
        h.write_u64(u64::from(cfg.system.max_tiles));
        h.write_u64(u64::from(cfg.system.dram_channels));
        for grid in [
            &cfg.system.l2_banks_grid,
            &cfg.system.l2_kb_grid,
            &cfg.system.noc_bw_grid,
        ] {
            h.write_u64(grid.len() as u64);
            for v in grid {
                h.write_u64(u64::from(*v));
            }
        }
        h.write_u64(cfg.weights.len() as u64);
        for (name, w) in &cfg.weights {
            h.write_str(name);
            h.write_f64(*w);
        }
        cfg.objective.hash_into(&mut h);
        // Folded in only when non-default so every pre-existing cache key,
        // checkpoint hash, and golden trace stays byte-identical for the
        // historical Estimate backend.
        match cfg.system.backend {
            crate::system::SystemDseBackend::Estimate => {}
            crate::system::SystemDseBackend::Simulate { prune } => {
                h.write_str("backend:simulate");
                h.write_u64(u64::from(prune));
            }
        }
        // Same conditional-fold contract for compound proposals: the
        // default (off, = 1) keeps historical hashes.
        if cfg.compound > 1 {
            h.write_str("compound");
            h.write_u64(cfg.compound as u64);
        }
        h.finish()
    }

    /// Run the exploration. Fails with [`DseError::UnschedulableSeed`]
    /// when the domain cannot even be scheduled on a widened seed mesh.
    pub fn run(&self) -> Result<DseResult, DseError> {
        let chains = self.cfg.chains.max(1);
        let threads = match self.cfg.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            t => t,
        };
        let run_span = span!(
            "dse.run",
            seed = self.cfg.seed,
            iterations = self.cfg.iterations,
            workloads = self.workloads.len(),
            preserving = self.cfg.schedule_preserving,
            chains = chains,
        );
        let model: &dyn ResourceModel = &AnalyticModel;

        // Up-front variant generation (once; §V-A).
        let mut mdfgs: BTreeMap<String, Vec<Mdfg>> = BTreeMap::new();
        {
            let _span = span!("dse.compile_variants");
            let _timer = maybe_phase(Phase::Compile, NO_CLASS);
            for k in &self.workloads {
                let vs = compile_variants(k, &self.cfg.compile).unwrap_or_default();
                mdfgs.insert(k.name().to_string(), vs);
            }
        }

        // The run registry: the ambient collector's when telemetry is on,
        // a private one otherwise. Stats are deltas against it either way.
        let ambient_registry = overgen_telemetry::current().map(|c| c.registry().clone());
        let run_registry = ambient_registry.unwrap_or_default();
        let counters = DseCounters::attach(&run_registry);
        let pipe = EvalPipeline::new(
            &self.workloads,
            &self.cfg,
            &self.time,
            &mdfgs,
            model,
            &run_registry,
            Self::config_hash(&self.cfg),
            threads,
            None,
        );
        let base = stat_totals(&run_registry);

        // Seed: evaluate, widening ports until the domain schedules.
        let mut cur_adg = Self::seed_adg(&self.workloads);
        let mut seed_sim = 0.0f64;
        let mut widenings = 0usize;
        let seed_state = loop {
            let (state, sim) = pipe.evaluate(&cur_adg, &BTreeMap::new(), ScheduleFootprint::Pure);
            seed_sim += sim;
            if let Some(s) = state {
                break s;
            }
            if widenings >= 8 {
                return Err(DseError::UnschedulableSeed { widenings });
            }
            // Widen every input port as a fallback seed fix.
            for id in cur_adg.nodes_of_kind(overgen_adg::NodeKind::InPort) {
                if let Some(overgen_adg::AdgNode::InPort(p)) = cur_adg.node_mut(id) {
                    p.width_bytes = (p.width_bytes * 2).min(64);
                }
            }
            widenings += 1;
        };

        // Chains all start from the same seed state with split-derived
        // RNGs, and from a frontier holding just the seed point.
        let t0 = (seed_state.objective * 0.25).max(1e-3);
        let seed_pareto = ParetoFront::from_points([ParetoPoint {
            ipc: seed_state.objective,
            resources: seed_state.resources,
            placement: seed_state.placement,
        }]);
        let mut master = Rng::seed_from_u64(self.cfg.seed);
        let states: Vec<ChainState> = (0..chains)
            .map(|_| ChainState {
                rng: master.split(),
                cur_adg: cur_adg.clone(),
                cur: seed_state.clone(),
                best_adg: cur_adg.clone(),
                best: seed_state.clone(),
                sim_seconds: seed_sim,
                history: vec![(seed_sim / 3600.0, seed_state.objective)],
                t0,
                pareto: seed_pareto.clone(),
            })
            .collect();

        let out = self.run_loop(
            &pipe,
            &counters,
            states,
            0,
            DseStats::default(),
            base,
            &run_span,
        )?;
        Ok(DseResult {
            sys_adg: SysAdg::new(out.champ.best_adg, out.champ.best.sys),
            schedules: out.champ.best.schedules,
            variants: out.champ.best.variants,
            mdfgs,
            objective: out.champ.best.objective,
            history: out.champ.history,
            dse_hours: out.dse_hours,
            stats: out.stats,
            pareto: out.pareto,
            completed: out.completed,
        })
    }

    /// Continue a checkpointed run: rebuild the evaluation pipeline with
    /// warmed caches, restore the telemetry cursor and re-enter the
    /// `dse.run` span, then run the shared annealing loop from `ck.done`.
    /// The seed evaluation is skipped entirely — the chains carry their
    /// state.
    pub(crate) fn resume_from(&self, ck: &Checkpoint) -> Result<DseResult, DseError> {
        let threads = match self.cfg.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            t => t,
        };
        // Variants are recompiled rather than persisted (large, and a
        // deterministic function of the kernels). The interrupted run
        // emitted its `dse.compile_variants` span *before* the cursor, so
        // recompilation runs under a discarded capture collector and the
        // resumed trace continues exactly at the cursor.
        let (mdfgs, _trace, _registry) = capture_isolated(|| {
            let mut m: BTreeMap<String, Vec<Mdfg>> = BTreeMap::new();
            for k in &self.workloads {
                let vs = compile_variants(k, &self.cfg.compile).unwrap_or_default();
                m.insert(k.name().to_string(), vs);
            }
            m
        });

        let collector = overgen_telemetry::current();
        if let (Some(c), Some(cur)) = (collector.as_ref(), ck.cursor.as_ref()) {
            c.restore_cursor(cur.seq, cur.tick);
        }
        let run_span = SpanGuard::reenter(
            "dse.run",
            ck.cursor.as_ref().map_or(0, |c| c.span),
            vec![
                ("seed", FieldValue::from(self.cfg.seed)),
                ("iterations", FieldValue::from(self.cfg.iterations)),
                ("workloads", FieldValue::from(self.workloads.len())),
                ("preserving", FieldValue::from(self.cfg.schedule_preserving)),
                ("chains", FieldValue::from(ck.chains.len())),
            ],
        );

        let ambient_registry = collector.as_ref().map(|c| c.registry().clone());
        let run_registry = ambient_registry.unwrap_or_default();
        let counters = DseCounters::attach(&run_registry);
        let pipe = EvalPipeline::new(
            &self.workloads,
            &self.cfg,
            &self.time,
            &mdfgs,
            &AnalyticModel,
            &run_registry,
            Self::config_hash(&self.cfg),
            threads,
            Some((&ck.eval_keys, &ck.sys_keys)),
        );
        run_registry.counter("dse.checkpoint.restore").inc();
        let base = stat_totals(&run_registry);

        let out = self.run_loop(
            &pipe,
            &counters,
            ck.chains.clone(),
            ck.done,
            ck.stats,
            base,
            &run_span,
        )?;
        Ok(DseResult {
            sys_adg: SysAdg::new(out.champ.best_adg, out.champ.best.sys),
            schedules: out.champ.best.schedules,
            variants: out.champ.best.variants,
            mdfgs,
            objective: out.champ.best.objective,
            history: out.champ.history,
            dse_hours: out.dse_hours,
            stats: out.stats,
            pareto: out.pareto,
            completed: out.completed,
        })
    }

    /// Island-model annealing loop shared by [`Dse::run`] and checkpoint
    /// resume: run every chain segment by segment (concurrently when
    /// threads allow), replay telemetry in chain order, exchange best
    /// states at `exchange_interval` multiples, and write checkpoints at
    /// `checkpoint.interval` multiples.
    ///
    /// Segment boundaries land on the *absolute-multiple* grid of both
    /// intervals (not "every N from wherever we started"), so a resumed
    /// run reproduces the uninterrupted run's segmentation no matter where
    /// the cut fell. `prior` carries the stats a checkpoint accumulated
    /// before the cut; `base` is the counter baseline of this leg.
    #[allow(clippy::too_many_arguments)]
    fn run_loop(
        &self,
        pipe: &EvalPipeline,
        counters: &DseCounters,
        mut states: Vec<ChainState>,
        mut done: usize,
        prior: DseStats,
        base: DseStats,
        run_span: &SpanGuard,
    ) -> Result<LoopOutcome, DseError> {
        let iterations = self.cfg.iterations;
        let chains = states.len();
        let exchange = self.cfg.exchange_interval.max(1);
        let interval = self.cfg.checkpoint.as_ref().map(|c| c.interval.max(1));
        let wall = Instant::now();
        let parent = overgen_telemetry::current();
        let mut written_at = None::<usize>;
        let mut stop_reason = None::<&'static str>;
        // The proposal budget the heartbeat reports progress/ETA against.
        let budget = self
            .cfg
            .max_proposals
            .map_or(iterations, |b| b.min(iterations));
        let mut heartbeat = self
            .cfg
            .heartbeat
            .as_ref()
            .map(|h| Heartbeat::new(h, pipe.registry(), done));
        while done < iterations {
            if self.cfg.max_proposals.is_some_and(|b| done >= b) {
                stop_reason = Some("proposals");
                break;
            }
            if self
                .cfg
                .max_wall_seconds
                .is_some_and(|w| wall.elapsed().as_secs_f64() >= w)
            {
                stop_reason = Some("wall_clock");
                break;
            }
            if self.cfg.stop.as_ref().is_some_and(StopFlag::raised) {
                stop_reason = Some("cancelled");
                break;
            }
            let mut end = done + (exchange - done % exchange);
            if let Some(i) = interval {
                end = end.min(done + (i - done % i));
            }
            if let Some(b) = self.cfg.max_proposals {
                end = end.min(b);
            }
            end = end.min(iterations);
            let seg = end - done;

            let jobs: Vec<(usize, ChainState)> = states.into_iter().enumerate().collect();
            let outputs = fan_out(pipe.threads().min(chains), jobs, |(idx, mut st)| {
                let ((), trace) = capture(parent.as_ref(), || {
                    self.run_segment(&mut st, idx, done, seg, pipe, counters);
                });
                (st, trace)
            });
            states = outputs
                .into_iter()
                .map(|(st, trace)| {
                    replay(&trace);
                    st
                })
                .collect();
            done = end;

            if chains > 1 && done < iterations && done.is_multiple_of(exchange) {
                // Deterministic exchange: the best chain (ties to the
                // lowest index) seeds everyone's *current* state; each
                // chain's own best/history stay untouched.
                let winner = best_chain(&states);
                let (gb_adg, gb) = (states[winner].best_adg.clone(), states[winner].best.clone());
                event!(
                    "dse.exchange",
                    at = done,
                    winner = winner as u64,
                    objective = gb.objective,
                );
                for (idx, st) in states.iter_mut().enumerate() {
                    if idx != winner && gb.fitness > st.cur.fitness {
                        st.cur_adg = gb_adg.clone();
                        st.cur = gb.clone();
                    }
                }
            }

            if interval.is_some_and(|i| done.is_multiple_of(i)) {
                Checkpoint::write(self, pipe, &states, done, &prior, &base, run_span)?;
                written_at = Some(done);
            }

            // Registry-only: refreshes gauges, emits nothing into the
            // trace, never changes segmentation.
            if let Some(hb) = heartbeat.as_mut() {
                let mut front = ParetoFront::new();
                for st in &states {
                    front.merge(&st.pareto);
                }
                hb.tick(done, budget, pipe.registry(), &base, front.len());
            }
        }

        // A graceful stop finalizes a checkpoint even off-interval; a run
        // that completed (or stopped) exactly on an interval boundary
        // already wrote it. The cursor is captured before the terminal
        // event below, so resuming reproduces that event too.
        if self.cfg.checkpoint.is_some() && written_at != Some(done) {
            Checkpoint::write(self, pipe, &states, done, &prior, &base, run_span)?;
        }

        let winner = best_chain(&states);
        let dse_hours = states
            .iter()
            .map(|s| s.sim_seconds / 3600.0)
            .fold(0.0f64, f64::max);
        // Merge the per-chain frontiers in chain-index order: the result
        // is deterministic and independent of how chains were scheduled.
        let mut pareto = ParetoFront::new();
        for st in &states {
            pareto.merge(&st.pareto);
        }
        let champ = states.swap_remove(winner);
        let stats = prior.merged(&stat_delta(pipe.registry(), &base));
        match stop_reason {
            None => event!(
                "dse.done",
                objective = champ.best.objective,
                accepted = stats.accepted,
                invalid = stats.invalid,
                cache_hits = stats.cache_hits,
                dse_hours = dse_hours,
            ),
            Some(reason) => event!(
                "dse.stopped",
                at = done,
                reason = reason,
                objective = champ.best.objective,
            ),
        }
        Ok(LoopOutcome {
            champ,
            dse_hours,
            stats,
            pareto,
            completed: stop_reason.is_none(),
        })
    }

    /// Run `len` annealing iterations (numbers `start..start+len`) on one
    /// chain. Runs under a capture collector when telemetry is active, so
    /// chains may execute concurrently.
    fn run_segment(
        &self,
        st: &mut ChainState,
        chain: usize,
        start: usize,
        len: usize,
        pipe: &EvalPipeline,
        counters: &DseCounters,
    ) {
        let caps = Self::cap_pool(&self.workloads);
        for it in start..start + len {
            let _iter_span = span!("dse.iteration", iter = it, chain = chain);
            counters.iterations.inc();
            let temp = st.t0 * (0.985f64).powi(it as i32);

            // Propose.
            let mut prop_adg = st.cur_adg.clone();
            let mut prop_schedules: Vec<Schedule> = st.cur.schedules.values().cloned().collect();
            let mut kinds = String::new();
            let mut footprint = ScheduleFootprint::Pure;
            let mut delta = AdgDelta::new((it * self.cfg.mutations_per_step) as u64);
            {
                // "ADG* is constructed using a combination of random and
                // schedule-preserving transformations" (§V-A): preserving
                // guidance applies to most mutations, but some stay fully
                // random so the annealer can restructure used hardware.
                let rules = RuleSet::legacy();
                for step in 0..self.cfg.mutations_per_step {
                    let preserving = self.cfg.schedule_preserving && st.rng.gen_bool(0.7);
                    let mut ctx = TransformCtx {
                        cap_pool: &caps,
                        schedules: &mut prop_schedules,
                        preserving,
                    };
                    let epoch = (it * self.cfg.mutations_per_step + step) as u64;
                    if !kinds.is_empty() {
                        kinds.push(',');
                    }
                    if self.cfg.compound > 1 {
                        let apps = rules.apply_compound(
                            &mut prop_adg,
                            &mut ctx,
                            &mut st.rng,
                            epoch,
                            self.cfg.compound,
                        );
                        for (i, app) in apps.iter().enumerate() {
                            footprint = footprint.merge(app.inferred);
                            if i > 0 {
                                kinds.push('+');
                            }
                            kinds.push_str(app.mutation.kind());
                            delta.absorb(&app.delta);
                        }
                    } else {
                        let app = rules.apply_random(&mut prop_adg, &mut ctx, &mut st.rng, epoch);
                        footprint = footprint.merge(app.inferred);
                        kinds.push_str(app.mutation.kind());
                        delta.absorb(&app.delta);
                    }
                    if preserving {
                        kinds.push('*');
                    }
                }
            }
            event!(
                "dse.propose",
                iter = it,
                temp = temp,
                mutations = kinds.as_str(),
                footprint = footprint.name(),
            );
            st.sim_seconds += 0.5; // proposal overhead

            let prior: BTreeMap<String, Schedule> = prop_schedules
                .into_iter()
                .map(|s| (s.mdfg_name.clone(), s))
                .collect();
            // The proposal's merged delta feeds repair classification (an
            // empty scope skips the dirty-set scan); the rule chain keys
            // the evaluation cache only in compound mode, so default-run
            // cache keys stay historical.
            let scope = delta.scope();
            let rule_trace = (self.cfg.compound > 1).then_some(kinds.as_str());
            let (state, sim) =
                pipe.evaluate_with(&prop_adg, &prior, footprint, Some(&scope), rule_trace);
            st.sim_seconds += sim;
            let Some(prop) = state else {
                counters.invalid.inc();
                event!("dse.invalid", iter = it);
                st.history
                    .push((st.sim_seconds / 3600.0, st.best.objective));
                continue;
            };

            // Every valid evaluation feeds the frontier, accepted or not.
            st.pareto.insert(ParetoPoint {
                ipc: prop.objective,
                resources: prop.resources,
                placement: prop.placement,
            });

            let delta = prop.fitness - st.cur.fitness;
            let accept = prop.fitness >= st.cur.fitness || st.rng.gen_f64() < (delta / temp).exp();
            if accept {
                counters.accepted.inc();
                event!(
                    "dse.accept",
                    iter = it,
                    delta = delta,
                    temp = temp,
                    objective = prop.objective,
                );
                st.cur_adg = prop_adg;
                st.cur = prop;
                if st.cur.fitness > st.best.fitness {
                    st.best = st.cur.clone();
                    st.best_adg = st.cur_adg.clone();
                }
            } else {
                event!("dse.reject", iter = it, delta = delta, temp = temp);
            }
            st.history
                .push((st.sim_seconds / 3600.0, st.best.objective));
        }
    }
}

/// What the shared annealing loop hands back to `run`/`resume_from`.
struct LoopOutcome {
    champ: ChainState,
    dse_hours: f64,
    stats: DseStats,
    pareto: ParetoFront,
    completed: bool,
}

/// Index of the chain with the best `best.fitness`; ties break to the
/// lowest index so selection never depends on scheduling.
fn best_chain(states: &[ChainState]) -> usize {
    let mut winner = 0usize;
    for (idx, st) in states.iter().enumerate().skip(1) {
        if st.best.fitness > states[winner].best.fitness {
            winner = idx;
        }
    }
    winner
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn vecadd() -> Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 4096)
            .array_input("b", 4096)
            .array_output("c", 4096)
            .loop_const("i", 4096)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn fir() -> Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    fn quick_cfg(iters: usize, preserving: bool) -> DseConfig {
        DseConfig {
            iterations: iters,
            schedule_preserving: preserving,
            compile: CompileOptions {
                max_unroll: 4,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn cap_pool_covers_domain() {
        let pool = Dse::cap_pool(&[vecadd(), fir()]);
        assert!(pool.contains(&FuCap::new(Op::Add, DataType::I64)));
        assert!(pool.contains(&FuCap::new(Op::Mul, DataType::I64)));
    }

    #[test]
    fn seed_schedules_and_dse_improves() {
        let dse = Dse::new(vec![vecadd(), fir()], quick_cfg(30, true));
        let r = dse.run().unwrap();
        assert!(r.objective > 0.0);
        assert_eq!(r.schedules.len(), 2);
        assert!(r.history.len() > 10);
        // history is monotone non-decreasing (best-so-far)
        for w in r.history.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        // final hardware validates and fits
        r.sys_adg.validate().unwrap();
        assert!(r.dse_hours > 0.0);
        // the frontier is populated and the winner is on or below it
        assert!(!r.pareto.is_empty());
        assert!(r
            .pareto
            .points()
            .iter()
            .any(|p| p.ipc >= r.objective - 1e-12));
    }

    #[test]
    fn preserving_reduces_full_schedules() {
        let with = Dse::new(vec![fir()], quick_cfg(40, true)).run().unwrap();
        let without = Dse::new(
            vec![fir()],
            DseConfig {
                seed: 17,
                ..quick_cfg(40, false)
            },
        )
        .run()
        .unwrap();
        // preserving mode should do more repairs/intact checks and fewer
        // full schedules per iteration
        let with_rate = with.stats.full_schedules as f64 / with.stats.iterations.max(1) as f64;
        let without_rate =
            without.stats.full_schedules as f64 / without.stats.iterations.max(1) as f64;
        assert!(
            with_rate <= without_rate + 0.5,
            "with {} vs without {}",
            with_rate,
            without_rate
        );
        assert!(with.stats.intact + with.stats.repairs > 0);
    }

    #[test]
    fn weights_steer_objective() {
        let mut cfg = quick_cfg(10, true);
        cfg.weights.insert("fir".into(), 5.0);
        let r = Dse::new(vec![vecadd(), fir()], cfg).run().unwrap();
        assert!(r.objective > 0.0);
    }

    #[test]
    fn cache_hits_on_revisited_designs() {
        let r = Dse::new(vec![fir()], quick_cfg(40, true)).run().unwrap();
        assert_eq!(
            r.stats.cache_hits + r.stats.cache_misses,
            r.stats.iterations + 1, // +1: the seed evaluation
        );
        assert!(r.stats.cache_misses > 0);
    }

    #[test]
    fn cache_off_matches_cache_on() {
        let on = Dse::new(vec![fir()], quick_cfg(20, true)).run().unwrap();
        let off = Dse::new(
            vec![fir()],
            DseConfig {
                cache: false,
                ..quick_cfg(20, true)
            },
        )
        .run()
        .unwrap();
        assert_eq!(on.objective.to_bits(), off.objective.to_bits());
        assert_eq!(on.variants, off.variants);
        assert_eq!(on.history, off.history);
        assert_eq!(on.pareto, off.pareto);
        assert_eq!((off.stats.cache_hits, off.stats.cache_misses), (0, 0));
    }

    #[test]
    fn multi_chain_runs_and_improves() {
        let cfg = DseConfig {
            chains: 3,
            exchange_interval: 5,
            ..quick_cfg(15, true)
        };
        let r = Dse::new(vec![fir()], cfg).run().unwrap();
        assert!(r.objective > 0.0);
        // every chain contributes iterations
        assert_eq!(r.stats.iterations, 45);
        // history covers only the winning chain
        assert_eq!(r.history.len(), 16);
    }
}
