//! Crash-safe DSE checkpoints.
//!
//! A checkpoint captures everything [`crate::Dse`] needs to continue an
//! annealing run *exactly* where it left off: per-chain RNG state, current
//! and best design points (ADG + evaluation), the accumulated stats and
//! simulated time, the memo-table key sets (the warm set — artifacts are
//! recomputed, see `cache.rs`), and the telemetry trace cursor. The
//! invariant the whole format serves is **resume equivalence**: an
//! interrupted-then-resumed run produces the same `DseResult`, the same
//! `DseStats`, and (at a checkpoint-aligned boundary, or with one chain)
//! the same deterministic trace, byte for byte, as the uninterrupted run —
//! at any thread count. See `DESIGN.md` §9.
//!
//! The on-disk format is a single JSON object written through
//! [`overgen_telemetry::fs::write_atomic`], so a crash mid-write leaves
//! the previous checkpoint intact. All `u64` values and `f64` bit patterns
//! are encoded as hex *strings* — the in-tree JSON parser reads numbers as
//! `f64`, which cannot hold a full 64-bit integer, and a float that round
//! trips through decimal is not guaranteed bit-identical. Hex strings make
//! every field lossless.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use overgen_adg::{
    Adg, AdgNode, DmaNode, GenNode, InPortNode, NodeId, OutPortNode, PeNode, PortableAdg, RecNode,
    RegNode, SpadNode, SwitchNode, SystemParams,
};
use overgen_compiler::CompileOptions;
use overgen_ir::{DataType, FuCap, Kernel, Op};
use overgen_mdfg::MdfgNodeId;
use overgen_model::{
    ClockRegionGrid, FpgaDevice, PerfEstimate, Placement, PlacementMetrics, PlacerKind, Resources,
    XCVU9P,
};
use overgen_scheduler::Schedule;
use overgen_telemetry::json::{self, Obj, Value};
use overgen_telemetry::{Rng, SpanGuard};

use overgen_model::DeviceBudget;

use crate::engine::{stat_delta, ChainState, Dse, DseConfig, DseError, DseResult, DseStats};
use crate::eval::{EvalPipeline, EvalState, ParetoFront, ParetoPoint};
use crate::objective::{GeomeanIpcWeights, Objective, PlacementObjective};
use crate::system::{SystemDseBackend, SystemDseConfig};

const MAGIC: &str = "overgen-dse-checkpoint";
// Version history: 1 = original format; 2 = pluggable objectives (top-level
// objective header, `objective` config field, per-eval fitness + resource
// vector, per-chain Pareto frontier, `infeasible` stat); 3 = spatial
// placement (per-eval `placement` metrics, three-element Pareto points,
// `placement_aware` objective serialization); 4 = rewrite engine
// (`compound` config field for compound rule proposals).
const VERSION: u64 = 4;

/// Periodic checkpointing policy for a DSE run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where to write the checkpoint file (atomically replaced on every
    /// write; the path's parent directories are created as needed).
    pub path: PathBuf,
    /// Proposals (per chain) between checkpoint writes. Writes land on
    /// segment boundaries, so the effective granularity is also bounded by
    /// [`crate::DseConfig::exchange_interval`]. Clamped to at least 1.
    pub interval: usize,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every 25 proposals.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            interval: 25,
        }
    }
}

/// Position in the deterministic telemetry stream at checkpoint time, so a
/// resumed run continues stamping events exactly where the interrupted one
/// stopped.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceCursor {
    /// Next event sequence number.
    pub(crate) seq: u64,
    /// Next deterministic clock tick.
    pub(crate) tick: u64,
    /// Open handle of the enclosing `dse.run` span (its start tick), so the
    /// resumed run's close event matches the uninterrupted run's.
    pub(crate) span: u64,
}

/// A loaded (or about-to-be-written) DSE checkpoint.
///
/// Obtain one with [`Checkpoint::load`], optionally adjust the embedded
/// configuration (e.g. thread count, or a fresh proposal budget) through
/// [`Checkpoint::config_mut`], then continue the run with
/// [`Checkpoint::resume`]. Graceful-stop budgets
/// ([`crate::DseConfig::max_proposals`] / `max_wall_seconds`) are *not*
/// persisted: a resumed run goes to completion unless the caller sets new
/// ones.
pub struct Checkpoint {
    pub(crate) cfg: DseConfig,
    pub(crate) workloads: Vec<String>,
    pub(crate) done: usize,
    pub(crate) stats: DseStats,
    pub(crate) chains: Vec<ChainState>,
    pub(crate) eval_keys: Vec<u64>,
    pub(crate) sys_keys: Vec<u64>,
    pub(crate) cursor: Option<TraceCursor>,
}

impl Checkpoint {
    /// Read and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, DseError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DseError::Checkpoint(format!("read {}: {e}", path.display())))?;
        Self::from_json(&text).map_err(|e| DseError::Checkpoint(format!("{}: {e}", path.display())))
    }

    /// Serialize and atomically write the checkpoint to `path`.
    pub fn save(&self, path: &Path) -> Result<(), DseError> {
        let mut body = self.to_json();
        body.push('\n');
        overgen_telemetry::fs::write_atomic(path, body.as_bytes())
            .map_err(|e| DseError::Checkpoint(format!("write {}: {e}", path.display())))
    }

    /// Sorted names of the workloads the checkpointed run explored.
    /// [`Checkpoint::resume`] requires kernels with exactly these names.
    pub fn workloads(&self) -> &[String] {
        &self.workloads
    }

    /// Proposals already run per chain.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Stats accumulated up to the checkpoint.
    pub fn stats(&self) -> DseStats {
        self.stats
    }

    /// Trace sequence number at the checkpoint: events with `seq` below
    /// this were emitted before the cut, events from the resumed run start
    /// here. `None` when the interrupted run had no collector installed.
    pub fn trace_seq(&self) -> Option<u64> {
        self.cursor.as_ref().map(|c| c.seq)
    }

    /// The run configuration stored in the checkpoint.
    pub fn config(&self) -> &DseConfig {
        &self.cfg
    }

    /// Mutable access to the stored configuration, for overrides that do
    /// not change the search (thread count, checkpoint path, fresh stop
    /// budgets). Changing search-relevant fields (seed, iterations,
    /// weights, system grids, …) voids resume equivalence.
    pub fn config_mut(&mut self) -> &mut DseConfig {
        &mut self.cfg
    }

    /// Continue the checkpointed run to completion (or to a new stop
    /// budget). `workloads` must carry exactly the kernel names reported by
    /// [`Checkpoint::workloads`]; kernels are assumed unchanged since the
    /// interrupted run — the mDFG variants they compile to are part of
    /// every evaluation, so a changed kernel voids resume equivalence.
    pub fn resume(&self, workloads: Vec<Kernel>) -> Result<DseResult, DseError> {
        let mut names: Vec<String> = workloads.iter().map(|k| k.name().to_string()).collect();
        names.sort();
        if names != self.workloads {
            return Err(DseError::Checkpoint(format!(
                "workload set mismatch: checkpoint has [{}], caller supplied [{}]",
                self.workloads.join(", "),
                names.join(", ")
            )));
        }
        Dse::new(workloads, self.cfg.clone()).resume_from(self)
    }

    /// Snapshot a running search into `cfg.checkpoint.path` (the
    /// engine-side writer; no-op when checkpointing is off). Hard-fails on
    /// write errors (see [`DseError::Checkpoint`]). The write itself is
    /// trace-invisible — only registry counters record it — so
    /// checkpointing cannot perturb trace determinism.
    pub(crate) fn write(
        dse: &Dse,
        pipe: &EvalPipeline,
        states: &[ChainState],
        done: usize,
        prior: &DseStats,
        base: &DseStats,
        run_span: &SpanGuard,
    ) -> Result<(), DseError> {
        let Some(ckc) = dse.cfg.checkpoint.as_ref() else {
            return Ok(());
        };
        let cursor = overgen_telemetry::current().map(|c| {
            let (seq, tick) = c.cursor();
            TraceCursor {
                seq,
                tick,
                span: run_span.handle().unwrap_or(0),
            }
        });
        let ck = Checkpoint {
            cfg: dse.cfg.clone(),
            workloads: dse.workloads.iter().map(|k| k.name().to_string()).collect(),
            done,
            stats: prior.merged(&stat_delta(pipe.registry(), base)),
            chains: states.to_vec(),
            eval_keys: pipe.eval_keys(),
            sys_keys: pipe.sys_keys(),
            cursor,
        };
        let t = std::time::Instant::now();
        ck.save(&ckc.path)?;
        pipe.registry().counter("dse.checkpoint.write").inc();
        pipe.registry()
            .counter("dse.checkpoint.write_us")
            .add(t.elapsed().as_micros() as u64);
        Ok(())
    }

    fn to_json(&self) -> String {
        let cursor = match &self.cursor {
            Some(c) => Obj::new()
                .raw("seq", &hx(c.seq))
                .raw("tick", &hx(c.tick))
                .raw("span", &hx(c.span))
                .finish(),
            None => "null".into(),
        };
        Obj::new()
            .str("magic", MAGIC)
            .raw("version", &hx(VERSION))
            .raw("cfg_hash", &hx(Dse::config_hash(&self.cfg)))
            .str("objective", self.cfg.objective.kind())
            .raw("config", &config_to_json(&self.cfg))
            .raw(
                "workloads",
                &arr(self.workloads.iter().map(|n| json::quote(n))),
            )
            .raw("done", &hx(self.done as u64))
            .raw("stats", &stats_to_json(&self.stats))
            .raw("chains", &arr(self.chains.iter().map(chain_to_json)))
            .raw("eval_keys", &arr(self.eval_keys.iter().map(|&k| hx(k))))
            .raw("sys_keys", &arr(self.sys_keys.iter().map(|&k| hx(k))))
            .raw("cursor", &cursor)
            .finish()
    }

    fn from_json(text: &str) -> Result<Checkpoint, String> {
        let v = json::parse(text)?;
        if d_str(get(&v, "magic")?)? != MAGIC {
            return Err("not an OverGen DSE checkpoint".into());
        }
        let version = d_u64(get(&v, "version")?)?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let cfg = config_from_json(get(&v, "config")?)?;
        // The objective header duplicates the config's objective kind so a
        // checkpoint taken under one objective fails *specifically* when
        // pointed at a config edited to another, instead of as a generic
        // hash mismatch.
        let header_kind = d_str(get(&v, "objective")?)?;
        if header_kind != cfg.objective.kind() {
            return Err(format!(
                "checkpoint objective mismatch: checkpoint was taken under \
                 `{header_kind}` but its config says `{}` — a run can only \
                 resume under the objective that produced it",
                cfg.objective.kind()
            ));
        }
        if d_u64(get(&v, "cfg_hash")?)? != Dse::config_hash(&cfg) {
            return Err("config hash mismatch (corrupt or hand-edited checkpoint; \
                 the hash covers the objective and its parameters too)"
                .into());
        }
        let workloads = d_arr(get(&v, "workloads")?)?
            .iter()
            .map(|w| d_str(w).map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        let chains = d_arr(get(&v, "chains")?)?
            .iter()
            .map(chain_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if chains.is_empty() {
            return Err("checkpoint has no chains".into());
        }
        let keys = |k: &str| -> Result<Vec<u64>, String> {
            d_arr(get(&v, k)?)?.iter().map(d_u64).collect()
        };
        let cursor = match get(&v, "cursor")? {
            Value::Null => None,
            c => Some(TraceCursor {
                seq: d_u64(get(c, "seq")?)?,
                tick: d_u64(get(c, "tick")?)?,
                span: d_u64(get(c, "span")?)?,
            }),
        };
        Ok(Checkpoint {
            cfg,
            workloads,
            done: d_usize(get(&v, "done")?)?,
            stats: stats_from_json(get(&v, "stats")?)?,
            chains,
            eval_keys: keys("eval_keys")?,
            sys_keys: keys("sys_keys")?,
            cursor,
        })
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives. Hex strings keep u64 and f64 bit patterns exact
// (see module docs); `arr` builds raw JSON arrays the `Obj` builder
// doesn't cover.

pub(crate) fn hx(v: u64) -> String {
    json::quote(&format!("{v:x}"))
}

pub(crate) fn fx(v: f64) -> String {
    hx(v.to_bits())
}

fn res_to_json(r: &Resources) -> String {
    arr(r.to_array().iter().map(|&v| fx(v)))
}

fn res_from_json(v: &Value) -> Result<Resources, String> {
    match d_arr(v)? {
        [a, b, c, d] => Ok(Resources::from_array([
            d_f64(a)?,
            d_f64(b)?,
            d_f64(c)?,
            d_f64(d)?,
        ])),
        _ => Err("expected 4 resource channels".into()),
    }
}

pub(crate) fn arr(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, s) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s);
    }
    out.push(']');
    out
}

pub(crate) fn get<'a>(v: &'a Value, k: &str) -> Result<&'a Value, String> {
    v.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

pub(crate) fn d_str(v: &Value) -> Result<&str, String> {
    v.as_str().ok_or_else(|| "expected string".to_string())
}

fn d_bool(v: &Value) -> Result<bool, String> {
    v.as_bool().ok_or_else(|| "expected bool".to_string())
}

pub(crate) fn d_u64(v: &Value) -> Result<u64, String> {
    u64::from_str_radix(d_str(v)?, 16).map_err(|e| format!("bad hex integer: {e}"))
}

pub(crate) fn d_f64(v: &Value) -> Result<f64, String> {
    Ok(f64::from_bits(d_u64(v)?))
}

fn d_usize(v: &Value) -> Result<usize, String> {
    usize::try_from(d_u64(v)?).map_err(|e| format!("integer out of range: {e}"))
}

pub(crate) fn d_u32(v: &Value) -> Result<u32, String> {
    u32::try_from(d_u64(v)?).map_err(|e| format!("integer out of range: {e}"))
}

fn d_u16(v: &Value) -> Result<u16, String> {
    u16::try_from(d_u64(v)?).map_err(|e| format!("integer out of range: {e}"))
}

pub(crate) fn d_arr(v: &Value) -> Result<&[Value], String> {
    match v {
        Value::Arr(a) => Ok(a),
        _ => Err("expected array".into()),
    }
}

pub(crate) fn d_pair(v: &Value) -> Result<(&Value, &Value), String> {
    match d_arr(v)? {
        [a, b] => Ok((a, b)),
        _ => Err("expected 2-element array".into()),
    }
}

// ---------------------------------------------------------------------------
// ADG nodes and graphs, via the faithful `PortableAdg` mirror.

fn node_to_json(n: &AdgNode) -> String {
    match n {
        AdgNode::Pe(p) => Obj::new()
            .str("k", "pe")
            .raw(
                "caps",
                &arr(p.caps.iter().map(|c| json::quote(&c.to_string()))),
            )
            .raw("fifo", &hx(u64::from(p.delay_fifo_depth)))
            .finish(),
        AdgNode::Switch(_) => Obj::new().str("k", "switch").finish(),
        AdgNode::InPort(p) => Obj::new()
            .str("k", "in")
            .raw("w", &hx(u64::from(p.width_bytes)))
            .bool("pad", p.padding)
            .bool("ss", p.stream_state)
            .finish(),
        AdgNode::OutPort(p) => Obj::new()
            .str("k", "out")
            .raw("w", &hx(u64::from(p.width_bytes)))
            .finish(),
        AdgNode::Dma(d) => Obj::new()
            .str("k", "dma")
            .raw("bw", &hx(u64::from(d.bw_bytes)))
            .finish(),
        AdgNode::Gen(g) => Obj::new()
            .str("k", "gen")
            .raw("bw", &hx(u64::from(g.bw_bytes)))
            .finish(),
        AdgNode::Rec(r) => Obj::new()
            .str("k", "rec")
            .raw("bw", &hx(u64::from(r.bw_bytes)))
            .finish(),
        AdgNode::Reg(r) => Obj::new()
            .str("k", "reg")
            .raw("bw", &hx(u64::from(r.bw_bytes)))
            .finish(),
        AdgNode::Spad(s) => Obj::new()
            .str("k", "spad")
            .raw("cap", &hx(u64::from(s.capacity_kb)))
            .raw("bw", &hx(u64::from(s.bw_bytes)))
            .bool("ind", s.indirect)
            .finish(),
    }
}

fn cap_from_str(s: &str) -> Result<FuCap, String> {
    let (op_s, dt_s) = s
        .split_once('.')
        .ok_or_else(|| format!("bad capability `{s}`"))?;
    let op = Op::ALL
        .iter()
        .copied()
        .find(|o| o.to_string() == op_s)
        .ok_or_else(|| format!("unknown op `{op_s}`"))?;
    let dtype = DataType::ALL
        .iter()
        .copied()
        .find(|d| d.to_string() == dt_s)
        .ok_or_else(|| format!("unknown dtype `{dt_s}`"))?;
    Ok(FuCap::new(op, dtype))
}

fn node_from_json(v: &Value) -> Result<AdgNode, String> {
    Ok(match d_str(get(v, "k")?)? {
        "pe" => AdgNode::Pe(PeNode {
            caps: d_arr(get(v, "caps")?)?
                .iter()
                .map(|c| cap_from_str(d_str(c)?))
                .collect::<Result<_, _>>()?,
            delay_fifo_depth: u8::try_from(d_u64(get(v, "fifo")?)?)
                .map_err(|e| format!("fifo depth out of range: {e}"))?,
        }),
        "switch" => AdgNode::Switch(SwitchNode {}),
        "in" => AdgNode::InPort(InPortNode {
            width_bytes: d_u16(get(v, "w")?)?,
            padding: d_bool(get(v, "pad")?)?,
            stream_state: d_bool(get(v, "ss")?)?,
        }),
        "out" => AdgNode::OutPort(OutPortNode {
            width_bytes: d_u16(get(v, "w")?)?,
        }),
        "dma" => AdgNode::Dma(DmaNode {
            bw_bytes: d_u16(get(v, "bw")?)?,
        }),
        "gen" => AdgNode::Gen(GenNode {
            bw_bytes: d_u16(get(v, "bw")?)?,
        }),
        "rec" => AdgNode::Rec(RecNode {
            bw_bytes: d_u16(get(v, "bw")?)?,
        }),
        "reg" => AdgNode::Reg(RegNode {
            bw_bytes: d_u16(get(v, "bw")?)?,
        }),
        "spad" => AdgNode::Spad(SpadNode {
            capacity_kb: d_u32(get(v, "cap")?)?,
            bw_bytes: d_u16(get(v, "bw")?)?,
            indirect: d_bool(get(v, "ind")?)?,
        }),
        k => return Err(format!("unknown node kind `{k}`")),
    })
}

fn adg_to_json(a: &Adg) -> String {
    let p = a.to_portable();
    let adj = |t: &[Vec<u32>]| {
        arr(t
            .iter()
            .map(|row| arr(row.iter().map(|&i| hx(u64::from(i))))))
    };
    Obj::new()
        .raw(
            "slots",
            &arr(p.slots.iter().map(|s| match s {
                Some(n) => node_to_json(n),
                None => "null".into(),
            })),
        )
        .raw("out", &adj(&p.out_adj))
        .raw("in", &adj(&p.in_adj))
        .finish()
}

fn adg_from_json(v: &Value) -> Result<Adg, String> {
    let slots = d_arr(get(v, "slots")?)?
        .iter()
        .map(|s| match s {
            Value::Null => Ok(None),
            n => node_from_json(n).map(Some),
        })
        .collect::<Result<Vec<_>, String>>()?;
    let adj = |k: &str| -> Result<Vec<Vec<u32>>, String> {
        d_arr(get(v, k)?)?
            .iter()
            .map(|row| d_arr(row)?.iter().map(d_u32).collect())
            .collect()
    };
    Adg::from_portable(PortableAdg {
        slots,
        out_adj: adj("out")?,
        in_adj: adj("in")?,
    })
    .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Schedules and evaluation states.

fn schedule_to_json(s: &Schedule) -> String {
    let id_pairs = |m: &BTreeMap<MdfgNodeId, NodeId>| {
        arr(m
            .iter()
            .map(|(k, v)| format!("[{},{}]", hx(k.index() as u64), hx(v.index() as u64))))
    };
    Obj::new()
        .str("name", &s.mdfg_name)
        .raw("variant", &hx(u64::from(s.variant)))
        .raw("assign", &id_pairs(&s.assignment))
        .raw("engines", &id_pairs(&s.stream_engines))
        .raw(
            "routes",
            &arr(s.routes.iter().map(|((src, dst), path)| {
                format!(
                    "[{},{},{}]",
                    hx(src.index() as u64),
                    hx(dst.index() as u64),
                    arr(path.iter().map(|n| hx(n.index() as u64)))
                )
            })),
        )
        .raw(
            "spads",
            &arr(s.placement.spad_arrays.iter().map(|a| json::quote(a))),
        )
        .raw("ipc", &fx(s.est.ipc))
        .raw("tile_ipc", &fx(s.est.per_tile_ipc))
        .raw("factors", &arr(s.est.factors.iter().map(|&f| fx(f))))
        .raw("balance", &fx(s.balance_penalty))
        .finish()
}

fn schedule_from_json(v: &Value) -> Result<Schedule, String> {
    let id_pairs = |k: &str| -> Result<BTreeMap<MdfgNodeId, NodeId>, String> {
        d_arr(get(v, k)?)?
            .iter()
            .map(|p| {
                let (m, n) = d_pair(p)?;
                Ok((
                    MdfgNodeId::from_index(d_usize(m)?),
                    NodeId::from_index(d_usize(n)?),
                ))
            })
            .collect()
    };
    let routes = d_arr(get(v, "routes")?)?
        .iter()
        .map(|r| match d_arr(r)? {
            [src, dst, path] => {
                let key = (
                    MdfgNodeId::from_index(d_usize(src)?),
                    MdfgNodeId::from_index(d_usize(dst)?),
                );
                let path = d_arr(path)?
                    .iter()
                    .map(|n| Ok(NodeId::from_index(d_usize(n)?)))
                    .collect::<Result<Vec<_>, String>>()?;
                Ok((key, path))
            }
            _ => Err("expected [src, dst, path] route".to_string()),
        })
        .collect::<Result<BTreeMap<_, _>, _>>()?;
    let factors = d_arr(get(v, "factors")?)?;
    let factors: [f64; 3] = match factors {
        [a, b, c] => [d_f64(a)?, d_f64(b)?, d_f64(c)?],
        _ => return Err("expected 3 bottleneck factors".into()),
    };
    Ok(Schedule {
        mdfg_name: d_str(get(v, "name")?)?.to_string(),
        variant: d_u32(get(v, "variant")?)?,
        assignment: id_pairs("assign")?,
        stream_engines: id_pairs("engines")?,
        routes,
        placement: Placement {
            spad_arrays: d_arr(get(v, "spads")?)?
                .iter()
                .map(|a| d_str(a).map(str::to_string))
                .collect::<Result<_, _>>()?,
        },
        est: PerfEstimate {
            ipc: d_f64(get(v, "ipc")?)?,
            per_tile_ipc: d_f64(get(v, "tile_ipc")?)?,
            factors,
        },
        balance_penalty: d_f64(get(v, "balance")?)?,
    })
}

pub(crate) fn eval_to_json(e: &EvalState) -> String {
    let sys = Obj::new()
        .raw("tiles", &hx(u64::from(e.sys.tiles)))
        .raw("l2_banks", &hx(u64::from(e.sys.l2_banks)))
        .raw("l2_kb", &hx(u64::from(e.sys.l2_kb)))
        .raw("noc_bw", &hx(u64::from(e.sys.noc_bw_bytes)))
        .raw("dram", &hx(u64::from(e.sys.dram_channels)))
        .finish();
    Obj::new()
        .raw("sys", &sys)
        .raw(
            "schedules",
            &arr(e.schedules.values().map(schedule_to_json)),
        )
        .raw(
            "variants",
            &arr(e
                .variants
                .iter()
                .map(|(n, v)| format!("[{},{}]", json::quote(n), hx(u64::from(*v))))),
        )
        .raw("objective", &fx(e.objective))
        .raw("fitness", &fx(e.fitness))
        .raw("resources", &res_to_json(&e.resources))
        .raw("placement", &place_to_json(&e.placement))
        .finish()
}

fn place_to_json(p: &Option<PlacementMetrics>) -> String {
    match p {
        None => "null".into(),
        Some(m) => Obj::new()
            .raw("wirelength", &fx(m.wirelength))
            .raw("congestion", &fx(m.congestion))
            .raw("slr_crossings", &hx(m.slr_crossings))
            .raw("fmax_mhz", &fx(m.fmax_mhz))
            .finish(),
    }
}

fn place_from_json(v: &Value) -> Result<Option<PlacementMetrics>, String> {
    if matches!(v, Value::Null) {
        return Ok(None);
    }
    Ok(Some(PlacementMetrics {
        wirelength: d_f64(get(v, "wirelength")?)?,
        congestion: d_f64(get(v, "congestion")?)?,
        slr_crossings: d_u64(get(v, "slr_crossings")?)?,
        fmax_mhz: d_f64(get(v, "fmax_mhz")?)?,
    }))
}

pub(crate) fn eval_from_json(v: &Value) -> Result<EvalState, String> {
    let sys = get(v, "sys")?;
    let schedules = d_arr(get(v, "schedules")?)?
        .iter()
        .map(|s| {
            let s = schedule_from_json(s)?;
            Ok((s.mdfg_name.clone(), s))
        })
        .collect::<Result<BTreeMap<_, _>, String>>()?;
    let variants = d_arr(get(v, "variants")?)?
        .iter()
        .map(|p| {
            let (n, ver) = d_pair(p)?;
            Ok((d_str(n)?.to_string(), d_u32(ver)?))
        })
        .collect::<Result<BTreeMap<_, _>, String>>()?;
    Ok(EvalState {
        sys: SystemParams {
            tiles: d_u32(get(sys, "tiles")?)?,
            l2_banks: d_u32(get(sys, "l2_banks")?)?,
            l2_kb: d_u32(get(sys, "l2_kb")?)?,
            noc_bw_bytes: d_u32(get(sys, "noc_bw")?)?,
            dram_channels: d_u32(get(sys, "dram")?)?,
        },
        schedules,
        variants,
        objective: d_f64(get(v, "objective")?)?,
        fitness: d_f64(get(v, "fitness")?)?,
        resources: res_from_json(get(v, "resources")?)?,
        placement: place_from_json(get(v, "placement")?)?,
    })
}

// ---------------------------------------------------------------------------
// Chains, stats, configuration.

fn chain_to_json(c: &ChainState) -> String {
    Obj::new()
        .raw("rng", &arr(c.rng.state().iter().map(|&w| hx(w))))
        .raw("cur_adg", &adg_to_json(&c.cur_adg))
        .raw("cur", &eval_to_json(&c.cur))
        .raw("best_adg", &adg_to_json(&c.best_adg))
        .raw("best", &eval_to_json(&c.best))
        .raw("sim_seconds", &fx(c.sim_seconds))
        .raw("t0", &fx(c.t0))
        .raw(
            "history",
            &arr(c
                .history
                .iter()
                .map(|&(h, o)| format!("[{},{}]", fx(h), fx(o)))),
        )
        .raw(
            "pareto",
            &arr(c.pareto.points().iter().map(|p| {
                format!(
                    "[{},{},{}]",
                    fx(p.ipc),
                    res_to_json(&p.resources),
                    place_to_json(&p.placement)
                )
            })),
        )
        .finish()
}

fn chain_from_json(v: &Value) -> Result<ChainState, String> {
    let rng_words = d_arr(get(v, "rng")?)?;
    let rng: [u64; 4] = match rng_words {
        [a, b, c, d] => [d_u64(a)?, d_u64(b)?, d_u64(c)?, d_u64(d)?],
        _ => return Err("expected 4 RNG state words".into()),
    };
    let history = d_arr(get(v, "history")?)?
        .iter()
        .map(|p| {
            let (h, o) = d_pair(p)?;
            Ok((d_f64(h)?, d_f64(o)?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let pareto = ParetoFront::from_points(
        d_arr(get(v, "pareto")?)?
            .iter()
            .map(|p| {
                let [ipc, res, place] = d_arr(p)? else {
                    return Err("expected a 3-element Pareto point".into());
                };
                Ok(ParetoPoint {
                    ipc: d_f64(ipc)?,
                    resources: res_from_json(res)?,
                    placement: place_from_json(place)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    );
    Ok(ChainState {
        rng: Rng::from_state(rng),
        cur_adg: adg_from_json(get(v, "cur_adg")?)?,
        cur: eval_from_json(get(v, "cur")?)?,
        best_adg: adg_from_json(get(v, "best_adg")?)?,
        best: eval_from_json(get(v, "best")?)?,
        sim_seconds: d_f64(get(v, "sim_seconds")?)?,
        t0: d_f64(get(v, "t0")?)?,
        history,
        pareto,
    })
}

fn stats_to_json(s: &DseStats) -> String {
    Obj::new()
        .raw("iterations", &hx(s.iterations as u64))
        .raw("accepted", &hx(s.accepted as u64))
        .raw("invalid", &hx(s.invalid as u64))
        .raw("full_schedules", &hx(s.full_schedules as u64))
        .raw("repairs", &hx(s.repairs as u64))
        .raw("intact", &hx(s.intact as u64))
        .raw("cache_hits", &hx(s.cache_hits as u64))
        .raw("cache_misses", &hx(s.cache_misses as u64))
        .raw("repair_fast", &hx(s.repair_fast as u64))
        .raw("repair_fallback", &hx(s.repair_fallback as u64))
        .raw("infeasible", &hx(s.infeasible as u64))
        .finish()
}

fn stats_from_json(v: &Value) -> Result<DseStats, String> {
    let f = |k: &str| d_usize(get(v, k)?);
    Ok(DseStats {
        iterations: f("iterations")?,
        accepted: f("accepted")?,
        invalid: f("invalid")?,
        full_schedules: f("full_schedules")?,
        repairs: f("repairs")?,
        intact: f("intact")?,
        cache_hits: f("cache_hits")?,
        cache_misses: f("cache_misses")?,
        repair_fast: f("repair_fast")?,
        repair_fallback: f("repair_fallback")?,
        infeasible: f("infeasible")?,
    })
}

fn objective_to_json(o: &Objective) -> String {
    let obj = Obj::new().str("kind", o.kind());
    match o {
        Objective::WeightedGeomeanIpc(w) => obj
            .raw("lut_penalty", &fx(w.lut_penalty))
            .raw("lut_scale", &fx(w.lut_scale))
            .finish(),
        Objective::ConstrainedIpc(b) => obj
            .str("name", b.name)
            .raw("limit", &res_to_json(&b.limit))
            .raw("soft_frac", &fx(b.soft_frac))
            .raw("soft_penalty", &fx(b.soft_penalty))
            .finish(),
        Objective::IpcPerLut => obj.finish(),
        Objective::PlacementAware(p) => {
            let device = Obj::new()
                .str("name", p.grid.device.name)
                .raw(
                    "total",
                    &arr(p.grid.device.total.to_array().iter().map(|&v| fx(v))),
                )
                .finish();
            let grid = Obj::new()
                .raw("device", &device)
                .raw("cols", &hx(u64::from(p.grid.cols)))
                .raw("rows", &hx(u64::from(p.grid.rows)))
                .raw("rows_per_slr", &hx(u64::from(p.grid.rows_per_slr)))
                .finish();
            obj.str("placer", p.placer.name())
                .raw("grid", &grid)
                .raw("wirelength_penalty", &fx(p.wirelength_penalty))
                .raw("wirelength_scale", &fx(p.wirelength_scale))
                .raw("base_mhz", &fx(p.base_mhz))
                .finish()
        }
    }
}

fn objective_from_json(v: &Value) -> Result<Objective, String> {
    Ok(match d_str(get(v, "kind")?)? {
        "weighted_geomean_ipc" => Objective::WeightedGeomeanIpc(GeomeanIpcWeights {
            lut_penalty: d_f64(get(v, "lut_penalty")?)?,
            lut_scale: d_f64(get(v, "lut_scale")?)?,
        }),
        "constrained_ipc" => {
            let name = d_str(get(v, "name")?)?;
            let limit = res_from_json(get(v, "limit")?)?;
            let loaded = DeviceBudget {
                name: "", // placeholder; resolved below
                limit,
                soft_frac: d_f64(get(v, "soft_frac")?)?,
                soft_penalty: d_f64(get(v, "soft_penalty")?)?,
            };
            // Reuse a preset's static name when the budget matches one;
            // otherwise leak the (tiny) custom name, as for devices.
            let budget = [
                DeviceBudget::vcu118(),
                DeviceBudget::vcu118_medium(),
                DeviceBudget::vcu118_small(),
            ]
            .into_iter()
            .find(|p| {
                p.name == name
                    && *p
                        == DeviceBudget {
                            name: p.name,
                            ..loaded
                        }
            })
            .unwrap_or(DeviceBudget {
                name: Box::leak(name.to_string().into_boxed_str()),
                ..loaded
            });
            Objective::ConstrainedIpc(budget)
        }
        "ipc_per_lut" => Objective::IpcPerLut,
        "placement_aware" => {
            let placer_name = d_str(get(v, "placer")?)?;
            let placer = PlacerKind::from_name(placer_name)
                .ok_or_else(|| format!("unknown placer `{placer_name}`"))?;
            let g = get(v, "grid")?;
            let dev = get(g, "device")?;
            let dev_name = d_str(get(dev, "name")?)?;
            let total: [f64; 4] = match d_arr(get(dev, "total")?)? {
                [a, b, c, d] => [d_f64(a)?, d_f64(b)?, d_f64(c)?, d_f64(d)?],
                _ => return Err("expected 4 device resource totals".into()),
            };
            let total = Resources::from_array(total);
            // Same static-name policy as devices in the config: reuse the
            // builtin when it matches, otherwise leak the (tiny) name.
            let device = if dev_name == XCVU9P.name && total.to_array() == XCVU9P.total.to_array() {
                XCVU9P
            } else {
                FpgaDevice {
                    name: Box::leak(dev_name.to_string().into_boxed_str()),
                    total,
                }
            };
            Objective::PlacementAware(PlacementObjective {
                placer,
                grid: ClockRegionGrid {
                    device,
                    cols: d_u32(get(g, "cols")?)?,
                    rows: d_u32(get(g, "rows")?)?,
                    rows_per_slr: d_u32(get(g, "rows_per_slr")?)?,
                },
                wirelength_penalty: d_f64(get(v, "wirelength_penalty")?)?,
                wirelength_scale: d_f64(get(v, "wirelength_scale")?)?,
                base_mhz: d_f64(get(v, "base_mhz")?)?,
            })
        }
        k => return Err(format!("unknown objective kind `{k}`")),
    })
}

fn config_to_json(cfg: &DseConfig) -> String {
    let grid = |g: &[u32]| arr(g.iter().map(|&v| hx(u64::from(v))));
    let device = Obj::new()
        .str("name", cfg.system.device.name)
        .raw(
            "total",
            &arr(cfg.system.device.total.to_array().iter().map(|&v| fx(v))),
        )
        .finish();
    let system = Obj::new()
        .raw("device", &device)
        .raw("util_cap", &fx(cfg.system.util_cap))
        .raw("max_tiles", &hx(u64::from(cfg.system.max_tiles)))
        .raw("dram_channels", &hx(u64::from(cfg.system.dram_channels)))
        .raw("l2_banks_grid", &grid(&cfg.system.l2_banks_grid))
        .raw("l2_kb_grid", &grid(&cfg.system.l2_kb_grid))
        .raw("noc_bw_grid", &grid(&cfg.system.noc_bw_grid))
        .finish();
    let compile = Obj::new()
        .raw("max_unroll", &hx(u64::from(cfg.compile.max_unroll)))
        .bool("no_recurrence", cfg.compile.include_no_recurrence)
        .raw("spad_cap_bytes", &hx(cfg.compile.spad_cap_bytes))
        .finish();
    let ck = match &cfg.checkpoint {
        Some(c) => Obj::new()
            .str("path", &c.path.display().to_string())
            .raw("interval", &hx(c.interval as u64))
            .finish(),
        None => "null".into(),
    };
    Obj::new()
        .raw("iterations", &hx(cfg.iterations as u64))
        .raw("seed", &hx(cfg.seed))
        .bool("preserving", cfg.schedule_preserving)
        .raw("objective", &objective_to_json(&cfg.objective))
        .raw("system", &system)
        .raw("compile", &compile)
        .raw(
            "weights",
            &arr(cfg
                .weights
                .iter()
                .map(|(n, &w)| format!("[{},{}]", json::quote(n), fx(w)))),
        )
        .raw("mutations_per_step", &hx(cfg.mutations_per_step as u64))
        .raw("threads", &hx(cfg.threads as u64))
        .raw("chains", &hx(cfg.chains as u64))
        .raw("exchange_interval", &hx(cfg.exchange_interval as u64))
        .bool("cache", cfg.cache)
        .raw("compound", &hx(cfg.compound as u64))
        .bool("repair", cfg.repair)
        .raw("checkpoint", &ck)
        .finish()
}

fn config_from_json(v: &Value) -> Result<DseConfig, String> {
    let sys = get(v, "system")?;
    let dev = get(sys, "device")?;
    let name = d_str(get(dev, "name")?)?;
    let total_arr = d_arr(get(dev, "total")?)?;
    let total: [f64; 4] = match total_arr {
        [a, b, c, d] => [d_f64(a)?, d_f64(b)?, d_f64(c)?, d_f64(d)?],
        _ => return Err("expected 4 device resource totals".into()),
    };
    let total = Resources::from_array(total);
    let builtin = overgen_model::XCVU9P;
    let device = if name == builtin.name && total.to_array() == builtin.total.to_array() {
        builtin
    } else {
        // A custom device: the name needs a 'static str, so loading a
        // checkpoint with a non-builtin device leaks its (tiny) name.
        FpgaDevice {
            name: Box::leak(name.to_string().into_boxed_str()),
            total,
        }
    };
    let grid =
        |k: &str| -> Result<Vec<u32>, String> { d_arr(get(sys, k)?)?.iter().map(d_u32).collect() };
    let compile = get(v, "compile")?;
    let weights = d_arr(get(v, "weights")?)?
        .iter()
        .map(|p| {
            let (n, w) = d_pair(p)?;
            Ok((d_str(n)?.to_string(), d_f64(w)?))
        })
        .collect::<Result<BTreeMap<_, _>, String>>()?;
    let checkpoint = match get(v, "checkpoint")? {
        Value::Null => None,
        c => Some(CheckpointConfig {
            path: PathBuf::from(d_str(get(c, "path")?)?),
            interval: d_usize(get(c, "interval")?)?,
        }),
    };
    Ok(DseConfig {
        iterations: d_usize(get(v, "iterations")?)?,
        seed: d_u64(get(v, "seed")?)?,
        schedule_preserving: d_bool(get(v, "preserving")?)?,
        objective: objective_from_json(get(v, "objective")?)?,
        system: SystemDseConfig {
            device,
            util_cap: d_f64(get(sys, "util_cap")?)?,
            max_tiles: d_u32(get(sys, "max_tiles")?)?,
            dram_channels: d_u32(get(sys, "dram_channels")?)?,
            l2_banks_grid: grid("l2_banks_grid")?,
            l2_kb_grid: grid("l2_kb_grid")?,
            noc_bw_grid: grid("noc_bw_grid")?,
            // Not serialized: the scoring backend does not change the
            // checkpoint byte format, and a non-default backend is folded
            // into the config hash, so a resume under a different backend
            // is rejected by the existing hash check.
            backend: SystemDseBackend::default(),
        },
        compile: CompileOptions {
            max_unroll: d_u32(get(compile, "max_unroll")?)?,
            include_no_recurrence: d_bool(get(compile, "no_recurrence")?)?,
            spad_cap_bytes: d_u64(get(compile, "spad_cap_bytes")?)?,
        },
        weights,
        mutations_per_step: d_usize(get(v, "mutations_per_step")?)?,
        threads: d_usize(get(v, "threads")?)?,
        chains: d_usize(get(v, "chains")?)?,
        exchange_interval: d_usize(get(v, "exchange_interval")?)?,
        cache: d_bool(get(v, "cache")?)?,
        compound: d_usize(get(v, "compound")?)?,
        repair: d_bool(get(v, "repair")?)?,
        checkpoint,
        // Stop budgets and monitoring are per-invocation, never persisted:
        // a resumed run goes to completion unless the caller sets fresh
        // ones, and watches only if the caller asks again.
        max_proposals: None,
        max_wall_seconds: None,
        heartbeat: None,
        // The shared store and cancellation flag are likewise runtime
        // wiring, not exploration state.
        store: None,
        stop: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, KernelBuilder, Suite};

    fn vecadd() -> Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 4096)
            .array_input("b", 4096)
            .array_output("c", 4096)
            .loop_const("i", 4096)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("overgen-ck-{}-{name}.json", std::process::id()))
    }

    fn small_cfg(path: PathBuf) -> DseConfig {
        DseConfig {
            iterations: 6,
            compile: CompileOptions {
                max_unroll: 2,
                ..Default::default()
            },
            checkpoint: Some(CheckpointConfig { path, interval: 2 }),
            ..Default::default()
        }
    }

    #[test]
    fn file_round_trips_byte_identically() {
        let path = tmp("roundtrip");
        let r = Dse::new(vec![vecadd()], small_cfg(path.clone()))
            .run()
            .unwrap();
        assert!(r.completed);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.workloads(), ["vecadd".to_string()]);
        assert_eq!(ck.done(), 6);
        let mut re = ck.to_json();
        re.push('\n');
        assert_eq!(on_disk, re, "load -> save must be lossless");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_final_checkpoint_is_a_noop_run() {
        let path = tmp("final");
        let full = Dse::new(vec![vecadd()], small_cfg(path.clone()))
            .run()
            .unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        let resumed = ck.resume(vec![vecadd()]).unwrap();
        assert!(resumed.completed);
        assert_eq!(full.objective.to_bits(), resumed.objective.to_bits());
        assert_eq!(full.history, resumed.history);
        assert_eq!(full.variants, resumed.variants);
        assert_eq!(full.stats, resumed.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_wrong_workloads() {
        let path = tmp("wrong-workloads");
        Dse::new(vec![vecadd()], small_cfg(path.clone()))
            .run()
            .unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        let err = ck.resume(vec![]).unwrap_err();
        assert!(matches!(err, DseError::Checkpoint(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hand_edited_objective_is_rejected_with_a_clear_error() {
        let path = tmp("objective-mismatch");
        Dse::new(vec![vecadd()], small_cfg(path.clone()))
            .run()
            .unwrap();
        // Hand-edit the config's objective while the header (and the
        // cfg-hash) still say the run used the default objective.
        let text = std::fs::read_to_string(&path).unwrap();
        let edited = text.replace(
            "\"kind\":\"weighted_geomean_ipc\"",
            "\"kind\":\"ipc_per_lut\"",
        );
        assert_ne!(
            text, edited,
            "test premise: the objective kind is in the file"
        );
        std::fs::write(&path, edited).unwrap();
        let Err(err) = Checkpoint::load(&path) else {
            panic!("edited checkpoint must not load");
        };
        let msg = err.to_string();
        assert!(
            msg.contains("objective mismatch")
                && msg.contains("weighted_geomean_ipc")
                && msg.contains("ipc_per_lut"),
            "unhelpful error: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn constrained_objective_round_trips() {
        let path = tmp("constrained-roundtrip");
        // A generous budget (nothing rejected) keeps the run fast while
        // exercising the ConstrainedIpc serialization path end to end.
        let cfg = DseConfig {
            objective: Objective::ConstrainedIpc(DeviceBudget::vcu118()),
            ..small_cfg(path.clone())
        };
        let full = Dse::new(vec![vecadd()], cfg).run().unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.config().objective.kind(), "constrained_ipc");
        let mut re = ck.to_json();
        re.push('\n');
        assert_eq!(on_disk, re, "load -> save must be lossless");
        let resumed = ck.resume(vec![vecadd()]).unwrap();
        assert_eq!(full.objective.to_bits(), resumed.objective.to_bits());
        assert_eq!(full.pareto, resumed.pareto);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compound_config_round_trips() {
        let path = tmp("compound-roundtrip");
        let cfg = DseConfig {
            compound: 3,
            ..small_cfg(path.clone())
        };
        let full = Dse::new(vec![vecadd()], cfg).run().unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(
            ck.config().compound,
            3,
            "compound cap must survive the round trip — a resume that \
             silently fell back to single-rule proposals would replay a \
             different RNG stream"
        );
        let mut re = ck.to_json();
        re.push('\n');
        assert_eq!(on_disk, re, "load -> save must be lossless");
        let resumed = ck.resume(vec![vecadd()]).unwrap();
        assert_eq!(full.objective.to_bits(), resumed.objective.to_bits());
        assert_eq!(full.stats, resumed.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn placement_aware_objective_round_trips() {
        let path = tmp("placement-roundtrip");
        let cfg = DseConfig {
            objective: Objective::PlacementAware(PlacementObjective::default()),
            ..small_cfg(path.clone())
        };
        let full = Dse::new(vec![vecadd()], cfg).run().unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.config().objective.kind(), "placement_aware");
        let mut re = ck.to_json();
        re.push('\n');
        assert_eq!(on_disk, re, "load -> save must be lossless");
        let resumed = ck.resume(vec![vecadd()]).unwrap();
        assert_eq!(full.objective.to_bits(), resumed.objective.to_bits());
        assert_eq!(full.pareto, resumed.pareto);
        assert!(
            full.pareto.points().iter().all(|p| p.placement.is_some()),
            "a placement-aware run must carry placement metrics through \
             the checkpoint"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"magic\":\"nope\"}").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(DseError::Checkpoint(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
