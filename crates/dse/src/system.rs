//! The nested system-level DSE (§V-A): for a candidate accelerator ADG,
//! exhaustively search tile count, L2 banks, L2 capacity, and NoC bandwidth
//! under the FPGA resource budget; "it is relatively inexpensive to nest
//! system DSE inside of spatial DSE".

use overgen_adg::{Adg, SysAdg, SystemParams};
use overgen_mdfg::Mdfg;
use overgen_model::resources::FpgaDevice;
use overgen_model::{breakdown, estimate_ipc, weighted_geomean_ipc, Placement, ResourceModel};
use overgen_scheduler::Schedule;
use overgen_sim::{SimBatch, SimConfig};
use overgen_telemetry::{event, span};

use crate::pool::fan_out;

/// How the nested system DSE scores a feasible grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SystemDseBackend {
    /// Score with the closed-form `overgen_model::estimate_ipc` (the
    /// historical behaviour, byte-identical traces).
    #[default]
    Estimate,
    /// Score with the cycle-level flow simulator, batched per compiled
    /// schedule. With `prune`, the analytic lower bound skips grid
    /// points that provably cannot beat the incumbent.
    Simulate {
        /// Enable analytic pruning (sound: never changes the winner).
        prune: bool,
    },
}

/// System DSE configuration, including the candidate grids the exhaustive
/// sweep walks. The grids are plain data so tests can shrink or extend the
/// sweep and so evaluation-cache keys can cover non-default grids.
#[derive(Debug, Clone)]
pub struct SystemDseConfig {
    /// Device budget.
    pub device: FpgaDevice,
    /// Maximum utilization of any single resource ("our DSE greedily
    /// consumes as many resources as possible", Q4 — up to this cap).
    pub util_cap: f64,
    /// Candidate tile counts (1..=max explored).
    pub max_tiles: u32,
    /// DRAM channels (fixed by the experiment; 1 for the paper's FPGA).
    pub dram_channels: u32,
    /// Candidate L2 bank counts.
    pub l2_banks_grid: Vec<u32>,
    /// Candidate total L2 capacities in KiB.
    pub l2_kb_grid: Vec<u32>,
    /// Candidate NoC bandwidths in bytes/cycle.
    pub noc_bw_grid: Vec<u32>,
    /// Scoring backend for feasible grid points.
    pub backend: SystemDseBackend,
}

impl Default for SystemDseConfig {
    fn default() -> Self {
        SystemDseConfig {
            device: overgen_model::XCVU9P,
            util_cap: 0.97,
            max_tiles: 16,
            dram_channels: 1,
            l2_banks_grid: vec![2, 4, 8, 16],
            l2_kb_grid: vec![256, 512, 1024, 2048],
            noc_bw_grid: vec![32, 64],
            backend: SystemDseBackend::Estimate,
        }
    }
}

/// One tile-count slice of the sweep: every (banks, kb, noc) combination
/// scored in grid order, plus the slice's candidate/over-budget tallies.
struct TileSlice {
    scored: Vec<(SystemParams, f64)>,
    candidates: u64,
    over_budget: u64,
}

/// Exhaustively choose the best system parameters for an accelerator ADG
/// given the best-scheduled mDFG (plus its scratchpad placement) per
/// workload. Returns `None` when not even a single tile fits the budget.
///
/// With `threads > 1` the per-tile-count slices of the sweep are scored on
/// a scoped worker pool; the winner is still selected by folding every
/// candidate in the canonical serial order, so the choice (including the
/// order-dependent near-tie handling below) is identical for any thread
/// count.
pub fn system_dse(
    adg: &Adg,
    per_workload: &[(&Mdfg, &Placement, f64)], // (mdfg, placement, weight)
    model: &dyn ResourceModel,
    cfg: &SystemDseConfig,
    threads: usize,
) -> Option<(SystemParams, f64)> {
    let _span = span!("dse.system", max_tiles = cfg.max_tiles);
    let spad_bw: f64 = adg
        .nodes()
        .filter_map(|(_, n)| n.as_spad().map(|s| f64::from(s.bw_bytes)))
        .sum();

    let slices = fan_out(threads, (1..=cfg.max_tiles).collect(), |tiles| {
        let mut slice = TileSlice {
            scored: Vec::new(),
            candidates: 0,
            over_budget: 0,
        };
        for &l2_banks in &cfg.l2_banks_grid {
            for &l2_kb in &cfg.l2_kb_grid {
                for &noc_bw in &cfg.noc_bw_grid {
                    let sys = SystemParams {
                        tiles,
                        l2_banks,
                        l2_kb,
                        noc_bw_bytes: noc_bw,
                        dram_channels: cfg.dram_channels,
                    };
                    slice.candidates += 1;
                    let sys_adg = SysAdg::new(adg.clone(), sys);
                    let used = breakdown(&sys_adg, model).total();
                    if !cfg.device.fits(&used, cfg.util_cap) {
                        slice.over_budget += 1;
                        continue;
                    }
                    let ipcs: Vec<(f64, f64)> = per_workload
                        .iter()
                        .map(|(m, p, w)| (estimate_ipc(m, &sys, spad_bw, p).ipc, *w))
                        .collect();
                    slice.scored.push((sys, weighted_geomean_ipc(&ipcs)));
                }
            }
        }
        slice
    });

    let mut candidates = 0u64;
    let mut over_budget = 0u64;
    let mut best: Option<(SystemParams, f64)> = None;
    // Fold in ascending-tile (= serial sweep) order: the near-tie rule
    // below depends on which candidate is seen first, so the fold order is
    // part of the function's contract.
    for slice in slices {
        candidates += slice.candidates;
        over_budget += slice.over_budget;
        for (sys, score) in slice.scored {
            if beats(&best, &sys, score) {
                best = Some((sys, score));
            }
        }
    }
    match &best {
        Some((sys, score)) => event!(
            "dse.system",
            candidates = candidates,
            over_budget = over_budget,
            tiles = sys.tiles,
            l2_banks = sys.l2_banks,
            l2_kb = sys.l2_kb,
            noc_bw = sys.noc_bw_bytes,
            score = *score,
        ),
        None => event!(
            "dse.system",
            candidates = candidates,
            over_budget = over_budget,
            feasible = false,
        ),
    }
    best
}

/// The canonical selection predicate: prefer strictly better scores; on
/// (near-)ties prefer MORE tiles — the paper's DSE "greedily consumes as
/// many resources as possible, even if there is no parallelism" (Q4),
/// which is what pushes overlays to 81-97% LUT occupancy. The rule is
/// order-dependent, so the candidate walk order is part of the contract.
fn beats(best: &Option<(SystemParams, f64)>, sys: &SystemParams, score: f64) -> bool {
    match best {
        None => true,
        Some((b_sys, b_score)) => {
            score > b_score * 1.001 || (score >= b_score * 0.999 && sys.tiles > b_sys.tiles)
        }
    }
}

/// Whether the truthy value of [`beats`] is reachable for *any* score
/// `<= upper`: both branches of the predicate are monotone nondecreasing
/// in `score`, so if the upper bound itself cannot be selected, no score
/// it dominates can be either. The `1e-9` relative slack absorbs f64
/// rounding in the geomean of per-workload upper bounds.
fn upper_bound_can_win(best: &Option<(SystemParams, f64)>, sys: &SystemParams, upper: f64) -> bool {
    let u = upper * (1.0 + 1e-9);
    beats(best, sys, u)
}

/// Statistics from one simulator-backed sweep.
struct SimSweep {
    best: Option<(SystemParams, f64)>,
    candidates: u64,
    over_budget: u64,
    pruned: u64,
    admitted: u64,
}

/// Sum of sibling-reuse cache hits across a sweep's batches.
fn reuse_hits(batches: &[SimBatch]) -> u64 {
    batches.iter().map(SimBatch::cache_hits).sum()
}

/// Walk the grid in canonical order, scoring feasible points with warm
/// [`SimBatch`] runs behind the sibling-reuse cache. With `prune`, each
/// candidate's analytic score upper bound is tested against the *same
/// incumbent the exhaustive fold would hold at that position*; a
/// candidate is skipped only when the selection predicate provably
/// rejects it (see DESIGN.md §12), so the incumbent evolves identically
/// with pruning on or off. `shadow` suppresses the profiler phase timers
/// and bypasses the reuse cache (plain [`SimBatch::run`]), so the
/// oracle's duplicate sweep differentially checks pruning *and* reuse.
fn sweep_sim(
    adg: &Adg,
    batches: &mut [SimBatch],
    weights: &[f64],
    model: &dyn ResourceModel,
    cfg: &SystemDseConfig,
    prune: bool,
    shadow: bool,
) -> SimSweep {
    let mut sweep = SimSweep {
        best: None,
        candidates: 0,
        over_budget: 0,
        pruned: 0,
        admitted: 0,
    };
    let mut scores: Vec<(f64, f64)> = Vec::with_capacity(batches.len());
    // One SysAdg for the whole sweep: the feasibility breakdown reads the
    // (immutable) per-tile graph plus the grid point, so the sweep mutates
    // `sys` in place instead of cloning the ADG per point.
    let mut sys_adg = SysAdg::new(adg.clone(), SystemParams::default());
    for tiles in 1..=cfg.max_tiles {
        for &l2_banks in &cfg.l2_banks_grid {
            for &l2_kb in &cfg.l2_kb_grid {
                for &noc_bw in &cfg.noc_bw_grid {
                    let sys = SystemParams {
                        tiles,
                        l2_banks,
                        l2_kb,
                        noc_bw_bytes: noc_bw,
                        dram_channels: cfg.dram_channels,
                    };
                    sweep.candidates += 1;
                    sys_adg.sys = sys;
                    let used = breakdown(&sys_adg, model).total();
                    if !cfg.device.fits(&used, cfg.util_cap) {
                        sweep.over_budget += 1;
                        continue;
                    }
                    if prune {
                        let _t = if shadow {
                            None
                        } else {
                            overgen_telemetry::profile::maybe_phase(
                                overgen_telemetry::Phase::Analytic,
                                overgen_telemetry::profile::NO_CLASS,
                            )
                        };
                        scores.clear();
                        for (batch, &w) in batches.iter().zip(weights) {
                            scores.push((batch.bound(&sys).ipc_upper, w));
                        }
                        let upper = weighted_geomean_ipc(&scores);
                        if !upper_bound_can_win(&sweep.best, &sys, upper) {
                            sweep.pruned += 1;
                            continue;
                        }
                    }
                    sweep.admitted += 1;
                    let _t = if shadow {
                        None
                    } else {
                        overgen_telemetry::profile::maybe_phase(
                            overgen_telemetry::Phase::Simulate,
                            overgen_telemetry::profile::NO_CLASS,
                        )
                    };
                    scores.clear();
                    for (batch, &w) in batches.iter_mut().zip(weights) {
                        let r = if shadow {
                            batch.run(&sys)
                        } else {
                            batch.run_cached(&sys)
                        };
                        scores.push((r.ipc, w));
                    }
                    let score = weighted_geomean_ipc(&scores);
                    if beats(&sweep.best, &sys, score) {
                        sweep.best = Some((sys, score));
                    }
                }
            }
        }
    }
    sweep
}

/// Whether `OVERGEN_SIM_ORACLE` asks for the differential shadow sweep.
fn oracle_enabled() -> bool {
    matches!(
        std::env::var("OVERGEN_SIM_ORACLE").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

/// Simulator-backed system DSE: choose the best system parameters for an
/// accelerator ADG by running the cycle-level flow simulator on every
/// admitted grid point, batching sibling points over warm per-workload
/// [`SimBatch`] templates. With `prune`, grid points whose analytic score
/// upper bound cannot beat the incumbent are skipped before simulation —
/// provably without changing the winner. Returns `None` when not even a
/// single tile fits the budget.
///
/// The sweep is fully serial: the selection rule is order-dependent and
/// the pruned/admitted tallies must be invariant in the caller's thread
/// count.
///
/// With `OVERGEN_SIM_ORACLE=1`, a silent exhaustive shadow sweep runs
/// beside the pruned one and the function panics if the winners (params
/// or exact score bits) diverge — the differential oracle the sim test
/// harness drives across all workloads.
pub fn system_dse_sim(
    adg: &Adg,
    per_workload: &[(&Mdfg, &Schedule, f64)], // (mdfg, schedule, weight)
    model: &dyn ResourceModel,
    cfg: &SystemDseConfig,
    sim_cfg: &SimConfig,
    prune: bool,
) -> Option<(SystemParams, f64)> {
    let _span = span!("dse.system", max_tiles = cfg.max_tiles);
    let mut batches: Vec<SimBatch> = per_workload
        .iter()
        .map(|(m, s, _)| SimBatch::new(m, s, adg, sim_cfg))
        .collect();
    let weights: Vec<f64> = per_workload.iter().map(|(_, _, w)| *w).collect();
    let sweep = sweep_sim(adg, &mut batches, &weights, model, cfg, prune, false);
    if oracle_enabled() {
        let shadow = sweep_sim(adg, &mut batches, &weights, model, cfg, false, true);
        let agree = match (&sweep.best, &shadow.best) {
            (None, None) => true,
            (Some((s_a, v_a)), Some((s_b, v_b))) => s_a == s_b && v_a.to_bits() == v_b.to_bits(),
            _ => false,
        };
        assert!(
            agree,
            "sim oracle: pruned winner {:?} != exhaustive winner {:?} \
             (pruned {} of {} candidates)",
            sweep.best, shadow.best, sweep.pruned, sweep.candidates,
        );
    }
    // Sibling-reuse hits accumulated by the pruned sweep's batches (the
    // shadow sweep bypasses the cache, so the tally is oracle-invariant).
    let reused = reuse_hits(&batches);
    if let Some(c) = overgen_telemetry::current() {
        c.registry()
            .counter("sim.analytic.pruned")
            .add(sweep.pruned);
        c.registry()
            .counter("sim.analytic.admitted")
            .add(sweep.admitted);
        c.registry().counter("sim.batch.reuse").add(reused);
    }
    match &sweep.best {
        Some((sys, score)) => event!(
            "dse.system",
            candidates = sweep.candidates,
            over_budget = sweep.over_budget,
            pruned = sweep.pruned,
            admitted = sweep.admitted,
            reused = reused,
            tiles = sys.tiles,
            l2_banks = sys.l2_banks,
            l2_kb = sys.l2_kb,
            noc_bw = sys.noc_bw_bytes,
            score = *score,
        ),
        None => event!(
            "dse.system",
            candidates = sweep.candidates,
            over_budget = sweep.over_budget,
            pruned = sweep.pruned,
            admitted = sweep.admitted,
            reused = reused,
            feasible = false,
        ),
    }
    sweep.best
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};
    use overgen_model::AnalyticModel;

    fn mdfg(n: u64, unroll: u32) -> Mdfg {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        lower(
            &k,
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// A compute-bound, high-reuse kernel (FIR) whose hot array sits in a
    /// scratchpad: tile count should scale performance.
    fn fir_mdfg(unroll: u32) -> Mdfg {
        let k = KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap();
        lower(
            &k,
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn small_tile_gets_many_copies() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let (sys, score) =
            system_dse(&adg, &per, &AnalyticModel, &SystemDseConfig::default(), 1).unwrap();
        assert!(score > 0.0);
        // a tiny accelerator tile running a compute-bound kernel should
        // replicate several times
        assert!(sys.tiles >= 4, "tiles {}", sys.tiles);
    }

    #[test]
    fn general_tile_fits_fewer_copies() {
        let small = mesh(&MeshSpec::default());
        let general = mesh(&MeshSpec::general());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let cfg = SystemDseConfig::default();
        let (s_small, _) = system_dse(&small, &per, &AnalyticModel, &cfg, 1).unwrap();
        let (s_general, _) = system_dse(&general, &per, &AnalyticModel, &cfg, 1).unwrap();
        assert!(s_general.tiles <= 4, "general tiles {}", s_general.tiles);
        assert!(s_small.tiles > s_general.tiles);
    }

    #[test]
    fn dram_bound_kernel_is_tile_insensitive() {
        // Streaming vecadd with no reuse: DRAM bandwidth caps whole-FPGA
        // IPC, so tile count barely moves the score (the §III-C
        // "balancing bandwidths" trade-off).
        let adg = mesh(&MeshSpec::default());
        let m = mdfg(65536, 2);
        let placement = Placement::default();
        let per = vec![(&m, &placement, 1.0)];
        let (_, score) =
            system_dse(&adg, &per, &AnalyticModel, &SystemDseConfig::default(), 1).unwrap();
        let one_tile = overgen_model::estimate_ipc(
            &m,
            &SystemParams {
                tiles: 1,
                ..SystemParams::default()
            },
            0.0,
            &placement,
        )
        .ipc;
        assert!(score < one_tile * 4.0, "score {score} vs 1-tile {one_tile}");
    }

    #[test]
    fn none_when_budget_too_small() {
        let adg = mesh(&MeshSpec::general());
        let m = mdfg(1024, 1);
        let placement = Placement::default();
        let per = vec![(&m, &placement, 1.0)];
        let tiny_device = FpgaDevice {
            name: "tiny",
            total: overgen_model::Resources {
                lut: 10_000.0,
                ff: 20_000.0,
                bram: 50.0,
                dsp: 100.0,
            },
        };
        let cfg = SystemDseConfig {
            device: tiny_device,
            ..Default::default()
        };
        assert!(system_dse(&adg, &per, &AnalyticModel, &cfg, 1).is_none());
    }

    #[test]
    fn threaded_sweep_matches_serial() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let cfg = SystemDseConfig::default();
        let serial = system_dse(&adg, &per, &AnalyticModel, &cfg, 1);
        for threads in [2, 4, 7] {
            let par = system_dse(&adg, &per, &AnalyticModel, &cfg, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    fn sched_for(adg: &Adg, m: &Mdfg) -> Schedule {
        let sys = SysAdg::new(adg.clone(), SystemParams::default());
        overgen_scheduler::schedule(m, &sys, None).unwrap()
    }

    /// A reduced grid that keeps the debug-build sim sweep quick.
    fn small_cfg() -> SystemDseConfig {
        SystemDseConfig {
            max_tiles: 4,
            l2_banks_grid: vec![4, 16],
            l2_kb_grid: vec![256, 2048],
            noc_bw_grid: vec![32, 64],
            ..Default::default()
        }
    }

    #[test]
    fn sim_backend_pruned_matches_exhaustive() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let s = sched_for(&adg, &m);
        let per = vec![(&m, &s, 1.0)];
        let cfg = small_cfg();
        let sim_cfg = overgen_sim::SimConfig::default();
        let exhaustive = system_dse_sim(&adg, &per, &AnalyticModel, &cfg, &sim_cfg, false);
        let pruned = system_dse_sim(&adg, &per, &AnalyticModel, &cfg, &sim_cfg, true);
        let (e, p) = (exhaustive.unwrap(), pruned.unwrap());
        assert_eq!(e.0, p.0);
        assert_eq!(e.1.to_bits(), p.1.to_bits());
    }

    #[test]
    fn sim_backend_none_when_budget_too_small() {
        let adg = mesh(&MeshSpec::general());
        let m = mdfg(1024, 1);
        let s = sched_for(&adg, &m);
        let per = vec![(&m, &s, 1.0)];
        let tiny_device = FpgaDevice {
            name: "tiny",
            total: overgen_model::Resources {
                lut: 10_000.0,
                ff: 20_000.0,
                bram: 50.0,
                dsp: 100.0,
            },
        };
        let cfg = SystemDseConfig {
            device: tiny_device,
            ..small_cfg()
        };
        let sim_cfg = overgen_sim::SimConfig::default();
        assert!(system_dse_sim(&adg, &per, &AnalyticModel, &cfg, &sim_cfg, true).is_none());
    }

    #[test]
    fn sim_backend_oracle_mode_agrees() {
        // With the oracle env set, the pruned sweep self-checks against a
        // shadow exhaustive sweep and panics on divergence; surviving the
        // call IS the assertion.
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let s = sched_for(&adg, &m);
        let per = vec![(&m, &s, 1.0)];
        let cfg = small_cfg();
        let sim_cfg = overgen_sim::SimConfig::default();
        std::env::set_var("OVERGEN_SIM_ORACLE", "1");
        let got = system_dse_sim(&adg, &per, &AnalyticModel, &cfg, &sim_cfg, true);
        std::env::remove_var("OVERGEN_SIM_ORACLE");
        assert!(got.is_some());
    }

    #[test]
    fn custom_grids_restrict_the_search() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let cfg = SystemDseConfig {
            l2_banks_grid: vec![8],
            l2_kb_grid: vec![512],
            noc_bw_grid: vec![64],
            ..Default::default()
        };
        let (sys, _) = system_dse(&adg, &per, &AnalyticModel, &cfg, 1).unwrap();
        assert_eq!(sys.l2_banks, 8);
        assert_eq!(sys.l2_kb, 512);
        assert_eq!(sys.noc_bw_bytes, 64);
    }
}
