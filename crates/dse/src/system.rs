//! The nested system-level DSE (§V-A): for a candidate accelerator ADG,
//! exhaustively search tile count, L2 banks, L2 capacity, and NoC bandwidth
//! under the FPGA resource budget; "it is relatively inexpensive to nest
//! system DSE inside of spatial DSE".

use overgen_adg::{Adg, SysAdg, SystemParams};
use overgen_mdfg::Mdfg;
use overgen_model::resources::FpgaDevice;
use overgen_model::{breakdown, estimate_ipc, weighted_geomean_ipc, Placement, ResourceModel};
use overgen_telemetry::{event, span};

use crate::pool::fan_out;

/// System DSE configuration, including the candidate grids the exhaustive
/// sweep walks. The grids are plain data so tests can shrink or extend the
/// sweep and so evaluation-cache keys can cover non-default grids.
#[derive(Debug, Clone)]
pub struct SystemDseConfig {
    /// Device budget.
    pub device: FpgaDevice,
    /// Maximum utilization of any single resource ("our DSE greedily
    /// consumes as many resources as possible", Q4 — up to this cap).
    pub util_cap: f64,
    /// Candidate tile counts (1..=max explored).
    pub max_tiles: u32,
    /// DRAM channels (fixed by the experiment; 1 for the paper's FPGA).
    pub dram_channels: u32,
    /// Candidate L2 bank counts.
    pub l2_banks_grid: Vec<u32>,
    /// Candidate total L2 capacities in KiB.
    pub l2_kb_grid: Vec<u32>,
    /// Candidate NoC bandwidths in bytes/cycle.
    pub noc_bw_grid: Vec<u32>,
}

impl Default for SystemDseConfig {
    fn default() -> Self {
        SystemDseConfig {
            device: overgen_model::XCVU9P,
            util_cap: 0.97,
            max_tiles: 16,
            dram_channels: 1,
            l2_banks_grid: vec![2, 4, 8, 16],
            l2_kb_grid: vec![256, 512, 1024, 2048],
            noc_bw_grid: vec![32, 64],
        }
    }
}

/// One tile-count slice of the sweep: every (banks, kb, noc) combination
/// scored in grid order, plus the slice's candidate/over-budget tallies.
struct TileSlice {
    scored: Vec<(SystemParams, f64)>,
    candidates: u64,
    over_budget: u64,
}

/// Exhaustively choose the best system parameters for an accelerator ADG
/// given the best-scheduled mDFG (plus its scratchpad placement) per
/// workload. Returns `None` when not even a single tile fits the budget.
///
/// With `threads > 1` the per-tile-count slices of the sweep are scored on
/// a scoped worker pool; the winner is still selected by folding every
/// candidate in the canonical serial order, so the choice (including the
/// order-dependent near-tie handling below) is identical for any thread
/// count.
pub fn system_dse(
    adg: &Adg,
    per_workload: &[(&Mdfg, &Placement, f64)], // (mdfg, placement, weight)
    model: &dyn ResourceModel,
    cfg: &SystemDseConfig,
    threads: usize,
) -> Option<(SystemParams, f64)> {
    let _span = span!("dse.system", max_tiles = cfg.max_tiles);
    let spad_bw: f64 = adg
        .nodes()
        .filter_map(|(_, n)| n.as_spad().map(|s| f64::from(s.bw_bytes)))
        .sum();

    let slices = fan_out(threads, (1..=cfg.max_tiles).collect(), |tiles| {
        let mut slice = TileSlice {
            scored: Vec::new(),
            candidates: 0,
            over_budget: 0,
        };
        for &l2_banks in &cfg.l2_banks_grid {
            for &l2_kb in &cfg.l2_kb_grid {
                for &noc_bw in &cfg.noc_bw_grid {
                    let sys = SystemParams {
                        tiles,
                        l2_banks,
                        l2_kb,
                        noc_bw_bytes: noc_bw,
                        dram_channels: cfg.dram_channels,
                    };
                    slice.candidates += 1;
                    let sys_adg = SysAdg::new(adg.clone(), sys);
                    let used = breakdown(&sys_adg, model).total();
                    if !cfg.device.fits(&used, cfg.util_cap) {
                        slice.over_budget += 1;
                        continue;
                    }
                    let ipcs: Vec<(f64, f64)> = per_workload
                        .iter()
                        .map(|(m, p, w)| (estimate_ipc(m, &sys, spad_bw, p).ipc, *w))
                        .collect();
                    slice.scored.push((sys, weighted_geomean_ipc(&ipcs)));
                }
            }
        }
        slice
    });

    let mut candidates = 0u64;
    let mut over_budget = 0u64;
    let mut best: Option<(SystemParams, f64)> = None;
    // Fold in ascending-tile (= serial sweep) order: the near-tie rule
    // below depends on which candidate is seen first, so the fold order is
    // part of the function's contract.
    for slice in slices {
        candidates += slice.candidates;
        over_budget += slice.over_budget;
        for (sys, score) in slice.scored {
            // Prefer strictly better scores; on (near-)ties prefer
            // MORE tiles — the paper's DSE "greedily consumes as
            // many resources as possible, even if there is no
            // parallelism" (Q4), which is what pushes overlays to
            // 81-97% LUT occupancy.
            let better = match &best {
                None => true,
                Some((b_sys, b_score)) => {
                    score > b_score * 1.001 || (score >= b_score * 0.999 && sys.tiles > b_sys.tiles)
                }
            };
            if better {
                best = Some((sys, score));
            }
        }
    }
    match &best {
        Some((sys, score)) => event!(
            "dse.system",
            candidates = candidates,
            over_budget = over_budget,
            tiles = sys.tiles,
            l2_banks = sys.l2_banks,
            l2_kb = sys.l2_kb,
            noc_bw = sys.noc_bw_bytes,
            score = *score,
        ),
        None => event!(
            "dse.system",
            candidates = candidates,
            over_budget = over_budget,
            feasible = false,
        ),
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};
    use overgen_model::AnalyticModel;

    fn mdfg(n: u64, unroll: u32) -> Mdfg {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        lower(
            &k,
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// A compute-bound, high-reuse kernel (FIR) whose hot array sits in a
    /// scratchpad: tile count should scale performance.
    fn fir_mdfg(unroll: u32) -> Mdfg {
        let k = KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap();
        lower(
            &k,
            0,
            &LowerChoices {
                unroll,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn small_tile_gets_many_copies() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let (sys, score) =
            system_dse(&adg, &per, &AnalyticModel, &SystemDseConfig::default(), 1).unwrap();
        assert!(score > 0.0);
        // a tiny accelerator tile running a compute-bound kernel should
        // replicate several times
        assert!(sys.tiles >= 4, "tiles {}", sys.tiles);
    }

    #[test]
    fn general_tile_fits_fewer_copies() {
        let small = mesh(&MeshSpec::default());
        let general = mesh(&MeshSpec::general());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let cfg = SystemDseConfig::default();
        let (s_small, _) = system_dse(&small, &per, &AnalyticModel, &cfg, 1).unwrap();
        let (s_general, _) = system_dse(&general, &per, &AnalyticModel, &cfg, 1).unwrap();
        assert!(s_general.tiles <= 4, "general tiles {}", s_general.tiles);
        assert!(s_small.tiles > s_general.tiles);
    }

    #[test]
    fn dram_bound_kernel_is_tile_insensitive() {
        // Streaming vecadd with no reuse: DRAM bandwidth caps whole-FPGA
        // IPC, so tile count barely moves the score (the §III-C
        // "balancing bandwidths" trade-off).
        let adg = mesh(&MeshSpec::default());
        let m = mdfg(65536, 2);
        let placement = Placement::default();
        let per = vec![(&m, &placement, 1.0)];
        let (_, score) =
            system_dse(&adg, &per, &AnalyticModel, &SystemDseConfig::default(), 1).unwrap();
        let one_tile = overgen_model::estimate_ipc(
            &m,
            &SystemParams {
                tiles: 1,
                ..SystemParams::default()
            },
            0.0,
            &placement,
        )
        .ipc;
        assert!(score < one_tile * 4.0, "score {score} vs 1-tile {one_tile}");
    }

    #[test]
    fn none_when_budget_too_small() {
        let adg = mesh(&MeshSpec::general());
        let m = mdfg(1024, 1);
        let placement = Placement::default();
        let per = vec![(&m, &placement, 1.0)];
        let tiny_device = FpgaDevice {
            name: "tiny",
            total: overgen_model::Resources {
                lut: 10_000.0,
                ff: 20_000.0,
                bram: 50.0,
                dsp: 100.0,
            },
        };
        let cfg = SystemDseConfig {
            device: tiny_device,
            ..Default::default()
        };
        assert!(system_dse(&adg, &per, &AnalyticModel, &cfg, 1).is_none());
    }

    #[test]
    fn threaded_sweep_matches_serial() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let cfg = SystemDseConfig::default();
        let serial = system_dse(&adg, &per, &AnalyticModel, &cfg, 1);
        for threads in [2, 4, 7] {
            let par = system_dse(&adg, &per, &AnalyticModel, &cfg, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn custom_grids_restrict_the_search() {
        let adg = mesh(&MeshSpec::default());
        let m = fir_mdfg(2);
        let placement = Placement::from_prefs(&m);
        let per = vec![(&m, &placement, 1.0)];
        let cfg = SystemDseConfig {
            l2_banks_grid: vec![8],
            l2_kb_grid: vec![512],
            noc_bw_grid: vec![64],
            ..Default::default()
        };
        let (sys, _) = system_dse(&adg, &per, &AnalyticModel, &cfg, 1).unwrap();
        assert_eq!(sys.l2_banks, 8);
        assert_eq!(sys.l2_kb, 512);
        assert_eq!(sys.noc_bw_bytes, 64);
    }
}
