//! The persistent, on-disk, content-addressed evaluation store.
//!
//! The in-memory [`Memo`](crate::cache) tables die with the process, so
//! every run starts cold even when another tenant just evaluated the same
//! domain. This module promotes memoized artifacts to disk: each entry is
//! one *whole* cached evaluation — the [`EvalState`] outcome, the captured
//! telemetry trace (as [`PortableOp`]s), and the isolated metric deltas —
//! keyed by the exact ADG-fingerprint × config-hash keys the in-memory
//! caches already use. Because an evaluation is a deterministic function
//! of its key, and a cache hit replays the stored trace and merges the
//! stored registry (see `eval.rs`), a store-served artifact is
//! byte-for-byte indistinguishable from recomputation — the foundation of
//! the cross-tenant determinism argument in DESIGN.md §13.
//!
//! ## On-disk layout
//!
//! One file per entry, named `eval-<key>.json` / `sys-<key>.json` under
//! the store directory, each written via
//! [`write_atomic`](overgen_telemetry::fs::write_atomic) and carrying a
//! versioned header:
//!
//! ```json
//! {"magic":"overgen-eval-store","version":1,"kind":"eval",
//!  "key":"<hex u64>","payload":{...}}
//! ```
//!
//! Content addressing makes multi-process races benign: two processes
//! publishing the same key write identical bytes, different keys write
//! different files, and the atomic rename means readers never observe a
//! torn entry. There is no index file to merge or corrupt.
//!
//! ## Accounting determinism
//!
//! [`EvalStore::open`] snapshots the key set found on disk (the *warm*
//! set). A lookup counts as a `hit` iff its key is in that snapshot, else
//! as a `miss` — even when a sibling job published the entry seconds ago
//! (the value is still served; such serves increment the separate,
//! scheduling-dependent `shared_serves` counter). `hits`/`misses` are
//! therefore a pure function of the open snapshot and each job's key
//! stream, deterministic for any worker count and interleaving, and the
//! `hits + misses == lookups` invariant holds across reloads.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use overgen_adg::SystemParams;
use overgen_telemetry::fs::write_atomic;
use overgen_telemetry::json::{self, Obj, Value};
use overgen_telemetry::{names, CapturedTrace, FieldValue, MetricSnapshot, PortableOp, Registry};

use crate::checkpoint::{
    arr, d_arr, d_f64, d_pair, d_str, d_u32, d_u64, eval_from_json, eval_to_json, fx, get, hx,
};
use crate::eval::{CachedEval, CachedSystem};

/// Store file-format magic.
pub const STORE_MAGIC: &str = "overgen-eval-store";
/// Store file-format version. Entries written by a different version are
/// refused at load with [`StoreError::Version`]. Version history: 1 =
/// original; 2 = per-eval `placement` metrics (spatial placement).
pub const STORE_VERSION: u64 = 2;

/// Why the store could not be opened or an entry could not be read.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// An entry file exists but does not decode as a store entry
    /// (truncated, not JSON, wrong magic, missing or malformed fields).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to decode.
        reason: String,
    },
    /// An entry was written by a different store-format version.
    Version {
        /// The offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store entry {}: {reason}", path.display())
            }
            StoreError::Version {
                path,
                found,
                expected,
            } => write!(
                f,
                "store entry {} has version {found}, expected {expected}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Snapshot of the store's accounting counters; see the module docs for
/// which are deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total lookups (`hits + misses` always).
    pub lookups: u64,
    /// Lookups whose key was on disk when the store was opened.
    /// Deterministic per run for a fixed snapshot.
    pub hits: u64,
    /// Lookups whose key was not in the open snapshot. Deterministic.
    pub misses: u64,
    /// Entries inserted (and written to disk) by this store instance.
    pub publishes: u64,
    /// Miss-path lookups nevertheless served from memory because a
    /// sibling job published the key after open. Scheduling-dependent —
    /// excluded from all determinism claims.
    pub shared_serves: u64,
    /// Entries loaded from disk at open (the warm set size).
    pub warm_entries: u64,
}

#[derive(Default)]
struct StatsInner {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    publishes: AtomicU64,
    shared_serves: AtomicU64,
}

/// Entry kinds, doubling as the filename prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Eval,
    Sys,
}

impl Kind {
    fn tag(self) -> &'static str {
        match self {
            Kind::Eval => "eval",
            Kind::Sys => "sys",
        }
    }

    fn from_tag(s: &str) -> Option<Kind> {
        match s {
            "eval" => Some(Kind::Eval),
            "sys" => Some(Kind::Sys),
            _ => None,
        }
    }
}

/// A decoded store entry, shared read-only between jobs. Serving clones
/// the outcome and rebuilds the trace with fresh span tokens per use.
enum Artifact {
    Eval {
        state: Option<crate::eval::EvalState>,
        sim: f64,
        ops: Vec<PortableOp>,
        metrics: Vec<(&'static str, MetricSnapshot)>,
    },
    Sys {
        result: Option<(SystemParams, f64)>,
        ops: Vec<PortableOp>,
    },
}

/// The persistent evaluation store. Open once per service (or bench run)
/// and share the `Arc` across every job's [`DseConfig`](crate::DseConfig);
/// all interior mutability is thread-safe.
pub struct EvalStore {
    dir: PathBuf,
    /// Keys present on disk at open — the deterministic warm set.
    snapshot: BTreeSet<(Kind, u64)>,
    entries: Mutex<BTreeMap<(Kind, u64), Arc<Artifact>>>,
    stats: StatsInner,
}

impl std::fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalStore")
            .field("dir", &self.dir)
            .field("warm_entries", &self.snapshot.len())
            .finish_non_exhaustive()
    }
}

impl EvalStore {
    /// Open (creating if needed) the store at `dir`, loading and decoding
    /// every entry file found there. Any unreadable, truncated, corrupt,
    /// or version-mismatched entry rejects the whole load with a typed
    /// error — a shared cache that silently dropped entries would make
    /// warm-hit accounting nondeterministic.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`] /
    /// [`StoreError::Version`] on bad entries.
    pub fn open(dir: impl AsRef<Path>) -> Result<Arc<EvalStore>, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut entries = BTreeMap::new();
        // Collect then sort: read_dir order is filesystem-dependent.
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| is_entry_file(p))
            .collect();
        paths.sort();
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let (kind, key, artifact) = decode_entry(&path, &text)?;
            entries.insert((kind, key), Arc::new(artifact));
        }
        let snapshot: BTreeSet<(Kind, u64)> = entries.keys().copied().collect();
        Ok(Arc::new(EvalStore {
            dir,
            snapshot,
            entries: Mutex::new(entries),
            stats: StatsInner::default(),
        }))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current accounting counters.
    pub fn stats(&self) -> StoreStats {
        let lookups = self.stats.lookups.load(Ordering::Relaxed);
        let hits = self.stats.hits.load(Ordering::Relaxed);
        let misses = self.stats.misses.load(Ordering::Relaxed);
        debug_assert_eq!(hits + misses, lookups);
        StoreStats {
            lookups,
            hits,
            misses,
            publishes: self.stats.publishes.load(Ordering::Relaxed),
            shared_serves: self.stats.shared_serves.load(Ordering::Relaxed),
            warm_entries: self.snapshot.len() as u64,
        }
    }

    /// Number of entries currently held (warm + published).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, kind: Kind, key: u64) -> Option<Arc<Artifact>> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let warm = self.snapshot.contains(&(kind, key));
        if warm {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        let found = self.entries.lock().unwrap().get(&(kind, key)).cloned();
        if found.is_some() && !warm {
            self.stats.shared_serves.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn publish(&self, kind: Kind, key: u64, artifact: Artifact, payload: String) {
        use std::collections::btree_map::Entry;
        match self.entries.lock().unwrap().entry((kind, key)) {
            Entry::Occupied(_) => return, // same key => same content; keep first
            Entry::Vacant(v) => {
                v.insert(Arc::new(artifact));
            }
        }
        self.stats.publishes.fetch_add(1, Ordering::Relaxed);
        let line = Obj::new()
            .str("magic", STORE_MAGIC)
            .u64("version", STORE_VERSION)
            .str("kind", kind.tag())
            .raw("key", &hx(key))
            .raw("payload", &payload)
            .finish();
        let path = self.dir.join(format!("{}-{key:016x}.json", kind.tag()));
        if let Err(e) = write_atomic(&path, format!("{line}\n").as_bytes()) {
            eprintln!("warning: cannot write store entry {}: {e}", path.display());
        }
    }

    /// Serve a full evaluation artifact, if stored.
    pub(crate) fn fetch_eval(&self, key: u64) -> Option<CachedEval> {
        let a = self.lookup(Kind::Eval, key)?;
        let Artifact::Eval {
            state,
            sim,
            ops,
            metrics,
        } = &*a
        else {
            unreachable!("eval key decoded as sys artifact");
        };
        let registry = Registry::new();
        for (name, snap) in metrics {
            registry.import(name, snap);
        }
        Some(CachedEval {
            state: state.clone(),
            sim: *sim,
            trace: CapturedTrace::from_portable(ops),
            registry,
        })
    }

    /// Persist a freshly computed evaluation artifact.
    pub(crate) fn publish_eval(&self, key: u64, c: &CachedEval) {
        let ops = c.trace.to_portable();
        let metrics = c.registry.export();
        let payload = Obj::new()
            .raw(
                "state",
                &c.state.as_ref().map_or("null".into(), eval_to_json),
            )
            .raw("sim", &fx(c.sim))
            .raw("trace", &encode_ops(&ops))
            .raw("metrics", &encode_metrics(&metrics))
            .finish();
        self.publish(
            Kind::Eval,
            key,
            Artifact::Eval {
                state: c.state.clone(),
                sim: c.sim,
                ops,
                metrics,
            },
            payload,
        );
    }

    /// Serve a system-DSE artifact, if stored.
    pub(crate) fn fetch_sys(&self, key: u64) -> Option<CachedSystem> {
        let a = self.lookup(Kind::Sys, key)?;
        let Artifact::Sys { result, ops } = &*a else {
            unreachable!("sys key decoded as eval artifact");
        };
        Some(CachedSystem {
            result: *result,
            trace: CapturedTrace::from_portable(ops),
        })
    }

    /// Persist a freshly computed system-DSE artifact.
    pub(crate) fn publish_sys(&self, key: u64, c: &CachedSystem) {
        let ops = c.trace.to_portable();
        let result = match &c.result {
            Some((sys, score)) => Obj::new()
                .raw("sys", &sys_to_json(sys))
                .raw("score", &fx(*score))
                .finish(),
            None => "null".into(),
        };
        let payload = Obj::new()
            .raw("result", &result)
            .raw("trace", &encode_ops(&ops))
            .finish();
        self.publish(
            Kind::Sys,
            key,
            Artifact::Sys {
                result: c.result,
                ops,
            },
            payload,
        );
    }
}

fn is_entry_file(p: &Path) -> bool {
    let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    (name.starts_with("eval-") || name.starts_with("sys-")) && name.ends_with(".json")
}

fn decode_entry(path: &Path, text: &str) -> Result<(Kind, u64, Artifact), StoreError> {
    let corrupt = |reason: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    let v = json::parse(text.trim_end()).map_err(&corrupt)?;
    let magic = get(&v, "magic")
        .and_then(|m| d_str(m).map(str::to_string))
        .map_err(&corrupt)?;
    if magic != STORE_MAGIC {
        return Err(corrupt(format!("bad magic {magic:?}")));
    }
    let version = get(&v, "version")
        .and_then(|x| x.as_u64().ok_or_else(|| "expected version".to_string()))
        .map_err(&corrupt)?;
    if version != STORE_VERSION {
        return Err(StoreError::Version {
            path: path.to_path_buf(),
            found: version,
            expected: STORE_VERSION,
        });
    }
    (|| -> Result<(Kind, u64, Artifact), String> {
        let kind = Kind::from_tag(d_str(get(&v, "kind")?)?)
            .ok_or_else(|| "unknown entry kind".to_string())?;
        let key = d_u64(get(&v, "key")?)?;
        let payload = get(&v, "payload")?;
        let artifact = match kind {
            Kind::Eval => {
                let state = match get(payload, "state")? {
                    Value::Null => None,
                    s => Some(eval_from_json(s)?),
                };
                let metrics = d_arr(get(payload, "metrics")?)?
                    .iter()
                    .map(|p| {
                        let (name, snap) = d_pair(p)?;
                        let name = d_str(name)?;
                        let name = names::intern_metric(name)
                            .ok_or_else(|| format!("undocumented metric name {name:?}"))?;
                        Ok((name, decode_metric(snap)?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Artifact::Eval {
                    state,
                    sim: d_f64(get(payload, "sim")?)?,
                    ops: decode_ops(get(payload, "trace")?)?,
                    metrics,
                }
            }
            Kind::Sys => {
                let result = match get(payload, "result")? {
                    Value::Null => None,
                    r => Some((sys_from_json(get(r, "sys")?)?, d_f64(get(r, "score")?)?)),
                };
                Artifact::Sys {
                    result,
                    ops: decode_ops(get(payload, "trace")?)?,
                }
            }
        };
        Ok((kind, key, artifact))
    })()
    .map_err(corrupt)
}

// ---------------------------------------------------------------------------
// Serialization of the telemetry halves of an artifact. Same hex-string
// conventions as checkpoint.rs: u64 and f64 bit patterns survive exactly.

fn sys_to_json(s: &SystemParams) -> String {
    Obj::new()
        .raw("tiles", &hx(u64::from(s.tiles)))
        .raw("l2_banks", &hx(u64::from(s.l2_banks)))
        .raw("l2_kb", &hx(u64::from(s.l2_kb)))
        .raw("noc_bw", &hx(u64::from(s.noc_bw_bytes)))
        .raw("dram", &hx(u64::from(s.dram_channels)))
        .finish()
}

fn sys_from_json(v: &Value) -> Result<SystemParams, String> {
    Ok(SystemParams {
        tiles: d_u32(get(v, "tiles")?)?,
        l2_banks: d_u32(get(v, "l2_banks")?)?,
        l2_kb: d_u32(get(v, "l2_kb")?)?,
        noc_bw_bytes: d_u32(get(v, "noc_bw")?)?,
        dram_channels: d_u32(get(v, "dram")?)?,
    })
}

fn encode_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(n) => format!("[\"u\",{}]", hx(*n)),
        FieldValue::I64(n) => format!("[\"i\",{}]", hx(*n as u64)),
        FieldValue::F64(n) => format!("[\"f\",{}]", fx(*n)),
        FieldValue::Bool(b) => format!("[\"b\",{b}]"),
        FieldValue::Str(s) => format!("[\"s\",{}]", json::quote(s)),
    }
}

fn decode_field(v: &Value) -> Result<FieldValue, String> {
    let (tag, val) = d_pair(v)?;
    Ok(match d_str(tag)? {
        "u" => FieldValue::U64(d_u64(val)?),
        "i" => FieldValue::I64(d_u64(val)? as i64),
        "f" => FieldValue::F64(d_f64(val)?),
        "b" => FieldValue::Bool(val.as_bool().ok_or("expected bool")?),
        "s" => FieldValue::Str(d_str(val)?.to_string()),
        t => return Err(format!("unknown field tag {t:?}")),
    })
}

fn encode_fields(fields: &[(String, FieldValue)]) -> String {
    arr(fields
        .iter()
        .map(|(k, v)| format!("[{},{}]", json::quote(k), encode_field(v))))
}

fn decode_fields(v: &Value) -> Result<Vec<(String, FieldValue)>, String> {
    d_arr(v)?
        .iter()
        .map(|p| {
            let (k, f) = d_pair(p)?;
            Ok((d_str(k)?.to_string(), decode_field(f)?))
        })
        .collect()
}

fn encode_ops(ops: &[PortableOp]) -> String {
    arr(ops.iter().map(|op| match op {
        PortableOp::Event { kind, fields } => {
            format!("[\"e\",{},{}]", json::quote(kind), encode_fields(fields))
        }
        PortableOp::SpanOpen { slot } => format!("[\"o\",{}]", hx(*slot)),
        PortableOp::SpanClose {
            slot,
            name,
            rel_depth,
            fields,
        } => format!(
            "[\"c\",{},{},{},{}]",
            hx(*slot),
            json::quote(name),
            hx(*rel_depth),
            encode_fields(fields)
        ),
        PortableOp::Metrics => "[\"m\"]".to_string(),
    }))
}

fn decode_ops(v: &Value) -> Result<Vec<PortableOp>, String> {
    d_arr(v)?
        .iter()
        .map(|op| {
            let items = d_arr(op)?;
            let tag = d_str(items.first().ok_or("empty op")?)?;
            Ok(match (tag, &items[1..]) {
                ("e", [kind, fields]) => PortableOp::Event {
                    kind: d_str(kind)?.to_string(),
                    fields: decode_fields(fields)?,
                },
                ("o", [slot]) => PortableOp::SpanOpen { slot: d_u64(slot)? },
                ("c", [slot, name, depth, fields]) => PortableOp::SpanClose {
                    slot: d_u64(slot)?,
                    name: d_str(name)?.to_string(),
                    rel_depth: d_u64(depth)?,
                    fields: decode_fields(fields)?,
                },
                ("m", []) => PortableOp::Metrics,
                _ => return Err(format!("malformed op with tag {tag:?}")),
            })
        })
        .collect()
}

fn encode_metrics(metrics: &[(&'static str, MetricSnapshot)]) -> String {
    arr(metrics.iter().map(|(name, snap)| {
        let s = match snap {
            MetricSnapshot::Counter(v) => format!("[\"c\",{}]", hx(*v)),
            MetricSnapshot::Gauge(v) => format!("[\"g\",{}]", fx(*v)),
            MetricSnapshot::Histogram {
                buckets,
                count,
                sum,
                max,
            } => format!(
                "[\"h\",{},{},{},{}]",
                arr(buckets
                    .iter()
                    .map(|(i, n)| format!("[{},{}]", hx(u64::from(*i)), hx(*n)))),
                hx(*count),
                hx(*sum),
                hx(*max)
            ),
        };
        format!("[{},{s}]", json::quote(name))
    }))
}

fn decode_metric(v: &Value) -> Result<MetricSnapshot, String> {
    let items = d_arr(v)?;
    let tag = d_str(items.first().ok_or("empty metric")?)?;
    Ok(match (tag, &items[1..]) {
        ("c", [v]) => MetricSnapshot::Counter(d_u64(v)?),
        ("g", [v]) => MetricSnapshot::Gauge(d_f64(v)?),
        ("h", [buckets, count, sum, max]) => MetricSnapshot::Histogram {
            buckets: d_arr(buckets)?
                .iter()
                .map(|p| {
                    let (i, n) = d_pair(p)?;
                    Ok((d_u32(i)?, d_u64(n)?))
                })
                .collect::<Result<Vec<_>, String>>()?,
            count: d_u64(count)?,
            sum: d_u64(sum)?,
            max: d_u64(max)?,
        },
        _ => return Err(format!("malformed metric with tag {tag:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_telemetry::{capture_isolated, event, install, replay, span, Collector};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("overgen-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A representative eval artifact: spans, an event with every field
    /// kind, and metric deltas of all three kinds.
    fn sample_eval() -> CachedEval {
        let ((), trace, registry) = capture_isolated(|| {
            let _s = span!("dse.iteration", iter = 3u64);
            event!(
                "dse.propose",
                temp = 0.5f64,
                note = "warm",
                ok = true,
                delta = -2i64
            );
            let reg = overgen_telemetry::current().unwrap().registry().clone();
            reg.counter("dse.repairs").add(2);
            reg.gauge("dse.heartbeat.progress").set(0.25);
            reg.histogram("dse.repair_moved").record(5);
        });
        CachedEval {
            state: None,
            sim: 0.125,
            trace,
            registry,
        }
    }

    fn sample_sys(score: f64) -> CachedSystem {
        let ((), trace, _registry) = capture_isolated(|| {
            event!("dse.system", tiles = 4u64);
        });
        CachedSystem {
            result: Some((SystemParams::single_tile(), score)),
            trace,
        }
    }

    /// Replay a trace into a fresh ring collector and return the JSONL it
    /// produces — the byte-level identity the cache-hit path relies on.
    fn replay_jsonl(trace: &CapturedTrace) -> String {
        let (c, ring) = Collector::ring(256);
        let _g = install(c);
        replay(trace);
        ring.to_jsonl()
    }

    #[test]
    fn entries_round_trip_across_reload() {
        let dir = tmp("round-trip");
        let e = sample_eval();
        let s = sample_sys(2.5);
        {
            let st = EvalStore::open(&dir).unwrap();
            st.publish_eval(0x42, &e);
            st.publish_sys(7, &s);
            let stats = st.stats();
            assert_eq!(stats.publishes, 2);
            assert_eq!(stats.warm_entries, 0);
        }
        let st = EvalStore::open(&dir).unwrap();
        assert_eq!(st.stats().warm_entries, 2);
        let e2 = st.fetch_eval(0x42).expect("eval entry survives reload");
        assert!(e2.state.is_none());
        assert_eq!(e2.sim, e.sim);
        assert_eq!(replay_jsonl(&e2.trace), replay_jsonl(&e.trace));
        assert_eq!(e2.registry.export(), e.registry.export());
        let s2 = st.fetch_sys(7).expect("sys entry survives reload");
        assert_eq!(s2.result, s.result);
        assert_eq!(replay_jsonl(&s2.trace), replay_jsonl(&s.trace));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publishing_an_existing_key_is_a_no_op() {
        let dir = tmp("idempotent");
        let st = EvalStore::open(&dir).unwrap();
        st.publish_eval(1, &sample_eval());
        st.publish_eval(1, &sample_eval());
        assert_eq!(st.stats().publishes, 1);
        assert_eq!(st.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn accounting_is_deterministic_and_survives_reload() {
        let dir = tmp("accounting");
        {
            let st = EvalStore::open(&dir).unwrap();
            assert!(st.fetch_eval(1).is_none());
            st.publish_eval(1, &sample_eval());
            // Published after open: served, but still a deterministic miss.
            assert!(st.fetch_eval(1).is_some());
            let s = st.stats();
            assert_eq!(
                (s.lookups, s.hits, s.misses, s.shared_serves, s.publishes),
                (2, 0, 2, 1, 1)
            );
        }
        let st = EvalStore::open(&dir).unwrap();
        assert!(st.fetch_eval(1).is_some(), "warm entry hits after reload");
        assert!(st.fetch_eval(2).is_none());
        let s = st.stats();
        assert_eq!(
            (s.lookups, s.hits, s.misses, s.shared_serves, s.warm_entries),
            (2, 1, 1, 0, 1)
        );
        assert_eq!(s.hits + s.misses, s.lookups);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_rejected_as_corrupt() {
        let dir = tmp("truncated");
        {
            let st = EvalStore::open(&dir).unwrap();
            st.publish_eval(9, &sample_eval());
        }
        let path = dir.join(format!("eval-{:016x}.json", 9));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        match EvalStore::open(&dir) {
            Err(StoreError::Corrupt { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_and_foreign_files_are_handled() {
        let dir = tmp("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        // Files without an entry name are ignored entirely...
        std::fs::write(dir.join("README.txt"), "not an entry").unwrap();
        assert_eq!(EvalStore::open(&dir).unwrap().stats().warm_entries, 0);
        // ...but anything claiming to be an entry must decode.
        let entry = dir.join("eval-0000000000000001.json");
        std::fs::write(&entry, "{oops").unwrap();
        assert!(matches!(
            EvalStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::write(
            &entry,
            r#"{"magic":"something-else","version":1,"kind":"eval","key":"1","payload":{}}"#,
        )
        .unwrap();
        match EvalStore::open(&dir) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("magic"), "reason was {reason:?}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_refused() {
        let dir = tmp("version");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("sys-0000000000000003.json"),
            format!(
                "{{\"magic\":\"{STORE_MAGIC}\",\"version\":99,\"kind\":\"sys\",\
                 \"key\":\"3\",\"payload\":{{}}}}"
            ),
        )
        .unwrap();
        match EvalStore::open(&dir) {
            Err(StoreError::Version {
                found, expected, ..
            }) => assert_eq!((found, expected), (99, STORE_VERSION)),
            other => panic!("expected Version, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undocumented_metric_name_is_rejected() {
        let dir = tmp("metric-name");
        {
            let st = EvalStore::open(&dir).unwrap();
            st.publish_eval(5, &sample_eval());
        }
        let path = dir.join(format!("eval-{:016x}.json", 5));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("dse.repairs", "dse.bogus_metric")).unwrap();
        match EvalStore::open(&dir) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("dse.bogus_metric"), "reason was {reason:?}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_race_safely_on_one_directory() {
        let dir = tmp("race");
        let a = EvalStore::open(&dir).unwrap();
        let b = EvalStore::open(&dir).unwrap();
        let e = sample_eval();
        std::thread::scope(|s| {
            for st in [&a, &b] {
                let e = &e;
                s.spawn(move || {
                    for k in 0..16u64 {
                        st.publish_eval(k, e);
                    }
                });
            }
        });
        // Whatever the interleaving: same key, same content, atomic
        // renames — so a fresh open decodes cleanly with one entry per key.
        let fresh = EvalStore::open(&dir).unwrap();
        assert_eq!(fresh.stats().warm_entries, 16);
        for k in 0..16 {
            let got = fresh.fetch_eval(k).expect("entry for every key");
            assert_eq!(replay_jsonl(&got.trace), replay_jsonl(&e.trace));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
