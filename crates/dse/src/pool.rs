//! A minimal scoped-thread work pool (`std::thread::scope` only — no
//! dependencies).
//!
//! [`fan_out`] runs one closure over a batch of items on up to `threads`
//! workers and returns the results **in item order**, regardless of which
//! worker finished when. Determinism therefore rests on two rules the DSE
//! follows everywhere: closures communicate only through their return
//! value (or commutative atomics like telemetry counters), and the caller
//! folds the ordered results sequentially.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on up to `threads` workers; results come back
/// in item order. `threads <= 1` (or a single item) runs inline on the
/// calling thread — same code path, no spawn overhead.
pub(crate) fn fan_out<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i].lock().unwrap().take().expect("item taken once");
                let out = f(item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order() {
        for threads in [1, 2, 4, 9] {
            let out = fan_out(threads, (0..50usize).collect(), |i| i * i);
            assert_eq!(out, (0..50usize).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_fewer_items_than_threads() {
        assert_eq!(fan_out(8, vec![41], |i: i32| i + 1), vec![42]);
        assert_eq!(fan_out(8, Vec::<i32>::new(), |i| i), Vec::<i32>::new());
    }

    #[test]
    fn closures_see_each_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = fan_out(4, (0..100u64).collect(), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }
}
