//! The declarative ADG rewrite engine.
//!
//! The legacy hand-rolled mutation dispatch is rebuilt as a registry of
//! [`Rule`]s. Applying a rule runs it against a [`RecordedAdg`], which
//! logs the net change into an epoch-stamped [`AdgDelta`]; from the delta
//! the [`ScheduleFootprint`] is *inferred* mechanically
//! ([`infer_footprint`]) instead of hand-maintained, and the delta's
//! [`AdgDelta::scope`] feeds the scheduler's repair classifier directly so
//! provably-pure proposals skip the full decision scan.
//!
//! A debug oracle in [`RuleSet::apply_index`] asserts the inferred class
//! is never weaker than the rule's legacy hand classification; the ported
//! rules are in fact *exact* (see the equality test in `rules.rs`), which
//! is what keeps default-config DSE byte-identical to the pre-rewrite
//! goldens.
//!
//! [`RuleSet::apply_compound`] chains up to K rules into one proposal with
//! a merged delta and footprint — enabled by `DseConfig::compound`,
//! default off. Follow-up rules draw from the *benign* subset (additive
//! and attribute rules only) so compound proposals keep the repair
//! fast-path share at its single-rule level.
//!
//! Counters (registry-only, never trace events): `dse.rewrite.applied`,
//! `dse.rewrite.compound`, and `dse.rewrite.inferred_{pure, attribute,
//! additive, remove_unused, structural}`.

mod delta;
mod infer;
mod rules;

use std::sync::OnceLock;

use overgen_adg::Adg;
use overgen_ir::FuCap;
use overgen_scheduler::{Schedule, ScheduleFootprint};
use overgen_telemetry::Rng;

pub use delta::{AdgDelta, RecordedAdg};
pub use infer::infer_footprint;

/// Context a rule may consult: the capability pool relevant to the
/// domain and (optionally) the live schedules for preserving transforms.
pub struct TransformCtx<'a> {
    /// Capabilities the domain's kernels actually use (mutation pool).
    pub cap_pool: &'a [FuCap],
    /// Live schedules (for schedule-preserving guidance); empty slice when
    /// preserving transformations are disabled.
    pub schedules: &'a mut [Schedule],
    /// Whether schedule-preserving transformations are enabled.
    pub preserving: bool,
}

/// What a mutation did (for logging / statistics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Added a PE with the given capability count.
    AddPe,
    /// Removed a PE.
    RemovePe,
    /// Added a switch splitting an edge.
    AddSwitch,
    /// Removed a switch (collapsed when preserving).
    RemoveSwitch,
    /// Added a fabric edge.
    AddEdge,
    /// Removed a fabric edge.
    RemoveEdge,
    /// Added a capability to a PE.
    AddCap,
    /// Pruned unused capabilities (preserving) or removed a random one.
    RemoveCap,
    /// Doubled / halved a port width.
    ResizePort,
    /// Doubled / halved a scratchpad capacity or bandwidth.
    ResizeSpad,
    /// Doubled / halved an engine bandwidth.
    ResizeEngineBw,
    /// Removed a stream engine.
    RemoveEngine,
    /// Changed a PE's delay-FIFO depth.
    ResizeDelayFifo,
    /// Nothing applicable (identity).
    Noop,
}

impl Mutation {
    /// Stable lowercase name for telemetry events, derived from the rule
    /// registry (see [`kind_name`]) instead of a hand-maintained table.
    pub fn kind(&self) -> &'static str {
        kind_name(self)
    }
}

/// Index into [`RuleSet::legacy`] of the rule whose name labels this
/// mutation. `None` for [`Mutation::Noop`], which no rule owns.
fn rule_index(m: &Mutation) -> Option<usize> {
    Some(match m {
        Mutation::AddPe => 0,
        Mutation::RemovePe => 1,
        Mutation::AddSwitch => 2,
        Mutation::RemoveSwitch => 3,
        Mutation::AddEdge => 4,
        Mutation::RemoveEdge => 5,
        Mutation::AddCap => 6,
        Mutation::RemoveCap => 7,
        Mutation::ResizePort => 8,
        Mutation::ResizeSpad => 9,
        Mutation::ResizeEngineBw => 10,
        Mutation::RemoveEngine => 12,
        Mutation::ResizeDelayFifo => 13,
        Mutation::Noop => return None,
    })
}

/// Event name of a mutation, read off the rule registry entry that emits
/// it — the single source of truth the legacy `Mutation::kind()` match
/// table was deduplicated into.
pub fn kind_name(m: &Mutation) -> &'static str {
    match rule_index(m) {
        Some(i) => RuleSet::legacy().rules[i].name(),
        None => "noop",
    }
}

/// What a rule application reports back: the mutation it performed and the
/// legacy hand-classified footprint (kept as the oracle baseline the
/// inferred class is checked against).
#[derive(Debug, Clone)]
pub struct RuleOutcome {
    /// The mutation performed (possibly [`Mutation::Noop`]).
    pub mutation: Mutation,
    /// The legacy hand classification of this application.
    pub hand: ScheduleFootprint,
}

/// One declarative ADG rewrite rule: match against the graph, mutate it
/// through the recording wrapper, report what happened. The delta — and
/// from it the inferred footprint and repair scope — is collected by the
/// [`RuleSet`], not by the rule.
pub trait Rule: Send + Sync {
    /// Stable lowercase rule name; doubles as the mutation event name.
    fn name(&self) -> &'static str;

    /// Apply the rule once. Rules must route every graph mutation through
    /// the [`RecordedAdg`] wrappers and declare attribute writes with
    /// [`RecordedAdg::touch_attr`] on exactly the paths that write.
    fn apply(
        &self,
        adg: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome;
}

/// One recorded, classified rule application.
#[derive(Debug, Clone)]
pub struct Application {
    /// Name of the rule that ran.
    pub rule: &'static str,
    /// The mutation it performed.
    pub mutation: Mutation,
    /// Legacy hand classification (oracle baseline).
    pub hand: ScheduleFootprint,
    /// Footprint inferred from the recorded delta.
    pub inferred: ScheduleFootprint,
    /// The recorded net change.
    pub delta: AdgDelta,
}

/// A registry of rewrite rules with uniform application, inference, and
/// compound-proposal machinery.
pub struct RuleSet {
    rules: Vec<&'static dyn Rule>,
    /// Indices of rules that never remove hardware (additive or
    /// attribute-only), used for the follow-up draws of compound
    /// proposals.
    benign: Vec<usize>,
}

impl RuleSet {
    /// The 14 legacy mutations, in the exact order of the historical
    /// `random_mutation` dispatch — [`RuleSet::apply_random`]'s draw over
    /// this set reproduces the legacy RNG stream bit-for-bit.
    pub fn legacy() -> &'static RuleSet {
        static LEGACY: OnceLock<RuleSet> = OnceLock::new();
        LEGACY.get_or_init(|| RuleSet {
            rules: vec![
                &rules::AddPeRule,
                &rules::RemovePeRule,
                &rules::AddSwitchRule,
                &rules::RemoveSwitchRule,
                &rules::AddEdgeRule,
                &rules::RemoveEdgeRule,
                &rules::AddCapRule,
                &rules::RemoveCapRule,
                &rules::ResizePortRule,
                &rules::ResizeSpadRule,
                &rules::ResizeEngineBwRule,
                &rules::AddEngineRule,
                &rules::RemoveEngineRule,
                &rules::ResizeDelayFifoRule,
            ],
            benign: vec![0, 2, 4, 6, 8, 9, 10, 11, 13],
        })
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Registered rule names, in dispatch order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.rules.iter().map(|r| r.name())
    }

    /// Apply rule `idx` once: record its delta, infer its footprint, bump
    /// the `dse.rewrite.*` counters, and (debug builds) check the
    /// inference oracle — the inferred class must never be weaker than
    /// the rule's hand classification.
    pub fn apply_index(
        &self,
        idx: usize,
        adg: &mut Adg,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
        epoch: u64,
    ) -> Application {
        let rule = self.rules[idx];
        let mut delta = AdgDelta::new(epoch);
        let outcome = {
            let mut recorded = RecordedAdg::new(adg, &mut delta);
            rule.apply(&mut recorded, ctx, rng)
        };
        let inferred = infer_footprint(&delta, ctx.schedules);
        debug_assert!(
            inferred >= outcome.hand,
            "rule {} inferred footprint {:?} is weaker than hand class {:?} (delta {:?})",
            rule.name(),
            inferred,
            outcome.hand,
            delta
        );
        if let Some(c) = overgen_telemetry::current() {
            let reg = c.registry();
            reg.counter("dse.rewrite.applied").inc();
            reg.counter(inferred_counter(inferred)).inc();
        }
        Application {
            rule: rule.name(),
            mutation: outcome.mutation,
            hand: outcome.hand,
            inferred,
            delta,
        }
    }

    /// Apply one uniformly-drawn rule (the legacy `random_mutation`
    /// dispatch: one `u32` draw over the rule count, then the rule's own
    /// draws).
    pub fn apply_random(
        &self,
        adg: &mut Adg,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
        epoch: u64,
    ) -> Application {
        let choice = rng.gen_range(0..self.rules.len() as u32);
        self.apply_index(choice as usize, adg, ctx, rng, epoch)
    }

    /// One compound proposal: 1..=`k` chained rule applications sharing an
    /// epoch. The first draw runs the full registry (so compound mode
    /// explores everything single-rule mode does); follow-up draws are
    /// restricted to the benign subset, which keeps the repair fast-path
    /// share at its single-rule level. Callers merge the per-application
    /// deltas/footprints into the proposal.
    pub fn apply_compound(
        &self,
        adg: &mut Adg,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
        epoch: u64,
        k: usize,
    ) -> Vec<Application> {
        let n = rng.gen_range(1..=k.max(1) as u32) as usize;
        let mut apps = Vec::with_capacity(n);
        apps.push(self.apply_random(adg, ctx, rng, epoch));
        for _ in 1..n {
            let idx = self.benign[rng.gen_range(0..self.benign.len())];
            apps.push(self.apply_index(idx, adg, ctx, rng, epoch));
        }
        if n > 1 {
            if let Some(c) = overgen_telemetry::current() {
                c.registry().counter("dse.rewrite.compound").inc();
            }
        }
        apps
    }
}

/// Registry counter name for an inferred footprint class.
fn inferred_counter(fp: ScheduleFootprint) -> &'static str {
    match fp {
        ScheduleFootprint::Pure => "dse.rewrite.inferred_pure",
        ScheduleFootprint::Attribute => "dse.rewrite.inferred_attribute",
        ScheduleFootprint::Additive => "dse.rewrite.inferred_additive",
        ScheduleFootprint::RemoveUnused => "dse.rewrite.inferred_remove_unused",
        ScheduleFootprint::Structural => "dse.rewrite.inferred_structural",
    }
}

pub(crate) use rules::{capability_pruning_recorded, collapse_recorded};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_registry_has_all_fourteen_rules_in_dispatch_order() {
        let names: Vec<&str> = RuleSet::legacy().names().collect();
        assert_eq!(
            names,
            [
                "add_pe",
                "remove_pe",
                "add_switch",
                "remove_switch",
                "add_edge",
                "remove_edge",
                "add_cap",
                "remove_cap",
                "resize_port",
                "resize_spad",
                "resize_engine_bw",
                "add_engine",
                "remove_engine",
                "resize_delay_fifo",
            ]
        );
        assert_eq!(RuleSet::legacy().len(), 14);
        assert!(!RuleSet::legacy().is_empty());
    }

    #[test]
    fn mutation_kinds_derive_from_registry_entries() {
        // Every mutation's event name is a registered rule's name (Noop
        // aside), read from the registry rather than a parallel table.
        let set = RuleSet::legacy();
        for (m, want) in [
            (Mutation::AddPe, "add_pe"),
            (Mutation::RemovePe, "remove_pe"),
            (Mutation::AddSwitch, "add_switch"),
            (Mutation::RemoveSwitch, "remove_switch"),
            (Mutation::AddEdge, "add_edge"),
            (Mutation::RemoveEdge, "remove_edge"),
            (Mutation::AddCap, "add_cap"),
            (Mutation::RemoveCap, "remove_cap"),
            (Mutation::ResizePort, "resize_port"),
            (Mutation::ResizeSpad, "resize_spad"),
            (Mutation::ResizeEngineBw, "resize_engine_bw"),
            (Mutation::RemoveEngine, "remove_engine"),
            (Mutation::ResizeDelayFifo, "resize_delay_fifo"),
        ] {
            assert_eq!(m.kind(), want);
            assert!(set.names().any(|n| n == m.kind()));
        }
        assert_eq!(Mutation::Noop.kind(), "noop");
    }

    #[test]
    fn benign_subset_never_removes_hardware() {
        let set = RuleSet::legacy();
        for &idx in &set.benign {
            let name = set.rules[idx].name();
            assert!(
                !name.starts_with("remove_"),
                "benign rule {name} removes hardware"
            );
        }
    }
}
