//! Epoch-stamped mutation deltas and the recording ADG wrapper.
//!
//! Every rule application runs against a [`RecordedAdg`], which forwards
//! mutations to the underlying [`Adg`] and logs their *net* effect into an
//! [`AdgDelta`]: nodes and edges added or removed, plus every node whose
//! attributes a rule declared it wrote (via [`RecordedAdg::touch_attr`]).
//! "Net" means add/remove pairs cancel — sound because [`Adg::add_node`]
//! never reuses node ids, so a node added and then removed inside the same
//! delta leaves the graph indistinguishable from untouched.
//!
//! The delta is what makes footprints *inferable* (see
//! [`super::infer_footprint`]) and what feeds the scheduler's repair
//! dirty-set directly (see [`AdgDelta::scope`]), replacing the hand
//! classification the legacy mutation table carried.

use std::collections::BTreeSet;

use overgen_adg::{Adg, AdgError, AdgNode, NodeId};
use overgen_scheduler::RepairScope;

/// The recorded net effect of one or more rule applications on an ADG.
///
/// The `epoch` stamps which proposal step produced the delta (iteration ×
/// mutations-per-step + step in the annealer); merged deltas keep the
/// epoch of the first application they absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdgDelta {
    /// Proposal step that opened this delta.
    pub epoch: u64,
    /// Nodes created (and not subsequently removed) by the application.
    pub added_nodes: BTreeSet<NodeId>,
    /// Pre-existing nodes removed by the application.
    pub removed_nodes: BTreeSet<NodeId>,
    /// Edges created (and not subsequently removed) by the application.
    pub added_edges: BTreeSet<(NodeId, NodeId)>,
    /// Pre-existing edges removed by the application.
    pub removed_edges: BTreeSet<(NodeId, NodeId)>,
    /// Surviving nodes whose attributes a rule wrote.
    pub touched_attrs: BTreeSet<NodeId>,
}

impl AdgDelta {
    /// An empty delta opened at `epoch`.
    pub fn new(epoch: u64) -> AdgDelta {
        AdgDelta {
            epoch,
            ..AdgDelta::default()
        }
    }

    /// True when the application provably left the graph untouched.
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.removed_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.touched_attrs.is_empty()
    }

    /// Total recorded entities, for telemetry and debugging.
    pub fn len(&self) -> usize {
        self.added_nodes.len()
            + self.removed_nodes.len()
            + self.added_edges.len()
            + self.removed_edges.len()
            + self.touched_attrs.len()
    }

    /// Fold another delta (a *later* application on the same graph) into
    /// this one, with the same cancellation semantics the recorder applies
    /// within a single application: removing what an earlier application
    /// added erases both records, because node ids are never reused.
    pub fn absorb(&mut self, other: &AdgDelta) {
        for &e in &other.added_edges {
            if !self.removed_edges.remove(&e) {
                self.added_edges.insert(e);
            }
        }
        for &e in &other.removed_edges {
            if !self.added_edges.remove(&e) {
                self.removed_edges.insert(e);
            }
        }
        for &n in &other.added_nodes {
            self.added_nodes.insert(n);
        }
        for &n in &other.removed_nodes {
            self.touched_attrs.remove(&n);
            if !self.added_nodes.remove(&n) {
                self.removed_nodes.insert(n);
            }
        }
        for &n in &other.touched_attrs {
            self.touched_attrs.insert(n);
        }
    }

    /// Everything this delta touched, in the shape the scheduler's repair
    /// classifier consumes. An empty scope lets repair skip its full
    /// decision scan (see [`RepairScope`] for the contract).
    pub fn scope(&self) -> RepairScope {
        let mut scope = RepairScope::new();
        scope.nodes.extend(self.added_nodes.iter().copied());
        scope.nodes.extend(self.removed_nodes.iter().copied());
        scope.nodes.extend(self.touched_attrs.iter().copied());
        scope.edges.extend(self.added_edges.iter().copied());
        scope.edges.extend(self.removed_edges.iter().copied());
        scope
    }
}

/// A mutable view of an [`Adg`] that records every change into an
/// [`AdgDelta`]. Rules receive this instead of the raw graph, so their
/// footprint falls out of what they *did* rather than what they claim.
///
/// Reads go through [`RecordedAdg::graph`]. Attribute writes go through
/// [`RecordedAdg::node_mut`], which deliberately does **not** record —
/// rules declare attribute writes explicitly with
/// [`RecordedAdg::touch_attr`] on the paths that actually write, keeping
/// inferred footprints exact instead of pessimistic.
pub struct RecordedAdg<'a> {
    adg: &'a mut Adg,
    delta: &'a mut AdgDelta,
}

impl<'a> RecordedAdg<'a> {
    /// Wrap `adg`, recording into `delta`.
    pub fn new(adg: &'a mut Adg, delta: &'a mut AdgDelta) -> RecordedAdg<'a> {
        RecordedAdg { adg, delta }
    }

    /// Read-only view of the underlying graph.
    pub fn graph(&self) -> &Adg {
        self.adg
    }

    /// Add a node, recording it.
    pub fn add_node(&mut self, node: AdgNode) -> NodeId {
        let id = self.adg.add_node(node);
        self.delta.added_nodes.insert(id);
        id
    }

    /// Remove a node (and its incident edges), recording everything that
    /// actually disappeared. Removing a node this same delta added cancels
    /// the addition instead of recording a removal.
    pub fn remove_node(&mut self, id: NodeId) -> Option<AdgNode> {
        let incident: Vec<(NodeId, NodeId)> = self
            .adg
            .preds(id)
            .iter()
            .map(|&p| (p, id))
            .chain(self.adg.succs(id).iter().map(|&s| (id, s)))
            .collect();
        let node = self.adg.remove_node(id)?;
        for e in incident {
            if !self.delta.added_edges.remove(&e) {
                self.delta.removed_edges.insert(e);
            }
        }
        self.delta.touched_attrs.remove(&id);
        if !self.delta.added_nodes.remove(&id) {
            self.delta.removed_nodes.insert(id);
        }
        Some(node)
    }

    /// Add an edge, recording it on success.
    ///
    /// # Errors
    ///
    /// Forwards [`Adg::add_edge`] failures (missing endpoint, illegal
    /// kind pair, duplicate); failed attempts record nothing.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), AdgError> {
        self.adg.add_edge(src, dst)?;
        if !self.delta.removed_edges.remove(&(src, dst)) {
            self.delta.added_edges.insert((src, dst));
        }
        Ok(())
    }

    /// Remove an edge, recording it when one actually existed.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        let removed = self.adg.remove_edge(src, dst);
        if removed && !self.delta.added_edges.remove(&(src, dst)) {
            self.delta.removed_edges.insert((src, dst));
        }
        removed
    }

    /// Mutable access to a node's payload. **Not recorded** — pair every
    /// write with [`RecordedAdg::touch_attr`].
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut AdgNode> {
        self.adg.node_mut(id)
    }

    /// Declare that the rule wrote attributes of `id`.
    pub fn touch_attr(&mut self, id: NodeId) {
        self.delta.touched_attrs.insert(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, NodeKind, PeNode};
    use overgen_ir::{DataType, FuCap, Op};

    #[test]
    fn add_then_remove_cancels_to_empty() {
        let mut adg = mesh(&MeshSpec::default());
        let mut delta = AdgDelta::new(7);
        let mut r = RecordedAdg::new(&mut adg, &mut delta);
        let sw = r.graph().nodes_of_kind(NodeKind::Switch)[0];
        let pe = r.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        r.add_edge(sw, pe).unwrap();
        r.touch_attr(pe);
        r.remove_node(pe);
        assert!(delta.is_empty(), "net no-op must record nothing: {delta:?}");
        assert!(delta.scope().is_empty());
        assert_eq!(delta.epoch, 7);
    }

    #[test]
    fn removal_records_incident_edges() {
        let mut adg = mesh(&MeshSpec::default());
        let pe = adg.nodes_of_kind(NodeKind::Pe)[0];
        let degree = adg.preds(pe).len() + adg.succs(pe).len();
        assert!(degree > 0);
        let mut delta = AdgDelta::new(0);
        let mut r = RecordedAdg::new(&mut adg, &mut delta);
        r.remove_node(pe);
        assert!(delta.removed_nodes.contains(&pe));
        assert_eq!(delta.removed_edges.len(), degree);
        let scope = delta.scope();
        assert!(scope.nodes.contains(&pe));
        assert_eq!(scope.len(), 1 + degree);
    }

    #[test]
    fn edge_remove_then_add_cancels() {
        let mut adg = mesh(&MeshSpec::default());
        let (a, b) = adg
            .edges()
            .find(|(a, b)| {
                adg.kind(*a) == Some(NodeKind::Switch) && adg.kind(*b) == Some(NodeKind::Switch)
            })
            .unwrap();
        let mut delta = AdgDelta::new(0);
        let mut r = RecordedAdg::new(&mut adg, &mut delta);
        assert!(r.remove_edge(a, b));
        r.add_edge(a, b).unwrap();
        assert!(delta.is_empty(), "remove+re-add must cancel: {delta:?}");
    }

    #[test]
    fn absorb_cancels_across_applications() {
        let mut adg = mesh(&MeshSpec::default());
        let sw = adg.nodes_of_kind(NodeKind::Switch)[0];

        let mut first = AdgDelta::new(1);
        let pe = {
            let mut r = RecordedAdg::new(&mut adg, &mut first);
            let pe = r.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
                Op::Add,
                DataType::I64,
            )])));
            r.add_edge(sw, pe).unwrap();
            r.touch_attr(pe);
            pe
        };
        let mut second = AdgDelta::new(2);
        {
            let mut r = RecordedAdg::new(&mut adg, &mut second);
            r.remove_node(pe);
        }
        let mut merged = first.clone();
        merged.absorb(&second);
        assert!(
            merged.is_empty(),
            "add in one application + remove in the next must cancel: {merged:?}"
        );
        assert_eq!(merged.epoch, 1, "merged delta keeps the first epoch");
    }
}
