//! Mechanical footprint inference from recorded deltas.
//!
//! The legacy mutation table hand-classified every mutation into a
//! [`ScheduleFootprint`]; here the class falls out of the [`AdgDelta`] the
//! rule actually produced, consulted against the schedules *after* the
//! application (so a collapse that patched its routes in place correctly
//! classifies as remove-unused, not structural):
//!
//! - attribute writes       → at least [`ScheduleFootprint::Attribute`];
//! - added nodes or edges   → at least [`ScheduleFootprint::Additive`];
//! - removed nodes or edges → [`ScheduleFootprint::Structural`] when any
//!   removed entity is referenced by a live schedule,
//!   [`ScheduleFootprint::RemoveUnused`] otherwise;
//! - an empty delta         → [`ScheduleFootprint::Pure`].
//!
//! Classes merge to the worst, exactly as proposals merge footprints. A
//! removed edge is checked against the schedules' used-*edge* set, which
//! can never exceed the legacy used-*node* check: every edge a route uses
//! has both endpoints in the route, so its endpoints are used nodes.

use std::collections::BTreeSet;

use overgen_adg::NodeId;
use overgen_scheduler::{Schedule, ScheduleFootprint};

use super::delta::AdgDelta;
use super::Mutation;

/// `applied` unless the mutation degenerated to a no-op.
pub(crate) fn footprint_of(m: &Mutation, applied: ScheduleFootprint) -> ScheduleFootprint {
    if *m == Mutation::Noop {
        ScheduleFootprint::Pure
    } else {
        applied
    }
}

/// Severity of removing `victim`: [`ScheduleFootprint::RemoveUnused`] when
/// no live schedule references it, [`ScheduleFootprint::Structural`]
/// otherwise.
pub(crate) fn removal_footprint(schedules: &[Schedule], victim: NodeId) -> ScheduleFootprint {
    if used_nodes(schedules).contains(&victim) {
        ScheduleFootprint::Structural
    } else {
        ScheduleFootprint::RemoveUnused
    }
}

/// Every ADG node some live schedule assigns to or routes through.
pub(crate) fn used_nodes(schedules: &[Schedule]) -> BTreeSet<NodeId> {
    let mut s = BTreeSet::new();
    for sched in schedules {
        s.extend(sched.used_adg_nodes());
    }
    s
}

/// Every ADG edge some live schedule routes over.
pub(crate) fn used_edges(schedules: &[Schedule]) -> BTreeSet<(NodeId, NodeId)> {
    let mut s = BTreeSet::new();
    for sched in schedules {
        s.extend(sched.used_adg_edges());
    }
    s
}

/// Infer the [`ScheduleFootprint`] of an application from its recorded
/// delta and the live schedules as they stand *after* the application.
pub fn infer_footprint(delta: &AdgDelta, schedules: &[Schedule]) -> ScheduleFootprint {
    let mut fp = ScheduleFootprint::Pure;
    if !delta.touched_attrs.is_empty() {
        fp = fp.merge(ScheduleFootprint::Attribute);
    }
    if !delta.added_nodes.is_empty() || !delta.added_edges.is_empty() {
        fp = fp.merge(ScheduleFootprint::Additive);
    }
    if !delta.removed_nodes.is_empty() || !delta.removed_edges.is_empty() {
        let used_n = used_nodes(schedules);
        let used_e = used_edges(schedules);
        let structural = delta.removed_nodes.iter().any(|n| used_n.contains(n))
            || delta.removed_edges.iter().any(|e| used_e.contains(e));
        fp = fp.merge(if structural {
            ScheduleFootprint::Structural
        } else {
            ScheduleFootprint::RemoveUnused
        });
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delta_is_pure() {
        assert_eq!(
            infer_footprint(&AdgDelta::new(0), &[]),
            ScheduleFootprint::Pure
        );
    }

    #[test]
    fn classes_merge_to_the_worst() {
        let mut d = AdgDelta::new(0);
        d.touched_attrs.insert(NodeId::from_index(3));
        assert_eq!(infer_footprint(&d, &[]), ScheduleFootprint::Attribute);
        d.added_nodes.insert(NodeId::from_index(4));
        assert_eq!(infer_footprint(&d, &[]), ScheduleFootprint::Additive);
        d.removed_nodes.insert(NodeId::from_index(5));
        // No schedules reference node 5, so removal is remove-unused.
        assert_eq!(infer_footprint(&d, &[]), ScheduleFootprint::RemoveUnused);
    }
}
