//! The 14 legacy ADG mutations, ported onto the [`Rule`] trait.
//!
//! Each rule body is the legacy `transforms.rs` function with reads going
//! through [`RecordedAdg::graph`] and writes through the recording
//! wrappers, so its delta — and therefore its inferred footprint — falls
//! out mechanically. **The RNG draw sequence of every rule is
//! bit-identical to the legacy function**: same draws, same order, same
//! skipped draws on degenerate paths. That identity is what keeps
//! default-config DSE results and traces byte-identical to the
//! pre-rewrite goldens (`tests/rewrite_equivalence.rs` pins them).
//!
//! Attribute rules call [`RecordedAdg::touch_attr`] on exactly the paths
//! the legacy table classified as [`ScheduleFootprint::Attribute`], so
//! inference reproduces the hand class instead of merely dominating it.

use overgen_adg::{AdgNode, InPortNode, NodeId, NodeKind, OutPortNode, PeNode, SwitchNode};
use overgen_ir::FuCap;
use overgen_scheduler::{Schedule, ScheduleFootprint};
use overgen_telemetry::Rng;

use super::delta::RecordedAdg;
use super::infer::{footprint_of, removal_footprint, used_edges, used_nodes};
use super::{Mutation, Rule, RuleOutcome, TransformCtx};

fn pick<T: Copy>(v: &[T], rng: &mut Rng) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v[rng.gen_range(0..v.len())])
    }
}

/// Order key: cheaper capabilities first.
pub(crate) fn cheapness(c: &FuCap) -> (u8, u32) {
    let class = match c.op.class() {
        overgen_ir::OpClass::Logic => 0,
        overgen_ir::OpClass::AddLike => 1,
        overgen_ir::OpClass::MulLike => 2,
        overgen_ir::OpClass::DivLike => 3,
    };
    (class, c.dtype.bits())
}

fn noop() -> RuleOutcome {
    RuleOutcome {
        mutation: Mutation::Noop,
        hand: ScheduleFootprint::Pure,
    }
}

fn out(mutation: Mutation, hand: ScheduleFootprint) -> RuleOutcome {
    RuleOutcome { mutation, hand }
}

/// Add a PE with 1–4 pool capabilities between two random switches.
pub(crate) struct AddPeRule;

impl Rule for AddPeRule {
    fn name(&self) -> &'static str {
        "add_pe"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let switches = r.graph().nodes_of_kind(NodeKind::Switch);
        let (Some(sin), Some(sout)) = (pick(&switches, rng), pick(&switches, rng)) else {
            return noop();
        };
        // Sample 1-4 capabilities from the pool.
        let n = rng.gen_range(1..=4usize.min(ctx.cap_pool.len().max(1)));
        let caps: Vec<FuCap> = (0..n).filter_map(|_| pick(ctx.cap_pool, rng)).collect();
        if caps.is_empty() {
            return noop();
        }
        let pe = r.add_node(AdgNode::Pe(PeNode::with_caps(caps)));
        let _ = r.add_edge(sin, pe);
        let _ = r.add_edge(pe, sout);
        out(Mutation::AddPe, ScheduleFootprint::Additive)
    }
}

/// Remove a (preserving: unused) PE, keeping at least one.
pub(crate) struct RemovePeRule;

impl Rule for RemovePeRule {
    fn name(&self) -> &'static str {
        "remove_pe"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let mut pes = r.graph().nodes_of_kind(NodeKind::Pe);
        if ctx.preserving {
            let used = used_nodes(ctx.schedules);
            pes.retain(|p| !used.contains(p));
        }
        if pes.len() <= 1 {
            return noop();
        }
        let Some(victim) = pick(&pes, rng) else {
            return noop();
        };
        let fp = removal_footprint(ctx.schedules, victim);
        r.remove_node(victim);
        out(Mutation::RemovePe, fp)
    }
}

/// Split a switch-to-switch edge with a new switch (keeps the original
/// edge for extra routing flexibility).
pub(crate) struct AddSwitchRule;

impl Rule for AddSwitchRule {
    fn name(&self) -> &'static str {
        "add_switch"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        _ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let edges: Vec<(NodeId, NodeId)> = r
            .graph()
            .edges()
            .filter(|(a, b)| {
                r.graph().kind(*a) == Some(NodeKind::Switch)
                    && r.graph().kind(*b) == Some(NodeKind::Switch)
            })
            .collect();
        let Some((a, b)) = pick(&edges, rng) else {
            return noop();
        };
        let sw = r.add_node(AdgNode::Switch(SwitchNode {}));
        let _ = r.add_edge(a, sw);
        let _ = r.add_edge(sw, b);
        out(Mutation::AddSwitch, ScheduleFootprint::Additive)
    }
}

/// Remove a switch; when preserving, collapse it so routes through it are
/// patched in place (§V-B node collapsing).
pub(crate) struct RemoveSwitchRule;

impl Rule for RemoveSwitchRule {
    fn name(&self) -> &'static str {
        "remove_switch"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let switches = r.graph().nodes_of_kind(NodeKind::Switch);
        if switches.len() <= 2 {
            return noop();
        }
        let Some(victim) = pick(&switches, rng) else {
            return noop();
        };
        if ctx.preserving {
            // A collapse patches every route through the victim in place,
            // so even a *used* switch removal preserves the live schedules.
            let m = collapse_recorded(r, ctx.schedules, victim);
            let hand = footprint_of(&m, ScheduleFootprint::RemoveUnused);
            out(m, hand)
        } else {
            let fp = removal_footprint(ctx.schedules, victim);
            r.remove_node(victim);
            out(Mutation::RemoveSwitch, fp)
        }
    }
}

/// Node collapsing (§V-B, Figure 7a): delete a routing node and add direct
/// edges for every schedule route that passed through it, rewriting those
/// routes. Edge-delay preservation (Figure 7b) bumps the delay-FIFO depth
/// of destination PEs whose operand paths shortened.
pub(crate) fn collapse_recorded(
    r: &mut RecordedAdg<'_>,
    schedules: &mut [Schedule],
    victim: NodeId,
) -> Mutation {
    if r.graph().kind(victim) != Some(NodeKind::Switch) {
        return Mutation::Noop;
    }
    // Collect (prev, next) pairs of routes through the victim.
    let mut bridges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut shortened_dsts: Vec<NodeId> = Vec::new();
    for sched in schedules.iter_mut() {
        for path in sched.routes.values_mut() {
            while let Some(pos) = path.iter().position(|n| *n == victim) {
                if pos == 0 || pos + 1 >= path.len() {
                    // victim at an end: route is broken beyond repair here
                    // (cannot happen for switches, which are interior).
                    break;
                }
                let prev = path[pos - 1];
                let next = path[pos + 1];
                bridges.push((prev, next));
                path.remove(pos);
                if let Some(dst) = path.last().copied() {
                    shortened_dsts.push(dst);
                }
            }
        }
    }
    r.remove_node(victim);
    for (a, b) in bridges {
        // Direct hardware connection preserving the route (ignore
        // duplicates).
        let _ = r.add_edge(a, b);
    }
    // Edge-delay preservation: operand paths into these PEs shortened by
    // one hop; grow their delay FIFOs so balance is maintained.
    for dst in shortened_dsts {
        let grew = if let Some(pe) = r.node_mut(dst).and_then(AdgNode::as_pe_mut) {
            pe.delay_fifo_depth = pe.delay_fifo_depth.saturating_add(1).min(16);
            true
        } else {
            false
        };
        if grew {
            r.touch_attr(dst);
        }
    }
    Mutation::RemoveSwitch
}

/// Add a random legal fabric edge (up to 8 attempts).
pub(crate) struct AddEdgeRule;

impl Rule for AddEdgeRule {
    fn name(&self) -> &'static str {
        "add_edge"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        _ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let fabric: Vec<NodeId> = r
            .graph()
            .nodes()
            .filter(|(_, n)| n.kind().is_fabric())
            .map(|(id, _)| id)
            .collect();
        for _ in 0..8 {
            let (Some(a), Some(b)) = (pick(&fabric, rng), pick(&fabric, rng)) else {
                return noop();
            };
            if a != b && r.add_edge(a, b).is_ok() {
                return out(Mutation::AddEdge, ScheduleFootprint::Additive);
            }
        }
        noop()
    }
}

/// Remove a (preserving: unused) switch-to-switch edge.
pub(crate) struct RemoveEdgeRule;

impl Rule for RemoveEdgeRule {
    fn name(&self) -> &'static str {
        "remove_edge"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let mut edges: Vec<(NodeId, NodeId)> = r
            .graph()
            .edges()
            .filter(|(a, b)| {
                r.graph().kind(*a) == Some(NodeKind::Switch)
                    && r.graph().kind(*b) == Some(NodeKind::Switch)
            })
            .collect();
        if ctx.preserving {
            let used = used_edges(ctx.schedules);
            edges.retain(|e| !used.contains(e));
        }
        let Some((a, b)) = pick(&edges, rng) else {
            return noop();
        };
        let fp = if used_edges(ctx.schedules).contains(&(a, b)) {
            ScheduleFootprint::Structural
        } else {
            ScheduleFootprint::RemoveUnused
        };
        r.remove_edge(a, b);
        out(Mutation::RemoveEdge, fp)
    }
}

/// Add a pool capability to a random PE.
pub(crate) struct AddCapRule;

impl Rule for AddCapRule {
    fn name(&self) -> &'static str {
        "add_cap"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let pes = r.graph().nodes_of_kind(NodeKind::Pe);
        let (Some(pe), Some(cap)) = (pick(&pes, rng), pick(ctx.cap_pool, rng)) else {
            return noop();
        };
        let inserted = if let Some(p) = r.node_mut(pe).and_then(AdgNode::as_pe_mut) {
            p.caps.insert(cap);
            true
        } else {
            false
        };
        if inserted {
            r.touch_attr(pe);
            out(Mutation::AddCap, ScheduleFootprint::Attribute)
        } else {
            noop()
        }
    }
}

/// Drop a capability: module-capability pruning (§V-B) of the spare pool
/// when preserving, a random capability of a random PE otherwise.
pub(crate) struct RemoveCapRule;

impl Rule for RemoveCapRule {
    fn name(&self) -> &'static str {
        "remove_cap"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let m = if ctx.preserving {
            capability_pruning_recorded(r, ctx.schedules)
        } else {
            remove_random_cap(r, rng)
        };
        let hand = footprint_of(&m, ScheduleFootprint::Attribute);
        out(m, hand)
    }
}

fn remove_random_cap(r: &mut RecordedAdg<'_>, rng: &mut Rng) -> Mutation {
    let pes = r.graph().nodes_of_kind(NodeKind::Pe);
    let Some(pe) = pick(&pes, rng) else {
        return Mutation::Noop;
    };
    let mut removed = false;
    if let Some(p) = r.node_mut(pe).and_then(AdgNode::as_pe_mut) {
        if p.caps.len() > 1 {
            let caps: Vec<FuCap> = p.caps.iter().copied().collect();
            let c = caps[rng.gen_range(0..caps.len())];
            p.caps.remove(&c);
            removed = true;
        }
    }
    if removed {
        r.touch_attr(pe);
        Mutation::RemoveCap
    } else {
        Mutation::Noop
    }
}

/// Module-capability pruning (§V-B): drop a capability no mapped schedule
/// needs. Schedules only record hardware ids, so pruning is restricted to
/// PEs no schedule touches at all — and proceeds one capability at a time
/// (the globally most expensive spare capability per invocation), giving
/// the annealer the chance to reject harmful prunes instead of devastating
/// the spare-capacity pool in one step.
pub(crate) fn capability_pruning_recorded(
    r: &mut RecordedAdg<'_>,
    schedules: &[Schedule],
) -> Mutation {
    let used = used_nodes(schedules);
    let mut candidates: Vec<(NodeId, FuCap)> = Vec::new();
    for pe in r.graph().nodes_of_kind(NodeKind::Pe) {
        if used.contains(&pe) {
            continue;
        }
        if let Some(p) = r.graph().node(pe).and_then(AdgNode::as_pe) {
            if p.caps.len() > 1 {
                // drop the most expensive spare capability first
                if let Some(c) = p.caps.iter().copied().max_by_key(cheapness) {
                    candidates.push((pe, c));
                }
            }
        }
    }
    // deterministic pick: the globally most expensive spare capability
    let Some((pe, cap)) = candidates.into_iter().max_by_key(|(_, c)| cheapness(c)) else {
        return Mutation::Noop;
    };
    let removed = if let Some(p) = r.node_mut(pe).and_then(AdgNode::as_pe_mut) {
        p.caps.remove(&cap);
        true
    } else {
        false
    };
    if removed {
        r.touch_attr(pe);
        Mutation::RemoveCap
    } else {
        Mutation::Noop
    }
}

/// Double or halve a synchronization-port width (shrinks are blocked on
/// ports a live schedule uses when preserving).
pub(crate) struct ResizePortRule;

impl Rule for ResizePortRule {
    fn name(&self) -> &'static str {
        "resize_port"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let mut ports = r.graph().nodes_of_kind(NodeKind::InPort);
        ports.extend(r.graph().nodes_of_kind(NodeKind::OutPort));
        let Some(port) = pick(&ports, rng) else {
            return noop();
        };
        let grow = rng.gen_bool(0.5);
        let shrink_blocked = ctx.preserving && used_nodes(ctx.schedules).contains(&port);
        let resized = match r.node_mut(port) {
            Some(AdgNode::InPort(InPortNode { width_bytes, .. }))
            | Some(AdgNode::OutPort(OutPortNode { width_bytes, .. })) => {
                if grow {
                    *width_bytes = (*width_bytes * 2).min(64);
                    true
                } else if !shrink_blocked && *width_bytes > 2 {
                    *width_bytes /= 2;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if resized {
            r.touch_attr(port);
            out(Mutation::ResizePort, ScheduleFootprint::Attribute)
        } else {
            noop()
        }
    }
}

/// Double or halve a scratchpad's capacity; occasionally flip indirect
/// access support.
pub(crate) struct ResizeSpadRule;

impl Rule for ResizeSpadRule {
    fn name(&self) -> &'static str {
        "resize_spad"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        _ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let spads = r.graph().nodes_of_kind(NodeKind::Spad);
        let Some(sp) = pick(&spads, rng) else {
            return noop();
        };
        let grow = rng.gen_bool(0.5);
        let resized = if let Some(AdgNode::Spad(s)) = r.node_mut(sp) {
            if grow {
                s.capacity_kb = (s.capacity_kb * 2).min(512);
            } else if s.capacity_kb > 2 {
                s.capacity_kb /= 2;
            }
            if rng.gen_bool(0.2) {
                s.indirect = !s.indirect;
            }
            true
        } else {
            false
        };
        if resized {
            r.touch_attr(sp);
            out(Mutation::ResizeSpad, ScheduleFootprint::Attribute)
        } else {
            noop()
        }
    }
}

/// Double or halve a stream engine's bandwidth.
pub(crate) struct ResizeEngineBwRule;

impl Rule for ResizeEngineBwRule {
    fn name(&self) -> &'static str {
        "resize_engine_bw"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        _ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let mut engines = r.graph().nodes_of_kind(NodeKind::Dma);
        engines.extend(r.graph().nodes_of_kind(NodeKind::Spad));
        engines.extend(r.graph().nodes_of_kind(NodeKind::Gen));
        engines.extend(r.graph().nodes_of_kind(NodeKind::Rec));
        let Some(e) = pick(&engines, rng) else {
            return noop();
        };
        let grow = rng.gen_bool(0.5);
        let resized = {
            let node = r.node_mut(e);
            let bw: Option<&mut u16> = match node {
                Some(AdgNode::Dma(d)) => Some(&mut d.bw_bytes),
                Some(AdgNode::Spad(s)) => Some(&mut s.bw_bytes),
                Some(AdgNode::Gen(g)) => Some(&mut g.bw_bytes),
                Some(AdgNode::Rec(rec)) => Some(&mut rec.bw_bytes),
                _ => None,
            };
            if let Some(bw) = bw {
                if grow {
                    *bw = (*bw * 2).min(128);
                } else if *bw > 4 {
                    *bw /= 2;
                }
                true
            } else {
                false
            }
        };
        if resized {
            r.touch_attr(e);
            out(Mutation::ResizeEngineBw, ScheduleFootprint::Attribute)
        } else {
            noop()
        }
    }
}

/// Add a memory stream engine (scratchpad or extra DMA) wired to every
/// port — the §IV spatial-memory design space: "multiple smaller
/// scratchpads or a single unified scratchpad".
pub(crate) struct AddEngineRule;

impl Rule for AddEngineRule {
    fn name(&self) -> &'static str {
        "add_engine"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        _ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let node = if rng.gen_bool(0.6) {
            AdgNode::Spad(overgen_adg::SpadNode {
                capacity_kb: [8u32, 16, 32, 64][rng.gen_range(0..4usize)],
                bw_bytes: [16u16, 32, 64][rng.gen_range(0..3usize)],
                indirect: rng.gen_bool(0.4),
            })
        } else {
            AdgNode::Dma(overgen_adg::DmaNode {
                bw_bytes: [16u16, 32, 64][rng.gen_range(0..3usize)],
            })
        };
        let is_spad = matches!(node, AdgNode::Spad(_));
        let e = r.add_node(node);
        for ip in r.graph().nodes_of_kind(NodeKind::InPort) {
            let _ = r.add_edge(e, ip);
        }
        for op in r.graph().nodes_of_kind(NodeKind::OutPort) {
            let _ = r.add_edge(op, e);
        }
        let m = if is_spad {
            Mutation::ResizeSpad
        } else {
            Mutation::ResizeEngineBw
        };
        out(m, ScheduleFootprint::Additive)
    }
}

/// Remove an unused (when preserving) extra engine; always keeps at least
/// one DMA.
pub(crate) struct RemoveEngineRule;

impl Rule for RemoveEngineRule {
    fn name(&self) -> &'static str {
        "remove_engine"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let mut engines = r.graph().nodes_of_kind(NodeKind::Spad);
        let dmas = r.graph().nodes_of_kind(NodeKind::Dma);
        if dmas.len() > 1 {
            engines.extend(dmas);
        }
        if ctx.preserving {
            let used: std::collections::BTreeSet<NodeId> = ctx
                .schedules
                .iter()
                .flat_map(|s| s.stream_engines.values().copied())
                .chain(
                    ctx.schedules
                        .iter()
                        .flat_map(|s| s.assignment.values().copied()),
                )
                .collect();
            engines.retain(|e| !used.contains(e));
        }
        let Some(victim) = pick(&engines, rng) else {
            return noop();
        };
        let fp = removal_footprint(ctx.schedules, victim);
        r.remove_node(victim);
        out(Mutation::RemoveEngine, fp)
    }
}

/// Grow or shrink a PE's operand delay-FIFO depth.
pub(crate) struct ResizeDelayFifoRule;

impl Rule for ResizeDelayFifoRule {
    fn name(&self) -> &'static str {
        "resize_delay_fifo"
    }

    fn apply(
        &self,
        r: &mut RecordedAdg<'_>,
        _ctx: &mut TransformCtx<'_>,
        rng: &mut Rng,
    ) -> RuleOutcome {
        let pes = r.graph().nodes_of_kind(NodeKind::Pe);
        let Some(pe) = pick(&pes, rng) else {
            return noop();
        };
        let resized = if let Some(p) = r.node_mut(pe).and_then(AdgNode::as_pe_mut) {
            if rng.gen_bool(0.5) {
                p.delay_fifo_depth = p.delay_fifo_depth.saturating_add(1).min(16);
            } else if p.delay_fifo_depth > 1 {
                p.delay_fifo_depth -= 1;
            }
            true
        } else {
            false
        };
        if resized {
            r.touch_attr(pe);
            out(Mutation::ResizeDelayFifo, ScheduleFootprint::Attribute)
        } else {
            noop()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::delta::AdgDelta;
    use super::super::RuleSet;
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Op, Suite};
    use overgen_scheduler::schedule;

    fn pool() -> Vec<FuCap> {
        vec![
            FuCap::new(Op::Add, DataType::I64),
            FuCap::new(Op::Mul, DataType::I64),
        ]
    }

    fn scheduled_setup() -> (overgen_mdfg::Mdfg, SysAdg, Schedule) {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 64)
            .array_input("b", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        (mdfg, sys, sched)
    }

    #[test]
    fn preserving_remove_pe_spares_used_ones() {
        let (_mdfg, mut sys, sched) = scheduled_setup();
        let used = sched.used_adg_nodes();
        let caps = pool();
        let mut schedules = vec![sched];
        let mut ctx = TransformCtx {
            cap_pool: &caps,
            schedules: &mut schedules,
            preserving: true,
        };
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            let mut delta = AdgDelta::new(0);
            let mut r = RecordedAdg::new(&mut sys.adg, &mut delta);
            RemovePeRule.apply(&mut r, &mut ctx, &mut rng);
        }
        for pe in used {
            if sys.adg.kind(pe) == Some(NodeKind::Pe)
                || ctx.schedules[0].assignment.values().any(|a| *a == pe)
            {
                assert!(sys.adg.contains(pe) || sys.adg.kind(pe).is_none());
            }
        }
        // every PE referenced by the schedule still exists
        for (_, hw) in ctx.schedules[0].assignment.iter() {
            assert!(sys.adg.contains(*hw));
        }
    }

    #[test]
    fn footprints_track_mutation_severity() {
        let (_mdfg, sys, sched) = scheduled_setup();
        let used_pe = sched.assignment.values().copied().next().unwrap();
        assert_eq!(
            removal_footprint(std::slice::from_ref(&sched), used_pe),
            ScheduleFootprint::Structural
        );
        let used = sched.used_adg_nodes();
        let unused_pe = sys
            .adg
            .nodes_of_kind(NodeKind::Pe)
            .into_iter()
            .find(|p| !used.contains(p))
            .expect("default mesh has spare PEs");
        assert_eq!(
            removal_footprint(std::slice::from_ref(&sched), unused_pe),
            ScheduleFootprint::RemoveUnused
        );
        // A degenerated mutation is always Pure, whatever its class.
        assert_eq!(
            footprint_of(&Mutation::Noop, ScheduleFootprint::Structural),
            ScheduleFootprint::Pure
        );
    }

    #[test]
    fn cheapness_ordering() {
        assert!(
            cheapness(&FuCap::new(Op::And, DataType::I8))
                < cheapness(&FuCap::new(Op::Div, DataType::F64))
        );
    }

    #[test]
    fn every_rule_infers_exactly_the_hand_class() {
        // The byte-identity contract: over many seeded applications of
        // every rule, in both preserving modes, the inferred footprint
        // must *equal* the legacy hand classification — not merely
        // dominate it — or default-config cache keys and traces drift.
        let caps = pool();
        let set = RuleSet::legacy();
        for preserving in [false, true] {
            for idx in 0..set.len() {
                let (_mdfg, mut sys, sched) = scheduled_setup();
                let mut schedules = vec![sched];
                let mut rng = Rng::seed_from_u64(0x5EED ^ idx as u64);
                for _ in 0..40 {
                    let mut ctx = TransformCtx {
                        cap_pool: &caps,
                        schedules: &mut schedules,
                        preserving,
                    };
                    let app = set.apply_index(idx, &mut sys.adg, &mut ctx, &mut rng, 0);
                    assert_eq!(
                        app.inferred, app.hand,
                        "rule {} (preserving={preserving}) inferred {:?} but hand class is {:?}",
                        app.rule, app.inferred, app.hand
                    );
                }
            }
        }
    }
}
