//! Pluggable DSE objectives: the mapping from a structured evaluation
//! report ([`EvalReport`]) to the scalar fitness the annealer optimizes.
//!
//! The paper's DSE favours "estimated performance first and
//! resources-per-accelerator second" (§V-A) under a hard FPGA budget.
//! Historically that policy was a magic inline expression in the engine;
//! it is now an enum-dispatched [`Objective`] so alternative policies —
//! hard device budgets with rejection-before-system-DSE, or area
//! efficiency as in DSP-block time-multiplexed overlays — are expressed
//! without touching the annealer. The objective is part of every
//! evaluation-cache key and of the checkpoint config hash, so two runs
//! under different objectives can never share cached fitness or resume
//! into each other (see `cache.rs` and `checkpoint.rs`).
//!
//! Three policies ship:
//!
//! * [`Objective::WeightedGeomeanIpc`] — the default, bit-identical to the
//!   pre-refactor behavior: weighted-geomean estimated IPC with a small
//!   LUT pressure term ([`GeomeanIpcWeights`]).
//! * [`Objective::ConstrainedIpc`] — hard [`DeviceBudget`] feasibility on
//!   all four of LUT/FF/BRAM/DSP. Infeasible proposals are rejected
//!   *before* scheduling and the nested system DSE run (a
//!   `dse.eval.infeasible` counter and trace event record each
//!   rejection), and admitted designs near the budget pay the budget's
//!   soft penalty.
//! * [`Objective::IpcPerLut`] — area efficiency: IPC per kilo-LUT of
//!   accelerator, for overlays where the device is shared and every LUT
//!   has an opportunity cost.

use overgen_adg::StableHasher;
use overgen_model::{ClockRegionGrid, DeviceBudget, PlacerKind, Resources};

use crate::eval::EvalReport;

/// Named calibration of the default objective's resource pressure term.
///
/// Fitness is `ipc * (1 - lut_penalty * min(lut / lut_scale, 1))`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GeomeanIpcWeights {
    /// Maximum fitness discount for accelerator LUT pressure. Calibrated
    /// at 5%: large enough that the annealer breaks IPC ties toward the
    /// smaller tile (which the system DSE can then replicate more often),
    /// small enough that it never outvotes a real IPC improvement.
    pub lut_penalty: f64,
    /// LUT count at which the discount saturates. Calibrated to 1e6 —
    /// roughly the XCVU9P's full LUT pool (1.18M) — so the discount
    /// reaches its cap about where a single tile would fill the device.
    pub lut_scale: f64,
}

impl Default for GeomeanIpcWeights {
    fn default() -> Self {
        GeomeanIpcWeights {
            lut_penalty: 0.05,
            lut_scale: 1.0e6,
        }
    }
}

/// Configuration of the placement-aware objective: which placer runs,
/// which grid it places onto, and how placement quality scales fitness.
///
/// Fitness is
/// `ipc * (fmax_mhz / base_mhz) * (1 - wirelength_penalty * min(wirelength / wirelength_scale, 1))`
/// where `fmax_mhz` comes from the [`PlacementReport`] and already folds
/// in congestion (through the shared clock curve) and SLR crossings, so
/// an over-congested or die-straddling design pays directly in fitness,
/// and NoC wirelength adds the same mild pressure the default objective
/// applies to LUTs.
///
/// [`PlacementReport`]: overgen_model::PlacementReport
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementObjective {
    /// The placer to run on every admitted evaluation.
    pub placer: PlacerKind,
    /// The clock-region/SLR grid to place onto.
    pub grid: ClockRegionGrid,
    /// Maximum fitness discount for NoC wirelength pressure (mirrors
    /// [`GeomeanIpcWeights::lut_penalty`]).
    pub wirelength_penalty: f64,
    /// Wirelength (clock-region hops) at which the discount saturates.
    /// Calibrated to 64 — roughly a 16-tile design with every link
    /// spanning a quarter of the VCU118 grid.
    pub wirelength_scale: f64,
    /// Reference clock dividing the placement `fmax_mhz`: at `base_mhz`
    /// the clock factor is neutral (the paper's overlays target 100 MHz).
    pub base_mhz: f64,
}

impl Default for PlacementObjective {
    fn default() -> Self {
        PlacementObjective {
            placer: PlacerKind::SimpleGrid,
            grid: ClockRegionGrid::vcu118(),
            wirelength_penalty: 0.05,
            wirelength_scale: 64.0,
            base_mhz: 100.0,
        }
    }
}

/// The fitness policy of a DSE run. See the module docs for the shipped
/// policies. Serialization (checkpoints) is keyed by [`Objective::kind`],
/// which is stable across releases.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Objective {
    /// Weighted-geomean estimated IPC with mild LUT pressure (the
    /// default; bit-identical to the pre-pipeline engine).
    WeightedGeomeanIpc(GeomeanIpcWeights),
    /// Hard four-channel device-budget feasibility plus a soft
    /// near-budget penalty.
    ConstrainedIpc(DeviceBudget),
    /// Area efficiency: weighted-geomean IPC per kilo-LUT.
    IpcPerLut,
    /// Placement-aware IPC: every evaluation is placed onto the modeled
    /// clock-region grid and congestion, SLR crossings, and NoC
    /// wirelength scale fitness through the achievable clock.
    PlacementAware(PlacementObjective),
}

impl Default for Objective {
    fn default() -> Self {
        Objective::WeightedGeomeanIpc(GeomeanIpcWeights::default())
    }
}

impl Objective {
    /// Stable identifier, used in checkpoint headers and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Objective::WeightedGeomeanIpc(_) => "weighted_geomean_ipc",
            Objective::ConstrainedIpc(_) => "constrained_ipc",
            Objective::IpcPerLut => "ipc_per_lut",
            Objective::PlacementAware(_) => "placement_aware",
        }
    }

    /// The placement configuration, when this objective requires the
    /// evaluation pipeline to run a placer.
    pub fn placement(&self) -> Option<&PlacementObjective> {
        match self {
            Objective::PlacementAware(p) => Some(p),
            _ => None,
        }
    }

    /// Hard feasibility gate, run on the accelerator's resource vector
    /// *before* scheduling and the nested system DSE. Returns the name of
    /// the binding channel when the proposal must be rejected.
    ///
    /// Only [`Objective::ConstrainedIpc`] rejects; the other policies
    /// admit everything (matching the pre-pipeline engine, where no
    /// proposal was ever resource-rejected).
    pub fn admit(&self, resources: &Resources) -> Result<(), &'static str> {
        match self {
            Objective::ConstrainedIpc(budget) => match budget.exceeded(resources) {
                None => Ok(()),
                Some(channel) => Err(channel),
            },
            _ => Ok(()),
        }
    }

    /// Map an evaluation report to the scalar fitness the annealer
    /// maximizes. `report.ipc` (the weighted-geomean estimated IPC) stays
    /// the run's *display* objective regardless of policy; fitness is what
    /// accept/reject, best-state, and island exchange compare.
    pub fn fitness(&self, report: &EvalReport) -> f64 {
        match self {
            Objective::WeightedGeomeanIpc(w) => {
                report.ipc * (1.0 - w.lut_penalty * (report.resources.lut / w.lut_scale).min(1.0))
            }
            Objective::ConstrainedIpc(budget) => report.ipc * budget.soft_factor(&report.resources),
            Objective::IpcPerLut => report.ipc * 1.0e3 / report.resources.lut.max(1.0),
            Objective::PlacementAware(p) => match &report.placement {
                Some(place) => {
                    report.ipc
                        * (place.fmax_mhz / p.base_mhz)
                        * (1.0
                            - p.wirelength_penalty
                                * (place.wirelength / p.wirelength_scale).min(1.0))
                }
                // Unreachable through the pipeline (a placement-aware run
                // places every admitted evaluation); score plain IPC for
                // library callers building reports by hand.
                None => report.ipc,
            },
        }
    }

    /// Fold the objective into a configuration hash (evaluation-cache
    /// keys, checkpoint cfg-hash): kind tag plus every parameter, so two
    /// objectives that score differently always hash differently.
    pub(crate) fn hash_into(&self, h: &mut StableHasher) {
        h.write_str(self.kind());
        match self {
            Objective::WeightedGeomeanIpc(w) => {
                h.write_f64(w.lut_penalty);
                h.write_f64(w.lut_scale);
            }
            Objective::ConstrainedIpc(b) => {
                h.write_str(b.name);
                h.write_f64(b.limit.lut);
                h.write_f64(b.limit.ff);
                h.write_f64(b.limit.bram);
                h.write_f64(b.limit.dsp);
                h.write_f64(b.soft_frac);
                h.write_f64(b.soft_penalty);
            }
            Objective::IpcPerLut => {}
            Objective::PlacementAware(p) => {
                h.write_str(p.placer.name());
                h.write_str(p.grid.device.name);
                h.write_f64(p.grid.device.total.lut);
                h.write_f64(p.grid.device.total.ff);
                h.write_f64(p.grid.device.total.bram);
                h.write_f64(p.grid.device.total.dsp);
                h.write_u64(u64::from(p.grid.cols));
                h.write_u64(u64::from(p.grid.rows));
                h.write_u64(u64::from(p.grid.rows_per_slr));
                h.write_f64(p.wirelength_penalty);
                h.write_f64(p.wirelength_scale);
                h.write_f64(p.base_mhz);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use overgen_adg::{mesh, MeshSpec, SpadNode, SystemParams};
    use overgen_model::{accelerator_resources, AnalyticModel};
    use overgen_scheduler::ScheduleFootprint;

    fn report(ipc: f64, resources: Resources) -> EvalReport {
        EvalReport {
            per_workload_ipc: BTreeMap::new(),
            ipc,
            resources,
            sys: SystemParams::default(),
            schedules: BTreeMap::new(),
            variants: BTreeMap::new(),
            footprint: ScheduleFootprint::Pure,
            placement: None,
        }
    }

    #[test]
    fn default_fitness_matches_the_legacy_inline_formula() {
        let obj = Objective::default();
        for (ipc, lut) in [(154.0, 48_213.0), (3.25, 2_400_000.0), (12.0, 0.0)] {
            let r = report(
                ipc,
                Resources {
                    lut,
                    ..Resources::ZERO
                },
            );
            let legacy = ipc * (1.0 - 0.05 * (lut / 1.0e6).min(1.0));
            assert_eq!(obj.fitness(&r).to_bits(), legacy.to_bits());
        }
    }

    #[test]
    fn only_the_constrained_objective_rejects() {
        let huge = Resources {
            lut: 1e12,
            ff: 1e12,
            bram: 1e12,
            dsp: 1e12,
        };
        assert!(Objective::default().admit(&huge).is_ok());
        assert!(Objective::IpcPerLut.admit(&huge).is_ok());
        let constrained = Objective::ConstrainedIpc(DeviceBudget::vcu118());
        assert_eq!(constrained.admit(&huge), Err("lut"));
        assert!(constrained.admit(&Resources::ZERO).is_ok());
    }

    /// Regression for the single-channel objective bug: the legacy path
    /// only ever looked at LUTs, so a scratchpad-rich accelerator that
    /// blows the BRAM budget while staying LUT-cheap sailed through.
    /// `ConstrainedIpc` must consume all four channels.
    #[test]
    fn bram_heavy_adg_is_infeasible_while_lut_feasible() {
        // A small mesh with very large scratchpads: modest LUTs, huge
        // BRAM demand (36Kb BRAMs are the XCVU9P's scarcest channel).
        let spad_rich = mesh(&MeshSpec {
            spads: vec![
                SpadNode {
                    capacity_kb: 4096,
                    bw_bytes: 64,
                    indirect: true,
                };
                4
            ],
            ..MeshSpec::default()
        });
        let acc = accelerator_resources(&spad_rich, &AnalyticModel);
        let budget = DeviceBudget::vcu118_small();
        assert!(
            acc.lut <= budget.limit.lut,
            "premise: the design is LUT-feasible (lut {} vs {})",
            acc.lut,
            budget.limit.lut
        );
        assert!(
            acc.bram > budget.limit.bram,
            "premise: the design is BRAM-infeasible (bram {} vs {})",
            acc.bram,
            budget.limit.bram
        );
        let obj = Objective::ConstrainedIpc(budget);
        assert_eq!(obj.admit(&acc), Err("bram"));
        // A LUT-only policy would have admitted it: that is the bug.
        let lut_only = DeviceBudget {
            name: "lut-only",
            limit: Resources {
                lut: budget.limit.lut,
                ..Resources::ZERO
            },
            ..budget
        };
        assert!(Objective::ConstrainedIpc(lut_only).admit(&acc).is_ok());
    }

    #[test]
    fn ipc_per_lut_prefers_the_smaller_design() {
        let small = report(
            10.0,
            Resources {
                lut: 50_000.0,
                ..Resources::ZERO
            },
        );
        let big = report(
            12.0,
            Resources {
                lut: 400_000.0,
                ..Resources::ZERO
            },
        );
        let obj = Objective::IpcPerLut;
        assert!(obj.fitness(&small) > obj.fitness(&big));
        // ...while the default prefers the faster one.
        assert!(Objective::default().fitness(&big) > Objective::default().fitness(&small));
    }

    fn fir() -> overgen_ir::Kernel {
        use overgen_ir::{expr, DataType, KernelBuilder, Suite};
        KernelBuilder::new("fir", Suite::Dsp, DataType::I64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    fn quick_cfg(iters: usize) -> crate::DseConfig {
        crate::DseConfig {
            iterations: iters,
            compile: overgen_compiler::CompileOptions {
                max_unroll: 4,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn constrained_objective_rejects_oversized_proposals() {
        // A budget barely above the seed accelerator: growth mutations
        // quickly overflow it, so the run must record infeasible proposals
        // while still returning a feasible winner.
        let seed = crate::Dse::seed_adg(&[fir()]);
        let acc = accelerator_resources(&seed, &AnalyticModel);
        let budget = DeviceBudget {
            name: "tight",
            limit: acc * 1.02,
            ..DeviceBudget::vcu118()
        };
        let cfg = crate::DseConfig {
            objective: Objective::ConstrainedIpc(budget),
            ..quick_cfg(30)
        };
        let r = crate::Dse::new(vec![fir()], cfg).run().unwrap();
        assert!(r.stats.infeasible > 0, "no proposal hit the tight budget");
        let won = accelerator_resources(&r.sys_adg.adg, &AnalyticModel);
        assert!(budget.admits(&won), "winner must respect the hard budget");
        // The default objective never rejects.
        let d = crate::Dse::new(vec![fir()], quick_cfg(10)).run().unwrap();
        assert_eq!(d.stats.infeasible, 0);
    }

    /// Congestion and SLR crossings reduce fitness through the placement
    /// clock, and wirelength through the direct discount — the
    /// placement-aware analogue of the default LUT-pressure test.
    #[test]
    fn placement_aware_fitness_penalizes_bad_placement() {
        use overgen_model::{PlacementReport, Placer, SimpleGridPlacer};

        let obj = Objective::PlacementAware(PlacementObjective::default());
        let place = |fmax: f64, wl: f64| {
            let mut r = report(
                10.0,
                Resources {
                    lut: 50_000.0,
                    ..Resources::ZERO
                },
            );
            r.placement = Some(PlacementReport {
                cells: Vec::new(),
                hub: overgen_model::GridCell { col: 3, row: 7 },
                span: 1,
                wirelength: wl,
                congestion: 0.5,
                slr_crossings: 0,
                fmax_mhz: fmax,
            });
            r
        };
        // At the 100 MHz base with zero wirelength, fitness is plain IPC.
        assert_eq!(obj.fitness(&place(100.0, 0.0)), 10.0);
        // A slower clock scales fitness down proportionally...
        assert_eq!(obj.fitness(&place(50.0, 0.0)), 5.0);
        // ...and wirelength adds the saturating discount.
        assert!(obj.fitness(&place(100.0, 32.0)) < 10.0);
        assert_eq!(
            obj.fitness(&place(100.0, 64.0)),
            obj.fitness(&place(100.0, 640.0))
        );
        // The shipped placer exists and self-identifies.
        assert_eq!(SimpleGridPlacer.name(), PlacerKind::SimpleGrid.name());
    }

    #[test]
    fn placement_aware_objective_runs_and_fills_a_three_axis_frontier() {
        let cfg = crate::DseConfig {
            objective: Objective::PlacementAware(PlacementObjective::default()),
            ..quick_cfg(15)
        };
        let r = crate::Dse::new(vec![fir()], cfg).run().unwrap();
        assert!(r.objective > 0.0);
        assert!(!r.pareto.is_empty());
        for p in r.pareto.points() {
            let m = p.placement.expect("placement-aware points carry metrics");
            assert!(m.fmax_mhz >= 40.0 && m.fmax_mhz < 160.0);
            assert!(m.congestion > 0.0);
        }
    }

    #[test]
    fn ipc_per_lut_objective_runs() {
        let cfg = crate::DseConfig {
            objective: Objective::IpcPerLut,
            ..quick_cfg(15)
        };
        let r = crate::Dse::new(vec![fir()], cfg).run().unwrap();
        assert!(r.objective > 0.0);
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn distinct_objectives_hash_distinctly() {
        let hash = |o: &Objective| {
            let mut h = StableHasher::new();
            o.hash_into(&mut h);
            h.finish()
        };
        let a = hash(&Objective::default());
        let b = hash(&Objective::IpcPerLut);
        let c = hash(&Objective::ConstrainedIpc(DeviceBudget::vcu118()));
        let d = hash(&Objective::ConstrainedIpc(DeviceBudget::vcu118_small()));
        let e = hash(&Objective::WeightedGeomeanIpc(GeomeanIpcWeights {
            lut_penalty: 0.1,
            ..Default::default()
        }));
        let f = hash(&Objective::PlacementAware(PlacementObjective::default()));
        let g = hash(&Objective::PlacementAware(PlacementObjective {
            wirelength_penalty: 0.1,
            ..Default::default()
        }));
        let all = [a, b, c, d, e, f, g];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }
}
