//! Unified system + accelerator design-space exploration (paper §V).
//!
//! One DSE iteration (Figure 6):
//!
//! 1. the **spatial DSE** proposes `ADG*` by mutating the current ADG —
//!    with a mix of random transformations and *schedule-preserving*
//!    transformations (node collapsing, edge-delay preservation,
//!    module-capability pruning, §V-B) that keep prior compilations valid;
//! 2. every workload's pre-generated mDFG variants are (re)scheduled onto
//!    `ADG*`, preferring cheap schedule repair over full scheduling; a
//!    workload with no schedulable variant invalidates `ADG*`;
//! 3. the nested **system DSE** exhaustively picks tile count, L2
//!    banks/capacity and NoC bandwidth for `ADG*` under the FPGA resource
//!    budget;
//! 4. simulated annealing accepts or rejects, favouring estimated
//!    performance first and resources-per-accelerator second.
//!
//! Simulated DSE wall-clock (Figure 15/20's x-axis) is accounted through
//! [`overgen_model::TimeModel`]: full schedules are expensive, repairs are
//! cheap — which is exactly why schedule-preserving transformations reduce
//! DSE time (Q8).
//!
//! The driver is parallel and deterministic: [`DseConfig::threads`] fans
//! per-workload scheduling and the system-DSE sweep out over
//! `std::thread::scope` workers, [`DseConfig::chains`] runs independent
//! annealing chains with periodic best-state exchange, and an evaluation
//! cache keyed by [`overgen_adg::Adg::fingerprint`] memoizes repeated
//! design points. Results and telemetry traces are byte-identical for any
//! thread count (see `engine` module docs).
//!
//! # Example
//!
//! ```no_run
//! use overgen_dse::{Dse, DseConfig};
//! use overgen_ir::{expr, DataType, KernelBuilder, Suite};
//!
//! let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
//!     .array_input("a", 4096).array_input("b", 4096).array_output("c", 4096)
//!     .loop_const("i", 4096)
//!     .assign("c", expr::idx("i"),
//!             expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")))
//!     .build().unwrap();
//! let result = Dse::new(vec![k], DseConfig { iterations: 50, ..Default::default() })
//!     .run()
//!     .expect("domain schedules on the seed mesh");
//! println!("estimated IPC {:.1}", result.objective);
//! ```

mod cache;
mod checkpoint;
mod engine;
mod eval;
mod heartbeat;
mod objective;
mod pool;
mod rewrite;
mod store;
mod system;
mod transforms;

pub use checkpoint::{Checkpoint, CheckpointConfig};
pub use engine::{Dse, DseConfig, DseError, DseResult, DseStats, StopFlag};
pub use eval::{EvalReport, ParetoFront, ParetoPoint};
pub use heartbeat::HeartbeatConfig;
pub use objective::{GeomeanIpcWeights, Objective, PlacementObjective};
// Re-exported so `Objective::ConstrainedIpc(DeviceBudget::vcu118())` and
// `Objective::PlacementAware(PlacementObjective::default())` need only
// this crate.
pub use overgen_model::{
    ClockRegionGrid, DeviceBudget, GridCell, PlacementMetrics, PlacementReport, Placer, PlacerKind,
    SimpleGridPlacer,
};
pub use rewrite::{
    infer_footprint, kind_name, AdgDelta, Application, RecordedAdg, Rule, RuleOutcome, RuleSet,
};
pub use store::{EvalStore, StoreError, StoreStats, STORE_MAGIC, STORE_VERSION};
pub use system::{system_dse, system_dse_sim, SystemDseBackend, SystemDseConfig};
pub use transforms::{capability_pruning, collapse_node, random_mutation, Mutation, TransformCtx};
