//! Live run heartbeat: registry-only progress gauges for long DSE runs.
//!
//! Every [`HeartbeatConfig::every`] proposals (checked at segment
//! boundaries, so segmentation and the trace byte stream are untouched)
//! the engine refreshes a set of `dse.heartbeat.*` gauges on the run
//! registry: proposals/sec, acceptance rate, eval-cache hit rate, repair
//! fast-path share, Pareto-front size, progress, and an ETA derived from
//! the iteration budget. A monitoring thread — or `DSE-as-a-service`
//! tenant — polls the registry; nothing is ever written to the trace, the
//! same contract `dse.checkpoint.write_us` follows, so deterministic trace
//! diffs hold with the heartbeat on or off. Optionally a progress line is
//! printed to stderr.
//!
//! Heartbeat values are wall-clock derived and therefore
//! non-deterministic; they are gauges (last-value-wins), never counters
//! that could leak into delta-based stats.

use std::time::Instant;

use overgen_telemetry::{Counter, Gauge, Registry};

use crate::engine::{stat_delta, DseStats};

/// Configuration for the periodic run heartbeat. Not persisted in
/// checkpoints — like the stop budgets, monitoring is per-invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Proposals (per chain) between heartbeat refreshes. The actual
    /// refresh lands on the next segment boundary at or after each
    /// multiple, so it never perturbs segmentation.
    pub every: usize,
    /// Also print a one-line progress report to stderr at each refresh.
    pub stderr: bool,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            every: 25,
            stderr: false,
        }
    }
}

/// Live heartbeat state owned by the annealing loop.
pub(crate) struct Heartbeat {
    every: usize,
    stderr: bool,
    next_at: usize,
    started: Instant,
    count: Counter,
    proposals_per_sec: Gauge,
    accept_rate: Gauge,
    cache_hit_rate: Gauge,
    repair_fast_share: Gauge,
    pareto_size: Gauge,
    eta_seconds: Gauge,
    progress: Gauge,
}

impl Heartbeat {
    pub(crate) fn new(cfg: &HeartbeatConfig, reg: &Registry, start_done: usize) -> Self {
        let every = cfg.every.max(1);
        Heartbeat {
            every,
            stderr: cfg.stderr,
            next_at: start_done + every,
            started: Instant::now(),
            count: reg.counter("dse.heartbeat.count"),
            proposals_per_sec: reg.gauge("dse.heartbeat.proposals_per_sec"),
            accept_rate: reg.gauge("dse.heartbeat.accept_rate"),
            cache_hit_rate: reg.gauge("dse.heartbeat.cache_hit_rate"),
            repair_fast_share: reg.gauge("dse.heartbeat.repair_fast_share"),
            pareto_size: reg.gauge("dse.heartbeat.pareto_size"),
            eta_seconds: reg.gauge("dse.heartbeat.eta_seconds"),
            progress: reg.gauge("dse.heartbeat.progress"),
        }
    }

    /// Refresh the gauges if `done` crossed the next threshold. `budget`
    /// is the per-chain proposal budget this run will actually execute
    /// (iterations, or `max_proposals` when lower); `pareto_size` is the
    /// current merged frontier size.
    pub(crate) fn tick(
        &mut self,
        done: usize,
        budget: usize,
        reg: &Registry,
        base: &DseStats,
        pareto_size: usize,
    ) {
        if done < self.next_at {
            return;
        }
        // Catch up past skipped thresholds (long segments can cross
        // several), then arm the next one.
        self.next_at = done + self.every - done % self.every;

        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let d = stat_delta(reg, base);
        let rate = d.iterations as f64 / elapsed;
        self.proposals_per_sec.set(rate);
        self.accept_rate.set(share(d.accepted, d.iterations));
        self.cache_hit_rate
            .set(share(d.cache_hits, d.cache_hits + d.cache_misses));
        self.repair_fast_share
            .set(share(d.repair_fast, d.repair_fast + d.repair_fallback));
        self.pareto_size.set(pareto_size as f64);
        let frac = share(done, budget);
        self.progress.set(frac);
        let eta = if done > 0 {
            elapsed * (budget.saturating_sub(done)) as f64 / done as f64
        } else {
            0.0
        };
        self.eta_seconds.set(eta);
        self.count.inc();

        if self.stderr {
            eprintln!(
                "dse.heartbeat: {done}/{budget} ({:.0}%) | {rate:.1} prop/s | \
                 accept {:.0}% | cache {:.0}% | fast-repair {:.0}% | \
                 pareto {pareto_size} | eta {eta:.0}s",
                frac * 100.0,
                self.accept_rate.get() * 100.0,
                self.cache_hit_rate.get() * 100.0,
                self.repair_fast_share.get() * 100.0,
            );
        }
    }
}

fn share(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_fires_only_at_thresholds_and_catches_up() {
        let reg = Registry::new();
        let cfg = HeartbeatConfig {
            every: 10,
            stderr: false,
        };
        let base = DseStats::default();
        let mut hb = Heartbeat::new(&cfg, &reg, 0);
        hb.tick(5, 100, &reg, &base, 1);
        assert_eq!(reg.counter_value("dse.heartbeat.count"), 0);
        hb.tick(10, 100, &reg, &base, 1);
        assert_eq!(reg.counter_value("dse.heartbeat.count"), 1);
        // A long segment skipping several thresholds still fires once and
        // re-arms past the current position.
        hb.tick(47, 100, &reg, &base, 2);
        assert_eq!(reg.counter_value("dse.heartbeat.count"), 2);
        hb.tick(49, 100, &reg, &base, 2);
        assert_eq!(reg.counter_value("dse.heartbeat.count"), 2);
        hb.tick(50, 100, &reg, &base, 3);
        assert_eq!(reg.counter_value("dse.heartbeat.count"), 3);
        assert_eq!(reg.gauge("dse.heartbeat.pareto_size").get(), 3.0);
        assert_eq!(reg.gauge("dse.heartbeat.progress").get(), 0.5);
    }

    #[test]
    fn rates_derive_from_counter_deltas() {
        let reg = Registry::new();
        reg.counter("dse.iterations").add(40);
        reg.counter("dse.accepted").add(10);
        reg.counter("dse.cache.hit").add(30);
        reg.counter("dse.cache.miss").add(10);
        reg.counter("scheduler.repair.fast").add(9);
        reg.counter("scheduler.repair.fallback").add(1);
        // A baseline from a previous leg is subtracted out.
        let base = DseStats {
            iterations: 20,
            accepted: 5,
            ..DseStats::default()
        };
        let mut hb = Heartbeat::new(&HeartbeatConfig::default(), &reg, 0);
        hb.tick(25, 50, &reg, &base, 4);
        assert_eq!(reg.counter_value("dse.heartbeat.count"), 1);
        assert_eq!(reg.gauge("dse.heartbeat.accept_rate").get(), 0.25);
        assert_eq!(reg.gauge("dse.heartbeat.cache_hit_rate").get(), 0.75);
        assert_eq!(reg.gauge("dse.heartbeat.repair_fast_share").get(), 0.9);
        assert!(reg.gauge("dse.heartbeat.proposals_per_sec").get() > 0.0);
        assert!(reg.gauge("dse.heartbeat.eta_seconds").get() >= 0.0);
    }

    #[test]
    fn zero_denominators_read_as_zero() {
        let reg = Registry::new();
        let mut hb = Heartbeat::new(
            &HeartbeatConfig {
                every: 1,
                stderr: false,
            },
            &reg,
            0,
        );
        hb.tick(1, 0, &reg, &DseStats::default(), 0);
        assert_eq!(reg.gauge("dse.heartbeat.accept_rate").get(), 0.0);
        assert_eq!(reg.gauge("dse.heartbeat.cache_hit_rate").get(), 0.0);
        assert_eq!(reg.gauge("dse.heartbeat.progress").get(), 0.0);
    }
}
