//! The proposal evaluation pipeline (paper Figure 6, steps 2–3), split out
//! of the annealing driver: compile-variant lookup → per-workload
//! schedule/repair → nested system DSE → performance estimate, producing a
//! structured [`EvalReport`] that an [`Objective`](crate::Objective) maps
//! to scalar fitness.
//!
//! [`EvalPipeline`] owns everything a proposal evaluation needs — the
//! workload set, pre-compiled mDFG variants, the resource model, both
//! memoization caches, and the telemetry plumbing. The annealer in
//! `engine.rs` only proposes mutations and accepts/rejects on the fitness
//! the pipeline returns; it contains no objective math.
//!
//! Determinism contract (unchanged from the pre-split engine): every
//! evaluation runs under an isolated capture collector, per-workload
//! results fold in workload-name order, and a cache hit replays the stored
//! trace and merges the stored metric deltas, so hits and misses are
//! observationally identical. The objective is folded into every cache key
//! through the run's config hash.
//!
//! This module also hosts the [`ParetoFront`] tracker: the set of
//! non-dominated (IPC, accelerator-resource) points the search has
//! visited, maintained per chain and merged into
//! [`DseResult::pareto`](crate::DseResult::pareto).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use overgen_telemetry::profile::PhaseTimer;
use overgen_telemetry::{
    capture, capture_isolated, current_profiler, event, replay, Counter, Phase, Profiler, Registry,
};

use overgen_adg::{Adg, StableHasher, SysAdg, SystemParams};
use overgen_ir::Kernel;
use overgen_mdfg::Mdfg;
use overgen_model::{
    accelerator_resources, Placement, PlacementMetrics, PlacementReport, ResourceModel, Resources,
    TimeModel,
};
use overgen_scheduler::{
    repair_with, RepairOptions, RepairOutcome, RepairScope, Schedule, ScheduleFootprint,
};

use crate::cache::{hash_placement, hash_schedule, Memo};
use crate::engine::DseConfig;
use crate::pool::fan_out;
use crate::system::{system_dse, system_dse_sim, SystemDseBackend};

/// Structured outcome of one successful proposal evaluation: everything an
/// [`Objective`](crate::Objective) may want to score, plus the artifacts
/// the annealer keeps for the winning design.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Estimated IPC per workload (balance-penalty applied, weights not),
    /// in workload-name order.
    pub per_workload_ipc: BTreeMap<String, f64>,
    /// Weighted-geomean estimated IPC over the domain — the run's primary
    /// objective regardless of fitness policy.
    pub ipc: f64,
    /// Accelerator-tile resource vector (no core/NoC/L2).
    pub resources: Resources,
    /// Winning system parameters from the nested system DSE.
    pub sys: SystemParams,
    /// Best schedule per workload on this hardware.
    pub schedules: BTreeMap<String, Schedule>,
    /// Chosen variant index per workload.
    pub variants: BTreeMap<String, u32>,
    /// Merged footprint of the mutations that produced this proposal.
    pub footprint: ScheduleFootprint,
    /// Spatial placement of the winning system configuration. `Some` only
    /// under a placement-aware objective; `None` keeps default-config
    /// evaluations placement-invisible.
    pub placement: Option<PlacementReport>,
}

/// Outcome of evaluating one design point, as the annealer keeps it.
/// `pub(crate)` so checkpoints can persist and rebuild it
/// (`checkpoint.rs`).
#[derive(Debug, Clone)]
pub(crate) struct EvalState {
    pub(crate) sys: SystemParams,
    pub(crate) schedules: BTreeMap<String, Schedule>,
    pub(crate) variants: BTreeMap<String, u32>,
    /// Weighted-geomean estimated IPC (the display objective).
    pub(crate) objective: f64,
    /// Scalar the annealer compares: `Objective::fitness` of the report.
    pub(crate) fitness: f64,
    /// Accelerator resource vector, kept for Pareto tracking.
    pub(crate) resources: Resources,
    /// Placement quality axes (placement-aware objectives only), kept for
    /// three-axis Pareto tracking.
    pub(crate) placement: Option<PlacementMetrics>,
}

/// A memoized evaluation: outcome plus every side effect it produced, so
/// replaying the trace and merging the registry makes a cache hit
/// indistinguishable from re-running. `pub(crate)` so the persistent
/// store (`store.rs`) can serialize and rebuild whole artifacts.
pub(crate) struct CachedEval {
    pub(crate) state: Option<EvalState>,
    pub(crate) sim: f64,
    pub(crate) trace: overgen_telemetry::CapturedTrace,
    pub(crate) registry: Registry,
}

/// A memoized system-DSE winner (no metrics: `system_dse` only traces).
pub(crate) struct CachedSystem {
    pub(crate) result: Option<(SystemParams, f64)>,
    pub(crate) trace: overgen_telemetry::CapturedTrace,
}

/// Handles for the counters an evaluation updates, bound to the isolated
/// capture registry so they travel with the cached artifact.
struct EvalCounters {
    full_schedules: Counter,
    repairs: Counter,
    intact: Counter,
    repair_moved: overgen_telemetry::Histogram,
}

/// The evaluation pipeline: shared, read-only context for scoring
/// proposals. All interior mutability (the memo caches, counters) is
/// thread-safe and commutative, so chains and per-workload workers may
/// query one pipeline concurrently.
pub(crate) struct EvalPipeline<'a> {
    workloads: &'a [Kernel],
    cfg: &'a DseConfig,
    time: &'a TimeModel,
    mdfgs: &'a BTreeMap<String, Vec<Mdfg>>,
    model: &'a dyn ResourceModel,
    run_registry: &'a Registry,
    cache_hit: Counter,
    cache_miss: Counter,
    cache_system_hit: Counter,
    cache_system_miss: Counter,
    eval_cache: Memo<CachedEval>,
    sys_cache: Memo<CachedSystem>,
    cfg_hash: u64,
    /// Domain discriminator folded into persistent-store keys only (the
    /// full mDFG variant set; see [`EvalPipeline::new`]).
    store_salt: u64,
    threads: usize,
    cache_enabled: bool,
    /// Phase-attribution profiler, captured from the constructing thread
    /// (worker threads have no thread-local profiler). Wall-time only —
    /// records nothing into traces or the run registry, so determinism is
    /// untouched whether it is present or not.
    profiler: Option<Arc<Profiler>>,
}

impl<'a> EvalPipeline<'a> {
    /// Build a pipeline. `warm` carries the cache-key sets a checkpoint
    /// recorded, so a resumed run re-computes exactly the evaluations the
    /// interrupted run had already memoized (warm keys count as hits).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workloads: &'a [Kernel],
        cfg: &'a DseConfig,
        time: &'a TimeModel,
        mdfgs: &'a BTreeMap<String, Vec<Mdfg>>,
        model: &'a dyn ResourceModel,
        run_registry: &'a Registry,
        cfg_hash: u64,
        threads: usize,
        warm: Option<(&[u64], &[u64])>,
    ) -> Self {
        let (eval_cache, sys_cache) = match warm {
            Some((ek, sk)) => (
                Memo::with_warm(ek.iter().copied()),
                Memo::with_warm(sk.iter().copied()),
            ),
            None => (Memo::new(), Memo::new()),
        };
        // The persistent store is shared across tenants whose memo keys
        // can collide (two domains with identical config and seed ADG):
        // salt store keys with the full variant set so entries never cross
        // domain boundaries. In-memory keys stay unsalted — byte-stable
        // with every pre-existing checkpoint and golden trace.
        let store_salt = {
            let mut h = StableHasher::new();
            h.write_u64(mdfgs.len() as u64);
            for (name, variants) in mdfgs {
                h.write_str(name);
                h.write_u64(variants.len() as u64);
                for m in variants {
                    crate::cache::hash_mdfg(&mut h, m);
                }
            }
            h.finish()
        };
        EvalPipeline {
            workloads,
            cfg,
            time,
            mdfgs,
            model,
            run_registry,
            cache_hit: run_registry.counter("dse.cache.hit"),
            cache_miss: run_registry.counter("dse.cache.miss"),
            cache_system_hit: run_registry.counter("dse.cache.system_hit"),
            cache_system_miss: run_registry.counter("dse.cache.system_miss"),
            eval_cache,
            sys_cache,
            cfg_hash,
            store_salt,
            threads,
            cache_enabled: cfg.cache,
            profiler: current_profiler(),
        }
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Persistent-store key for an in-memory memo key: the memo key plus
    /// the domain salt.
    fn store_key(&self, memo_key: u64) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.store_salt);
        h.write_u64(memo_key);
        h.finish()
    }

    /// Start a phase timer when a profiler is installed (`None` otherwise,
    /// a no-op guard).
    fn phase(&self, phase: Phase, class: &'static str) -> Option<PhaseTimer> {
        self.profiler.as_ref().map(|p| p.phase(phase, class))
    }

    /// The run registry stats are read from and merged into.
    pub(crate) fn registry(&self) -> &Registry {
        self.run_registry
    }

    /// Cache-key snapshots for checkpointing.
    pub(crate) fn eval_keys(&self) -> Vec<u64> {
        self.eval_cache.keys()
    }

    pub(crate) fn sys_keys(&self) -> Vec<u64> {
        self.sys_cache.keys()
    }

    /// Evaluate an ADG through the fingerprint cache. Returns the outcome
    /// and the simulated seconds to charge. On a hit the memoized trace is
    /// replayed and the memoized metric deltas merged, so hits and misses
    /// are observationally identical; with the cache disabled the same
    /// capture/replay path runs without memoization, keeping traces
    /// identical between cache modes.
    pub(crate) fn evaluate(
        &self,
        adg: &Adg,
        prior: &BTreeMap<String, Schedule>,
        footprint: ScheduleFootprint,
    ) -> (Option<EvalState>, f64) {
        self.evaluate_with(adg, prior, footprint, None, None)
    }

    /// [`Evaluator::evaluate`] with the rewrite engine's extras: a
    /// recorded [`RepairScope`] (an empty one lets repair skip its full
    /// decision scan) and, for compound proposals, the rule trace string
    /// folded into the cache key — compound proposals carry their rule
    /// chain in `dse.propose` events, so two proposals that differ only
    /// in how they were composed must not share a cached trace. Default
    /// (single-rule) runs pass `None` and keep historical cache keys.
    pub(crate) fn evaluate_with(
        &self,
        adg: &Adg,
        prior: &BTreeMap<String, Schedule>,
        footprint: ScheduleFootprint,
        scope: Option<&RepairScope>,
        rule_trace: Option<&str>,
    ) -> (Option<EvalState>, f64) {
        let run = || {
            // Umbrella phase: one uncached evaluation end to end. Cache
            // hits never reach here; their cost is reconstructed via the
            // cache-adjustment factor in the profile report.
            let _eval_timer = self.phase(Phase::Eval, footprint.name());
            let (out, trace, registry) =
                capture_isolated(|| self.evaluate_uncached(adg, prior, footprint, scope));
            let (state, sim) = out;
            CachedEval {
                state,
                sim,
                trace,
                registry,
            }
        };
        if self.cache_enabled {
            let mut h = StableHasher::new();
            h.write_u64(self.cfg_hash);
            adg.fingerprint_into(&mut h);
            // The footprint is advisory but recorded in repair trace
            // events, so two proposals that differ only in footprint must
            // not share a cached trace.
            h.write_u64(u64::from(footprint.code()));
            if let Some(trace) = rule_trace {
                h.write_str("rules");
                h.write_str(trace);
            }
            h.write_u64(prior.len() as u64);
            for s in prior.values() {
                hash_schedule(&mut h, s);
            }
            let key = h.finish();
            // The persistent store sits strictly inside the in-memory miss
            // path: a store-served artifact is byte-identical to
            // recomputation, so per-job hit/miss counters and traces are
            // unaffected by store contents (DESIGN.md §13).
            let skey = self.store_key(key);
            let with_store = || match self.cfg.store.as_deref() {
                Some(st) => st.fetch_eval(skey).unwrap_or_else(|| {
                    let c = run();
                    st.publish_eval(skey, &c);
                    c
                }),
                None => run(),
            };
            let (cell, miss) = self.eval_cache.get_or_compute(key, with_store);
            if miss {
                self.cache_miss.inc();
            } else {
                self.cache_hit.inc();
            }
            let c = cell.get().expect("memo cell initialized");
            replay(&c.trace);
            self.run_registry.merge_from(&c.registry);
            (c.state.clone(), c.sim)
        } else {
            let c = run();
            replay(&c.trace);
            self.run_registry.merge_from(&c.registry);
            (c.state, c.sim)
        }
    }

    /// One full evaluation (Figure 6 steps 2-3): gate on the objective's
    /// hard resource budget, schedule or repair every workload (fanned out
    /// across `threads` workers, folded in workload-name order), then run
    /// the nested system DSE and score the report. Always runs under an
    /// isolated capture collector (see [`capture_isolated`]).
    ///
    /// Every workload is processed even after one fails, so the recorded
    /// operation stream does not depend on which worker finishes first.
    fn evaluate_uncached(
        &self,
        adg: &Adg,
        prior: &BTreeMap<String, Schedule>,
        footprint: ScheduleFootprint,
        scope: Option<&RepairScope>,
    ) -> (Option<EvalState>, f64) {
        let mut sim = 0.0f64;
        let validate_timer = self.phase(Phase::Validate, footprint.name());
        let sys_probe = SysAdg::new(adg.clone(), SystemParams::default());
        if sys_probe.validate().is_err() {
            return (None, sim);
        }

        let eval_collector =
            overgen_telemetry::current().expect("evaluate_uncached runs under capture_isolated");

        // Hard feasibility gate: under a budgeted objective an oversized
        // accelerator is rejected before any scheduling or system-DSE work
        // is spent on it. The default objective admits everything, so this
        // is trace-invisible unless a budget is configured.
        let resources = accelerator_resources(adg, self.model);
        if let Err(channel) = self.cfg.objective.admit(&resources) {
            eval_collector
                .registry()
                .counter("dse.eval.infeasible")
                .inc();
            event!(
                "dse.eval.infeasible",
                channel = channel,
                lut = resources.lut,
                ff = resources.ff,
                bram = resources.bram,
                dsp = resources.dsp,
            );
            return (None, sim);
        }

        drop(validate_timer);

        let reg = eval_collector.registry().clone();
        let counters = EvalCounters {
            full_schedules: reg.counter("dse.full_schedules"),
            repairs: reg.counter("dse.repairs"),
            intact: reg.counter("dse.intact"),
            repair_moved: reg.histogram("dse.repair_moved"),
        };

        let jobs: Vec<&Kernel> = self.workloads.iter().collect();
        let outs = fan_out(self.threads, jobs, |k| {
            let hot = self
                .profiler
                .as_ref()
                .map(|p| p.hot_timer("workload", k.name()));
            let out = capture(Some(&eval_collector), || {
                self.schedule_workload(k, &sys_probe, prior, footprint, scope, &counters)
            });
            drop(hot);
            out
        });

        let mut schedules: BTreeMap<String, Schedule> = BTreeMap::new();
        let mut variants: BTreeMap<String, u32> = BTreeMap::new();
        let mut complete = true;
        for (k, ((found, sim_delta), trace)) in self.workloads.iter().zip(outs) {
            replay(&trace);
            sim += sim_delta;
            match found {
                Some((variant, s)) => {
                    variants.insert(k.name().to_string(), variant);
                    schedules.insert(k.name().to_string(), s);
                }
                None => complete = false,
            }
        }
        if !complete {
            return (None, sim);
        }

        // Nested system DSE, memoized by (ADG, per-workload mapping).
        let per: Vec<(&Mdfg, &Placement, f64)> = self
            .workloads
            .iter()
            .map(|k| {
                let name = k.name();
                let variant = variants[name];
                let m = self.mdfgs[name]
                    .iter()
                    .find(|v| v.variant() == variant)
                    .expect("variant exists");
                let placement = &schedules[name].placement;
                let w = self.cfg.weights.get(name).copied().unwrap_or(1.0);
                (m, placement, w)
            })
            .collect();
        let run_system = || {
            let _t = self.phase(Phase::SystemDse, footprint.name());
            let start = Instant::now();
            let (result, trace) = capture(overgen_telemetry::current().as_ref(), || {
                match self.cfg.system.backend {
                    SystemDseBackend::Estimate => {
                        system_dse(adg, &per, self.model, &self.cfg.system, self.threads)
                    }
                    SystemDseBackend::Simulate { prune } => {
                        // Simulator-backed scoring needs the full schedule
                        // (stream-to-engine bindings), not just the
                        // placement. The sweep itself is serial by
                        // contract, so `threads` is not forwarded.
                        let per_sim: Vec<(&Mdfg, &Schedule, f64)> = self
                            .workloads
                            .iter()
                            .map(|k| {
                                let name = k.name();
                                let m = self.mdfgs[name]
                                    .iter()
                                    .find(|v| v.variant() == variants[name])
                                    .expect("variant exists");
                                let w = self.cfg.weights.get(name).copied().unwrap_or(1.0);
                                (m, &schedules[name], w)
                            })
                            .collect();
                        system_dse_sim(
                            adg,
                            &per_sim,
                            self.model,
                            &self.cfg.system,
                            &overgen_sim::SimConfig::default(),
                            prune,
                        )
                    }
                }
            });
            if let (Some(p), Some((sys, _))) = (self.profiler.as_ref(), result.as_ref()) {
                p.record_hot(
                    "sys-grid",
                    &format!("tiles={}", sys.tiles),
                    start.elapsed().as_micros() as u64,
                );
            }
            CachedSystem { result, trace }
        };
        let sys_opt = if self.cache_enabled {
            let mut h = StableHasher::new();
            h.write_u64(self.cfg_hash);
            h.write_str("system");
            adg.fingerprint_into(&mut h);
            for k in self.workloads {
                let name = k.name();
                h.write_str(name);
                h.write_u64(u64::from(variants[name]));
                hash_placement(&mut h, &schedules[name].placement);
            }
            let key = h.finish();
            // Same store-inside-miss-path contract as `evaluate` above.
            let skey = self.store_key(key);
            let with_store = || match self.cfg.store.as_deref() {
                Some(st) => st.fetch_sys(skey).unwrap_or_else(|| {
                    let c = run_system();
                    st.publish_sys(skey, &c);
                    c
                }),
                None => run_system(),
            };
            let (cell, miss) = self.sys_cache.get_or_compute(key, with_store);
            if miss {
                self.cache_system_miss.inc();
            } else {
                self.cache_system_hit.inc();
            }
            let c = cell.get().expect("memo cell initialized");
            replay(&c.trace);
            c.result
        } else {
            let c = run_system();
            replay(&c.trace);
            c.result
        };
        let Some((sys, _raw)) = sys_opt else {
            return (None, sim);
        };

        // Spatial placement of the winning system configuration, only when
        // the objective asks for it: the default path takes no timer, no
        // counters, and no events here, keeping its traces byte-identical.
        let placement = self.cfg.objective.placement().map(|p| {
            let _place_timer = self.phase(Phase::Place, footprint.name());
            let rep = p
                .placer
                .placer()
                .place(&SysAdg::new(adg.clone(), sys), &resources, &p.grid);
            eval_collector.registry().counter("dse.place.runs").inc();
            eval_collector
                .registry()
                .counter("dse.place.slr_crossings")
                .add(rep.slr_crossings);
            event!(
                "dse.place",
                placer = p.placer.name(),
                tiles = u64::from(sys.tiles),
                span = u64::from(rep.span),
                wirelength = rep.wirelength,
                congestion = rep.congestion,
                slr_crossings = rep.slr_crossings,
                fmax_mhz = rep.fmax_mhz,
            );
            rep
        });

        // Performance estimate: per-workload IPC (with the schedule's
        // balance penalty) folded into the weighted geomean — the primary
        // objective of §V-A.
        let _objective_timer = self.phase(Phase::Objective, footprint.name());
        let mut per_workload_ipc: BTreeMap<String, f64> = BTreeMap::new();
        let ipc = {
            let ipcs: Vec<(f64, f64)> = self
                .workloads
                .iter()
                .map(|k| {
                    let s = &schedules[k.name()];
                    let variant = variants[k.name()];
                    let m = self.mdfgs[k.name()]
                        .iter()
                        .find(|v| v.variant() == variant)
                        .expect("variant exists");
                    let spad_bw: f64 = adg
                        .nodes()
                        .filter_map(|(_, n)| n.as_spad().map(|sp| f64::from(sp.bw_bytes)))
                        .sum();
                    let est = overgen_model::estimate_ipc(m, &sys, spad_bw, &s.placement);
                    let w = self.cfg.weights.get(k.name()).copied().unwrap_or(1.0);
                    per_workload_ipc.insert(k.name().to_string(), est.ipc * s.balance_penalty);
                    (est.ipc * s.balance_penalty, w)
                })
                .collect();
            overgen_model::weighted_geomean_ipc(&ipcs)
        };

        let report = EvalReport {
            per_workload_ipc,
            ipc,
            resources,
            sys,
            schedules,
            variants,
            footprint,
            placement,
        };
        let fitness = self.cfg.objective.fitness(&report);
        (
            Some(EvalState {
                sys: report.sys,
                schedules: report.schedules,
                variants: report.variants,
                objective: report.ipc,
                fitness,
                resources: report.resources,
                placement: report.placement.as_ref().map(PlacementReport::metrics),
            }),
            sim,
        )
    }

    /// Schedule one workload: repair the prior schedule's variant first
    /// (the common path — no placement search when the dirty set is
    /// empty), then walk the remaining variants with full scheduling only
    /// if repair proved impossible. Returns the chosen (variant, schedule)
    /// and the simulated seconds spent.
    ///
    /// Simulated-time charges are a pure function of the repair
    /// *classification* (intact / moved count / reschedule), never of the
    /// execution path, so `cfg.repair` on/off produces identical `sim`.
    fn schedule_workload(
        &self,
        k: &Kernel,
        sys_probe: &SysAdg,
        prior: &BTreeMap<String, Schedule>,
        footprint: ScheduleFootprint,
        scope: Option<&RepairScope>,
        counters: &EvalCounters,
    ) -> (Option<(u32, Schedule)>, f64) {
        let adg_nodes = sys_probe.adg.node_count();
        let mut sim = 0.0f64;
        let name = k.name();
        let Some(vs) = self.mdfgs.get(name) else {
            return (None, sim);
        };
        let opts = RepairOptions {
            incremental: self.cfg.repair,
            footprint: Some(footprint),
            scope: scope.cloned(),
        };
        let mut repair_failed_variant = None;
        if let Some(p) = prior.get(name) {
            if let Some(v) = vs.iter().find(|v| v.variant() == p.variant) {
                let repair_timer = self.phase(Phase::Repair, footprint.name());
                let outcome = repair_with(p, v, sys_probe, &opts);
                drop(repair_timer);
                match outcome {
                    Ok((s, RepairOutcome::Intact)) => {
                        counters.intact.inc();
                        event!("dse.repair", workload = name, outcome = "intact");
                        sim += self.time.repair_seconds(2, adg_nodes);
                        return (Some((v.variant(), s)), sim);
                    }
                    Ok((s, RepairOutcome::Repaired { moved })) => {
                        counters.repairs.inc();
                        counters.repair_moved.record(moved as u64);
                        event!(
                            "dse.repair",
                            workload = name,
                            outcome = "repaired",
                            moved = moved,
                        );
                        sim += self.time.repair_seconds(moved.max(1), adg_nodes);
                        return (Some((v.variant(), s)), sim);
                    }
                    Err(_) => {
                        // The fallback already ran (and failed) the seeded
                        // full placement inside `repair_with`; charge it
                        // and skip this variant in the walk below.
                        counters.full_schedules.inc();
                        event!("dse.repair", workload = name, outcome = "reschedule");
                        sim += self.time.schedule_seconds(v.node_count(), adg_nodes);
                        repair_failed_variant = Some(v.variant());
                    }
                }
            }
        }
        for v in vs {
            if repair_failed_variant == Some(v.variant()) {
                continue;
            }
            counters.full_schedules.inc();
            sim += self.time.schedule_seconds(v.node_count(), adg_nodes);
            let _schedule_timer = self.phase(Phase::Schedule, footprint.name());
            if let Ok(s) = overgen_scheduler::schedule(v, sys_probe, None) {
                return (Some((v.variant(), s)), sim);
            }
        }
        (None, sim)
    }
}

/// One point on the trade-off frontier: IPC against the four accelerator
/// resource channels, plus — under a placement-aware objective — the
/// placement quality axes (wirelength, congestion, SLR crossings).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoPoint {
    /// Weighted-geomean estimated IPC of the design.
    pub ipc: f64,
    /// Accelerator-tile resource vector of the design.
    pub resources: Resources,
    /// Placement quality of the design. `None` on default-objective runs,
    /// where the frontier stays the historical two-axis IPC/resources
    /// trade-off.
    pub placement: Option<PlacementMetrics>,
}

impl ParetoPoint {
    /// A two-axis point (no placement), as every pre-placement caller
    /// built them.
    pub fn new(ipc: f64, resources: Resources) -> ParetoPoint {
        ParetoPoint {
            ipc,
            resources,
            placement: None,
        }
    }

    /// `self` dominates `other` when it is no worse on every axis (IPC
    /// maximized; resource channels and — when both points carry them —
    /// placement wirelength/congestion/SLR-crossings minimized) and
    /// strictly better on at least one. Points without placement metrics
    /// compare exactly as before, so default-objective frontiers are
    /// unchanged.
    fn dominates(&self, other: &ParetoPoint) -> bool {
        let mut no_worse = self.ipc >= other.ipc
            && self.resources.lut <= other.resources.lut
            && self.resources.ff <= other.resources.ff
            && self.resources.bram <= other.resources.bram
            && self.resources.dsp <= other.resources.dsp;
        let mut better = self.ipc > other.ipc
            || self.resources.lut < other.resources.lut
            || self.resources.ff < other.resources.ff
            || self.resources.bram < other.resources.bram
            || self.resources.dsp < other.resources.dsp;
        if let (Some(a), Some(b)) = (&self.placement, &other.placement) {
            no_worse &= a.wirelength <= b.wirelength
                && a.congestion <= b.congestion
                && a.slr_crossings <= b.slr_crossings;
            better |= a.wirelength < b.wirelength
                || a.congestion < b.congestion
                || a.slr_crossings < b.slr_crossings;
        }
        no_worse && better
    }

    /// Canonical ordering of the placement axes: wirelength, congestion,
    /// then crossings ascending; placement-free points tie.
    fn placement_cmp(&self, other: &ParetoPoint) -> std::cmp::Ordering {
        match (&self.placement, &other.placement) {
            (Some(a), Some(b)) => a
                .wirelength
                .total_cmp(&b.wirelength)
                .then(a.congestion.total_cmp(&b.congestion))
                .then(a.slr_crossings.cmp(&b.slr_crossings)),
            _ => std::cmp::Ordering::Equal,
        }
    }
}

/// The non-dominated frontier of every design point a run evaluated:
/// IPC (maximize) against the four accelerator resource channels
/// (minimize). Kept in a canonical order — IPC descending, then
/// LUT/FF/BRAM/DSP ascending — so the frontier is deterministic and
/// independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// An empty frontier.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Build a frontier from arbitrary points (dominated ones are
    /// discarded).
    pub fn from_points<I: IntoIterator<Item = ParetoPoint>>(points: I) -> Self {
        let mut f = ParetoFront::new();
        for p in points {
            f.insert(p);
        }
        f
    }

    /// Offer a point. Returns `true` when it joined the frontier (it was
    /// not dominated by, or identical to, an existing point); dominated
    /// incumbents are evicted.
    pub fn insert(&mut self, p: ParetoPoint) -> bool {
        if self.points.iter().any(|q| q.dominates(&p) || *q == p) {
            return false;
        }
        self.points.retain(|q| !p.dominates(q));
        self.points.push(p);
        self.points.sort_by(|a, b| {
            b.ipc
                .total_cmp(&a.ipc)
                .then(a.resources.lut.total_cmp(&b.resources.lut))
                .then(a.resources.ff.total_cmp(&b.resources.ff))
                .then(a.resources.bram.total_cmp(&b.resources.bram))
                .then(a.resources.dsp.total_cmp(&b.resources.dsp))
                .then(a.placement_cmp(b))
        });
        true
    }

    /// Merge another frontier into this one (used to combine per-chain
    /// frontiers in chain-index order).
    pub fn merge(&mut self, other: &ParetoFront) {
        for p in &other.points {
            self.insert(*p);
        }
    }

    /// The frontier, in canonical order.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ipc: f64, lut: f64, bram: f64) -> ParetoPoint {
        ParetoPoint::new(
            ipc,
            Resources {
                lut,
                ff: lut * 1.2,
                bram,
                dsp: 8.0,
            },
        )
    }

    fn place_pt(ipc: f64, lut: f64, wirelength: f64, congestion: f64, slr: u64) -> ParetoPoint {
        ParetoPoint {
            placement: Some(PlacementMetrics {
                wirelength,
                congestion,
                slr_crossings: slr,
                fmax_mhz: 100.0,
            }),
            ..pt(ipc, lut, 100.0)
        }
    }

    #[test]
    fn dominated_points_never_join_and_get_evicted() {
        let mut f = ParetoFront::new();
        assert!(f.insert(pt(10.0, 50_000.0, 100.0)));
        // Strictly worse: rejected.
        assert!(!f.insert(pt(9.0, 60_000.0, 120.0)));
        assert_eq!(f.len(), 1);
        // Strictly better: evicts the incumbent.
        assert!(f.insert(pt(11.0, 40_000.0, 90.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].ipc, 11.0);
        // Trade-off (slower but smaller): coexists.
        assert!(f.insert(pt(6.0, 10_000.0, 20.0)));
        assert_eq!(f.len(), 2);
        // Duplicate: rejected.
        assert!(!f.insert(pt(6.0, 10_000.0, 20.0)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn frontier_is_insertion_order_independent() {
        let pts = [
            pt(10.0, 50_000.0, 100.0),
            pt(6.0, 10_000.0, 20.0),
            pt(9.0, 60_000.0, 120.0),
            pt(8.0, 30_000.0, 60.0),
            pt(10.0, 50_000.0, 100.0),
        ];
        let fwd = ParetoFront::from_points(pts);
        let rev = ParetoFront::from_points(pts.into_iter().rev());
        assert_eq!(fwd, rev);
        // Canonical order: IPC descending.
        for w in fwd.points().windows(2) {
            assert!(w[0].ipc >= w[1].ipc);
        }
    }

    /// The third axis: identical IPC and resources with better placement
    /// must dominate, and a placement trade-off must coexist.
    #[test]
    fn placement_is_a_dominance_axis() {
        let mut f = ParetoFront::new();
        assert!(f.insert(place_pt(10.0, 50_000.0, 20.0, 0.9, 4)));
        // Same IPC/area, strictly better placement: replaces.
        assert!(f.insert(place_pt(10.0, 50_000.0, 12.0, 0.7, 2)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].placement.unwrap().slr_crossings, 2);
        // Worse placement but better IPC: a genuine trade-off, coexists.
        assert!(f.insert(place_pt(12.0, 50_000.0, 30.0, 1.1, 6)));
        assert_eq!(f.len(), 2);
        // Worse on every axis including placement: rejected.
        assert!(!f.insert(place_pt(9.0, 60_000.0, 40.0, 1.2, 8)));
        // Canonical order is deterministic regardless of insertion order.
        let rev = ParetoFront::from_points(f.points().iter().rev().copied());
        assert_eq!(f, rev);
    }

    /// Placement-free points (default objective) compare exactly as
    /// before: the new axis contributes nothing when absent.
    #[test]
    fn placement_free_points_keep_two_axis_semantics() {
        let mut f = ParetoFront::new();
        f.insert(pt(10.0, 50_000.0, 100.0));
        assert!(!f.insert(pt(10.0, 50_000.0, 100.0)));
        assert!(f.insert(pt(10.0, 45_000.0, 100.0)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn resource_only_improvement_joins() {
        let mut f = ParetoFront::new();
        f.insert(pt(10.0, 50_000.0, 100.0));
        // Same IPC, fewer LUTs: dominates and replaces.
        assert!(f.insert(pt(10.0, 45_000.0, 100.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].resources.lut, 45_000.0);
    }
}
