//! Evaluation memoization for the DSE.
//!
//! The annealer frequently revisits structurally identical design points:
//! rejected proposals leave `cur` unchanged, saturated resizes produce the
//! same graph, and parallel chains overlap near the seed. [`Memo`] is a
//! concurrent table keyed by a canonical 64-bit fingerprint (see
//! [`overgen_adg::StableHasher`]); the stored value carries everything an
//! evaluation produced — result, simulated cost, captured telemetry trace,
//! and metric deltas — so a hit can be made observationally identical to
//! re-running the evaluation.
//!
//! Hit/miss totals are deterministic under any thread scheduling: racing
//! lookups of one key block inside `OnceLock::get_or_init` so exactly one
//! caller computes, making misses = distinct keys and hits = lookups −
//! distinct keys.
//!
//! Every key folds in the run's config hash, which covers the
//! [`Objective`](crate::Objective) and all of its parameters
//! (`Dse::config_hash`). Since cached artifacts carry objective-dependent
//! data — the computed fitness, and under a budgeted objective the
//! infeasible-rejection trace — this guarantees two configurations that
//! score or gate proposals differently can never share an entry, within a
//! run or across a checkpoint's warm set.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock};

use overgen_adg::StableHasher;
use overgen_model::Placement;
use overgen_scheduler::Schedule;

/// A concurrent memo table from fingerprint keys to lazily-computed
/// values.
///
/// A table can carry a *warm set*: keys a previous run of the same search
/// already computed (restored from a checkpoint, which stores cache keys
/// but not the cached artifacts — they are cheap to recompute and huge to
/// serialize). The first lookup of a warm key recomputes the value but
/// reports a **hit**, because the uninterrupted run it must be
/// observationally identical to would have served that lookup from cache.
/// Evaluations are deterministic functions of their key, so the recomputed
/// artifact (including its captured trace) matches the original byte for
/// byte.
pub(crate) struct Memo<V> {
    map: Mutex<BTreeMap<u64, Arc<OnceLock<V>>>>,
    warm: BTreeSet<u64>,
}

impl<V> Memo<V> {
    pub(crate) fn new() -> Self {
        Memo {
            map: Mutex::new(BTreeMap::new()),
            warm: BTreeSet::new(),
        }
    }

    /// A table whose hit/miss accounting treats `keys` as already seen.
    pub(crate) fn with_warm(keys: impl IntoIterator<Item = u64>) -> Self {
        Memo {
            map: Mutex::new(BTreeMap::new()),
            warm: keys.into_iter().collect(),
        }
    }

    /// Look up `key`, computing the value with `compute` on first sight.
    /// Returns the (now initialized) cell plus whether *this* call did the
    /// computation — i.e. whether the lookup was a miss. Warm keys never
    /// report a miss (see type docs).
    pub(crate) fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> V,
    ) -> (Arc<OnceLock<V>>, bool) {
        let cell = self
            .map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::new(OnceLock::new()))
            .clone();
        let mut miss = false;
        cell.get_or_init(|| {
            miss = true;
            compute()
        });
        (cell, miss && !self.warm.contains(&key))
    }

    /// Every key this table has seen: computed ones plus still-warm ones,
    /// sorted. This is what a checkpoint persists.
    pub(crate) fn keys(&self) -> Vec<u64> {
        let mut keys: BTreeSet<u64> = self.map.lock().unwrap().keys().copied().collect();
        keys.extend(self.warm.iter().copied());
        keys.into_iter().collect()
    }

    /// Number of distinct keys ever computed.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }
}

/// Absorb a full schedule into a fingerprint: everything `repair` and the
/// performance model can observe. The derived quantities (`est`,
/// `balance_penalty`) are functions of the rest and are skipped.
pub(crate) fn hash_schedule(h: &mut StableHasher, s: &Schedule) {
    h.write_str(&s.mdfg_name);
    h.write_u64(u64::from(s.variant));
    h.write_u64(s.assignment.len() as u64);
    for (m, a) in &s.assignment {
        h.write_u64(m.index() as u64);
        h.write_u64(a.index() as u64);
    }
    h.write_u64(s.stream_engines.len() as u64);
    for (m, e) in &s.stream_engines {
        h.write_u64(m.index() as u64);
        h.write_u64(e.index() as u64);
    }
    h.write_u64(s.routes.len() as u64);
    for ((src, dst), path) in &s.routes {
        h.write_u64(src.index() as u64);
        h.write_u64(dst.index() as u64);
        h.write_u64(path.len() as u64);
        for n in path {
            h.write_u64(n.index() as u64);
        }
    }
    hash_placement(h, &s.placement);
}

/// Absorb a full mDFG variant into a fingerprint: identity, iteration
/// shape, and every node and edge. Within one run the in-memory memo keys
/// never need this (the variant set is fixed for the run's lifetime), but
/// the persistent store is shared across tenants whose runs may agree on
/// every memo-key ingredient while exploring different domains — the
/// domain salt built from this hash is what keeps their entries apart
/// (see `store.rs`).
pub(crate) fn hash_mdfg(h: &mut StableHasher, m: &overgen_mdfg::Mdfg) {
    use overgen_mdfg::MdfgNode;
    h.write_str(m.name());
    h.write_u64(u64::from(m.variant()));
    h.write_u64(u64::from(m.unroll()));
    h.write_f64(m.total_iterations());
    h.write_u64(u64::from(m.sequential()));
    h.write_u64(m.node_count() as u64);
    for (_, node) in m.nodes() {
        match node {
            MdfgNode::Inst(i) => {
                h.write_str("inst");
                h.write_str(&format!("{:?}/{:?}", i.op, i.dtype));
                h.write_u64(u64::from(i.lanes));
            }
            MdfgNode::InputStream(s) | MdfgNode::OutputStream(s) => {
                h.write_str(if s.is_write { "out" } else { "in" });
                h.write_str(&s.array);
                h.write_u64(s.bytes_per_firing);
                h.write_str(&format!("{:?}", s.pattern));
                h.write_u64(u64::from(s.dims));
                h.write_u64(u64::from(s.variable_tc));
                h.write_u64(u64::from(s.broadcast));
                h.write_f64(s.reuse.traffic_bytes);
                h.write_f64(s.reuse.footprint_bytes);
                h.write_f64(s.reuse.stationary);
                match &s.reuse.recurrent {
                    None => h.write_u64(0),
                    Some(r) => {
                        h.write_u64(1);
                        h.write_u64(r.concurrent);
                        h.write_u64(r.depth);
                    }
                }
            }
            MdfgNode::Array(a) => {
                h.write_str("array");
                h.write_str(&a.name);
                h.write_u64(a.size_bytes);
                h.write_str(&format!("{:?}", a.pref));
            }
        }
    }
    for (src, dst) in m.edges() {
        h.write_u64(src.index() as u64);
        h.write_u64(dst.index() as u64);
    }
}

/// Absorb a scratchpad placement (sorted array names).
pub(crate) fn hash_placement(h: &mut StableHasher, p: &Placement) {
    h.write_u64(p.spad_arrays.len() as u64);
    for a in &p.spad_arrays {
        h.write_str(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn computes_each_key_once() {
        let memo: Memo<u64> = Memo::new();
        let computed = AtomicU64::new(0);
        let mut hits = 0;
        let mut misses = 0;
        for key in [1u64, 2, 1, 1, 2, 3] {
            let (cell, miss) = memo.get_or_compute(key, || {
                computed.fetch_add(1, Ordering::Relaxed);
                key * 10
            });
            assert_eq!(*cell.get().unwrap(), key * 10);
            if miss {
                misses += 1;
            } else {
                hits += 1;
            }
        }
        assert_eq!(computed.load(Ordering::Relaxed), 3);
        assert_eq!((misses, hits), (3, 3));
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn warm_keys_report_hits_on_first_lookup() {
        let memo: Memo<u64> = Memo::with_warm([7u64]);
        let (cell, miss) = memo.get_or_compute(7, || 70);
        assert_eq!(*cell.get().unwrap(), 70);
        assert!(!miss, "warm key must not count as a miss");
        let (_, again) = memo.get_or_compute(7, || unreachable!("already computed"));
        assert!(!again);
        let (_, fresh) = memo.get_or_compute(8, || 80);
        assert!(fresh);
        // keys() covers computed and warm keys alike, sorted.
        assert_eq!(memo.keys(), vec![7, 8]);
        let untouched: Memo<u64> = Memo::with_warm([3u64, 1]);
        assert_eq!(untouched.keys(), vec![1, 3]);
    }

    #[test]
    fn concurrent_lookups_agree_on_miss_totals() {
        let memo: Memo<u64> = Memo::new();
        let misses = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for key in 0..32u64 {
                        let (_, miss) = memo.get_or_compute(key % 8, || key % 8);
                        if miss {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 4 threads x 32 lookups over 8 distinct keys: exactly 8 misses.
        assert_eq!(misses.load(Ordering::Relaxed), 8);
        assert_eq!(memo.len(), 8);
    }
}
