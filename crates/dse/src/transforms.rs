//! ADG transformations: random mutations plus the schedule-preserving
//! transformations of §V-B.

use overgen_telemetry::Rng;

use overgen_adg::{Adg, AdgNode, InPortNode, NodeId, NodeKind, OutPortNode, PeNode, SwitchNode};
use overgen_ir::FuCap;
use overgen_scheduler::{Schedule, ScheduleFootprint};

/// Context a mutation may consult: the capability pool relevant to the
/// domain and (optionally) the live schedules for preserving transforms.
pub struct TransformCtx<'a> {
    /// Capabilities the domain's kernels actually use (mutation pool).
    pub cap_pool: &'a [FuCap],
    /// Live schedules (for schedule-preserving guidance); empty slice when
    /// preserving transformations are disabled.
    pub schedules: &'a mut [Schedule],
    /// Whether schedule-preserving transformations are enabled.
    pub preserving: bool,
}

/// What a mutation did (for logging / statistics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Added a PE with the given capability count.
    AddPe,
    /// Removed a PE.
    RemovePe,
    /// Added a switch splitting an edge.
    AddSwitch,
    /// Removed a switch (collapsed when preserving).
    RemoveSwitch,
    /// Added a fabric edge.
    AddEdge,
    /// Removed a fabric edge.
    RemoveEdge,
    /// Added a capability to a PE.
    AddCap,
    /// Pruned unused capabilities (preserving) or removed a random one.
    RemoveCap,
    /// Doubled / halved a port width.
    ResizePort,
    /// Doubled / halved a scratchpad capacity or bandwidth.
    ResizeSpad,
    /// Doubled / halved an engine bandwidth.
    ResizeEngineBw,
    /// Removed a stream engine.
    RemoveEngine,
    /// Changed a PE's delay-FIFO depth.
    ResizeDelayFifo,
    /// Nothing applicable (identity).
    Noop,
}

impl Mutation {
    /// Stable lowercase name for telemetry events.
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::AddPe => "add_pe",
            Mutation::RemovePe => "remove_pe",
            Mutation::AddSwitch => "add_switch",
            Mutation::RemoveSwitch => "remove_switch",
            Mutation::AddEdge => "add_edge",
            Mutation::RemoveEdge => "remove_edge",
            Mutation::AddCap => "add_cap",
            Mutation::RemoveCap => "remove_cap",
            Mutation::ResizePort => "resize_port",
            Mutation::ResizeSpad => "resize_spad",
            Mutation::ResizeEngineBw => "resize_engine_bw",
            Mutation::RemoveEngine => "remove_engine",
            Mutation::ResizeDelayFifo => "resize_delay_fifo",
            Mutation::Noop => "noop",
        }
    }
}

/// Apply one random mutation to `adg`, preserving schedules when
/// `ctx.preserving` (routes in `ctx.schedules` are rewritten in place).
///
/// Returns what happened plus the mutation's [`ScheduleFootprint`] — the
/// worst effect this *particular application* can have on the live
/// schedules (a removal of provably-unused hardware classifies as
/// [`ScheduleFootprint::RemoveUnused`] even outside preserving mode). The
/// footprint travels with the proposal into the evaluation cache key and
/// the repair engine's trace events; repair never trusts it for
/// correctness.
pub fn random_mutation(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let choice = rng.gen_range(0..14u32);
    match choice {
        0 => add_pe(adg, ctx, rng),
        1 => remove_pe(adg, ctx, rng),
        2 => add_switch(adg, rng),
        3 => remove_switch(adg, ctx, rng),
        4 => add_edge(adg, rng),
        5 => remove_edge(adg, ctx, rng),
        6 => add_cap(adg, ctx, rng),
        7 => {
            let m = if ctx.preserving {
                capability_pruning(adg, ctx.schedules)
            } else {
                remove_random_cap(adg, rng)
            };
            let fp = footprint_of(&m, ScheduleFootprint::Attribute);
            (m, fp)
        }
        8 => resize_port(adg, ctx, rng),
        9 => resize_spad(adg, rng),
        10 => resize_engine_bw(adg, rng),
        11 => add_engine(adg, rng),
        12 => remove_engine(adg, ctx, rng),
        _ => resize_delay_fifo(adg, rng),
    }
}

/// `applied` unless the mutation degenerated to a no-op.
fn footprint_of(m: &Mutation, applied: ScheduleFootprint) -> ScheduleFootprint {
    if *m == Mutation::Noop {
        ScheduleFootprint::Pure
    } else {
        applied
    }
}

/// Severity of removing `victim`: [`ScheduleFootprint::RemoveUnused`] when
/// no live schedule references it, [`ScheduleFootprint::Structural`]
/// otherwise.
fn removal_footprint(schedules: &[Schedule], victim: NodeId) -> ScheduleFootprint {
    if used_nodes(schedules).contains(&victim) {
        ScheduleFootprint::Structural
    } else {
        ScheduleFootprint::RemoveUnused
    }
}

/// Add a memory stream engine (scratchpad or extra DMA) wired to every
/// port — the §IV spatial-memory design space: "multiple smaller
/// scratchpads or a single unified scratchpad".
fn add_engine(adg: &mut Adg, rng: &mut Rng) -> (Mutation, ScheduleFootprint) {
    let node = if rng.gen_bool(0.6) {
        AdgNode::Spad(overgen_adg::SpadNode {
            capacity_kb: [8u32, 16, 32, 64][rng.gen_range(0..4usize)],
            bw_bytes: [16u16, 32, 64][rng.gen_range(0..3usize)],
            indirect: rng.gen_bool(0.4),
        })
    } else {
        AdgNode::Dma(overgen_adg::DmaNode {
            bw_bytes: [16u16, 32, 64][rng.gen_range(0..3usize)],
        })
    };
    let is_spad = matches!(node, AdgNode::Spad(_));
    let e = adg.add_node(node);
    for ip in adg.nodes_of_kind(NodeKind::InPort) {
        let _ = adg.add_edge(e, ip);
    }
    for op in adg.nodes_of_kind(NodeKind::OutPort) {
        let _ = adg.add_edge(op, e);
    }
    let m = if is_spad {
        Mutation::ResizeSpad
    } else {
        Mutation::ResizeEngineBw
    };
    (m, ScheduleFootprint::Additive)
}

/// Remove an unused (when preserving) extra engine; always keeps at least
/// one DMA.
fn remove_engine(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let mut engines = adg.nodes_of_kind(NodeKind::Spad);
    let dmas = adg.nodes_of_kind(NodeKind::Dma);
    if dmas.len() > 1 {
        engines.extend(dmas);
    }
    if ctx.preserving {
        let used: std::collections::BTreeSet<NodeId> = ctx
            .schedules
            .iter()
            .flat_map(|s| s.stream_engines.values().copied())
            .chain(
                ctx.schedules
                    .iter()
                    .flat_map(|s| s.assignment.values().copied()),
            )
            .collect();
        engines.retain(|e| !used.contains(e));
    }
    let Some(victim) = pick(&engines, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let fp = removal_footprint(ctx.schedules, victim);
    adg.remove_node(victim);
    (Mutation::RemoveEngine, fp)
}

fn pick<T: Copy>(v: &[T], rng: &mut Rng) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v[rng.gen_range(0..v.len())])
    }
}

fn used_nodes(schedules: &[Schedule]) -> std::collections::BTreeSet<NodeId> {
    let mut s = std::collections::BTreeSet::new();
    for sched in schedules {
        s.extend(sched.used_adg_nodes());
    }
    s
}

fn used_edges(schedules: &[Schedule]) -> std::collections::BTreeSet<(NodeId, NodeId)> {
    let mut s = std::collections::BTreeSet::new();
    for sched in schedules {
        s.extend(sched.used_adg_edges());
    }
    s
}

fn add_pe(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let switches = adg.nodes_of_kind(NodeKind::Switch);
    let (Some(sin), Some(sout)) = (pick(&switches, rng), pick(&switches, rng)) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    // Sample 1-4 capabilities from the pool.
    let n = rng.gen_range(1..=4usize.min(ctx.cap_pool.len().max(1)));
    let caps: Vec<FuCap> = (0..n).filter_map(|_| pick(ctx.cap_pool, rng)).collect();
    if caps.is_empty() {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    }
    let pe = adg.add_node(AdgNode::Pe(PeNode::with_caps(caps)));
    let _ = adg.add_edge(sin, pe);
    let _ = adg.add_edge(pe, sout);
    (Mutation::AddPe, ScheduleFootprint::Additive)
}

fn remove_pe(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let mut pes = adg.nodes_of_kind(NodeKind::Pe);
    if ctx.preserving {
        let used = used_nodes(ctx.schedules);
        pes.retain(|p| !used.contains(p));
    }
    if pes.len() <= 1 {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    }
    let Some(victim) = pick(&pes, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let fp = removal_footprint(ctx.schedules, victim);
    adg.remove_node(victim);
    (Mutation::RemovePe, fp)
}

fn add_switch(adg: &mut Adg, rng: &mut Rng) -> (Mutation, ScheduleFootprint) {
    // Split a switch-to-switch edge with a new switch.
    let edges: Vec<(NodeId, NodeId)> = adg
        .edges()
        .filter(|(a, b)| {
            adg.kind(*a) == Some(NodeKind::Switch) && adg.kind(*b) == Some(NodeKind::Switch)
        })
        .collect();
    let Some((a, b)) = pick(&edges, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let sw = adg.add_node(AdgNode::Switch(SwitchNode {}));
    let _ = adg.add_edge(a, sw);
    let _ = adg.add_edge(sw, b);
    // keep the original edge: extra routing flexibility
    (Mutation::AddSwitch, ScheduleFootprint::Additive)
}

fn remove_switch(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let switches = adg.nodes_of_kind(NodeKind::Switch);
    if switches.len() <= 2 {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    }
    let Some(victim) = pick(&switches, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    if ctx.preserving {
        // A collapse patches every route through the victim in place, so
        // even a *used* switch removal preserves the live schedules.
        let m = collapse_node(adg, ctx.schedules, victim);
        let fp = footprint_of(&m, ScheduleFootprint::RemoveUnused);
        (m, fp)
    } else {
        let fp = removal_footprint(ctx.schedules, victim);
        adg.remove_node(victim);
        (Mutation::RemoveSwitch, fp)
    }
}

/// Node collapsing (§V-B, Figure 7a): delete a routing node and add direct
/// edges for every schedule route that passed through it, rewriting those
/// routes. Edge-delay preservation (Figure 7b) bumps the delay-FIFO depth
/// of destination PEs whose operand paths shortened.
pub fn collapse_node(adg: &mut Adg, schedules: &mut [Schedule], victim: NodeId) -> Mutation {
    if adg.kind(victim) != Some(NodeKind::Switch) {
        return Mutation::Noop;
    }
    // Collect (prev, next) pairs of routes through the victim.
    let mut bridges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut shortened_dsts: Vec<NodeId> = Vec::new();
    for sched in schedules.iter_mut() {
        for path in sched.routes.values_mut() {
            while let Some(pos) = path.iter().position(|n| *n == victim) {
                if pos == 0 || pos + 1 >= path.len() {
                    // victim at an end: route is broken beyond repair here
                    // (cannot happen for switches, which are interior).
                    break;
                }
                let prev = path[pos - 1];
                let next = path[pos + 1];
                bridges.push((prev, next));
                path.remove(pos);
                if let Some(dst) = path.last().copied() {
                    shortened_dsts.push(dst);
                }
            }
        }
    }
    adg.remove_node(victim);
    for (a, b) in bridges {
        // Direct hardware connection preserving the route (ignore
        // duplicates).
        let _ = adg.add_edge(a, b);
    }
    // Edge-delay preservation: operand paths into these PEs shortened by
    // one hop; grow their delay FIFOs so balance is maintained.
    for dst in shortened_dsts {
        if let Some(pe) = adg.node_mut(dst).and_then(AdgNode::as_pe_mut) {
            pe.delay_fifo_depth = pe.delay_fifo_depth.saturating_add(1).min(16);
        }
    }
    Mutation::RemoveSwitch
}

fn add_edge(adg: &mut Adg, rng: &mut Rng) -> (Mutation, ScheduleFootprint) {
    let fabric: Vec<NodeId> = adg
        .nodes()
        .filter(|(_, n)| n.kind().is_fabric())
        .map(|(id, _)| id)
        .collect();
    for _ in 0..8 {
        let (Some(a), Some(b)) = (pick(&fabric, rng), pick(&fabric, rng)) else {
            return (Mutation::Noop, ScheduleFootprint::Pure);
        };
        if a != b && adg.add_edge(a, b).is_ok() {
            return (Mutation::AddEdge, ScheduleFootprint::Additive);
        }
    }
    (Mutation::Noop, ScheduleFootprint::Pure)
}

fn remove_edge(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let mut edges: Vec<(NodeId, NodeId)> = adg
        .edges()
        .filter(|(a, b)| {
            adg.kind(*a) == Some(NodeKind::Switch) && adg.kind(*b) == Some(NodeKind::Switch)
        })
        .collect();
    if ctx.preserving {
        let used = used_edges(ctx.schedules);
        edges.retain(|e| !used.contains(e));
    }
    let Some((a, b)) = pick(&edges, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let fp = if used_edges(ctx.schedules).contains(&(a, b)) {
        ScheduleFootprint::Structural
    } else {
        ScheduleFootprint::RemoveUnused
    };
    adg.remove_edge(a, b);
    (Mutation::RemoveEdge, fp)
}

fn add_cap(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let pes = adg.nodes_of_kind(NodeKind::Pe);
    let (Some(pe), Some(cap)) = (pick(&pes, rng), pick(ctx.cap_pool, rng)) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    if let Some(p) = adg.node_mut(pe).and_then(AdgNode::as_pe_mut) {
        p.caps.insert(cap);
        (Mutation::AddCap, ScheduleFootprint::Attribute)
    } else {
        (Mutation::Noop, ScheduleFootprint::Pure)
    }
}

fn remove_random_cap(adg: &mut Adg, rng: &mut Rng) -> Mutation {
    let pes = adg.nodes_of_kind(NodeKind::Pe);
    let Some(pe) = pick(&pes, rng) else {
        return Mutation::Noop;
    };
    if let Some(p) = adg.node_mut(pe).and_then(AdgNode::as_pe_mut) {
        if p.caps.len() > 1 {
            let caps: Vec<FuCap> = p.caps.iter().copied().collect();
            let c = caps[rng.gen_range(0..caps.len())];
            p.caps.remove(&c);
            return Mutation::RemoveCap;
        }
    }
    Mutation::Noop
}

/// Module-capability pruning (§V-B): drop a capability no mapped schedule
/// needs. Schedules only record hardware ids, so pruning is restricted to
/// PEs no schedule touches at all — and proceeds one capability at a time
/// (one random cap of one random unused PE per invocation), giving the
/// annealer the chance to reject harmful prunes instead of devastating the
/// spare-capacity pool in one step.
pub fn capability_pruning(adg: &mut Adg, schedules: &[Schedule]) -> Mutation {
    let used = used_nodes(schedules);
    let mut candidates: Vec<(NodeId, FuCap)> = Vec::new();
    for pe in adg.nodes_of_kind(NodeKind::Pe) {
        if used.contains(&pe) {
            continue;
        }
        if let Some(p) = adg.node(pe).and_then(AdgNode::as_pe) {
            if p.caps.len() > 1 {
                // drop the most expensive spare capability first
                if let Some(c) = p.caps.iter().copied().max_by_key(cheapness) {
                    candidates.push((pe, c));
                }
            }
        }
    }
    // deterministic pick: the globally most expensive spare capability
    let Some((pe, cap)) = candidates.into_iter().max_by_key(|(_, c)| cheapness(c)) else {
        return Mutation::Noop;
    };
    if let Some(p) = adg.node_mut(pe).and_then(AdgNode::as_pe_mut) {
        p.caps.remove(&cap);
        Mutation::RemoveCap
    } else {
        Mutation::Noop
    }
}

/// Order key: cheaper capabilities first.
fn cheapness(c: &FuCap) -> (u8, u32) {
    let class = match c.op.class() {
        overgen_ir::OpClass::Logic => 0,
        overgen_ir::OpClass::AddLike => 1,
        overgen_ir::OpClass::MulLike => 2,
        overgen_ir::OpClass::DivLike => 3,
    };
    (class, c.dtype.bits())
}

fn resize_port(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let mut ports = adg.nodes_of_kind(NodeKind::InPort);
    ports.extend(adg.nodes_of_kind(NodeKind::OutPort));
    let Some(port) = pick(&ports, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let grow = rng.gen_bool(0.5);
    let shrink_blocked = ctx.preserving && used_nodes(ctx.schedules).contains(&port);
    match adg.node_mut(port) {
        Some(AdgNode::InPort(InPortNode { width_bytes, .. }))
        | Some(AdgNode::OutPort(OutPortNode { width_bytes, .. })) => {
            if grow {
                *width_bytes = (*width_bytes * 2).min(64);
            } else if !shrink_blocked && *width_bytes > 2 {
                *width_bytes /= 2;
            } else {
                return (Mutation::Noop, ScheduleFootprint::Pure);
            }
            (Mutation::ResizePort, ScheduleFootprint::Attribute)
        }
        _ => (Mutation::Noop, ScheduleFootprint::Pure),
    }
}

fn resize_spad(adg: &mut Adg, rng: &mut Rng) -> (Mutation, ScheduleFootprint) {
    let spads = adg.nodes_of_kind(NodeKind::Spad);
    let Some(sp) = pick(&spads, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let grow = rng.gen_bool(0.5);
    if let Some(AdgNode::Spad(s)) = adg.node_mut(sp) {
        if grow {
            s.capacity_kb = (s.capacity_kb * 2).min(512);
        } else if s.capacity_kb > 2 {
            s.capacity_kb /= 2;
        }
        if rng.gen_bool(0.2) {
            s.indirect = !s.indirect;
        }
        (Mutation::ResizeSpad, ScheduleFootprint::Attribute)
    } else {
        (Mutation::Noop, ScheduleFootprint::Pure)
    }
}

fn resize_engine_bw(adg: &mut Adg, rng: &mut Rng) -> (Mutation, ScheduleFootprint) {
    let mut engines = adg.nodes_of_kind(NodeKind::Dma);
    engines.extend(adg.nodes_of_kind(NodeKind::Spad));
    engines.extend(adg.nodes_of_kind(NodeKind::Gen));
    engines.extend(adg.nodes_of_kind(NodeKind::Rec));
    let Some(e) = pick(&engines, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    let grow = rng.gen_bool(0.5);
    let node = adg.node_mut(e);
    let bw: Option<&mut u16> = match node {
        Some(AdgNode::Dma(d)) => Some(&mut d.bw_bytes),
        Some(AdgNode::Spad(s)) => Some(&mut s.bw_bytes),
        Some(AdgNode::Gen(g)) => Some(&mut g.bw_bytes),
        Some(AdgNode::Rec(r)) => Some(&mut r.bw_bytes),
        _ => None,
    };
    if let Some(bw) = bw {
        if grow {
            *bw = (*bw * 2).min(128);
        } else if *bw > 4 {
            *bw /= 2;
        }
        (Mutation::ResizeEngineBw, ScheduleFootprint::Attribute)
    } else {
        (Mutation::Noop, ScheduleFootprint::Pure)
    }
}

fn resize_delay_fifo(adg: &mut Adg, rng: &mut Rng) -> (Mutation, ScheduleFootprint) {
    let pes = adg.nodes_of_kind(NodeKind::Pe);
    let Some(pe) = pick(&pes, rng) else {
        return (Mutation::Noop, ScheduleFootprint::Pure);
    };
    if let Some(p) = adg.node_mut(pe).and_then(AdgNode::as_pe_mut) {
        if rng.gen_bool(0.5) {
            p.delay_fifo_depth = p.delay_fifo_depth.saturating_add(1).min(16);
        } else if p.delay_fifo_depth > 1 {
            p.delay_fifo_depth -= 1;
        }
        (Mutation::ResizeDelayFifo, ScheduleFootprint::Attribute)
    } else {
        (Mutation::Noop, ScheduleFootprint::Pure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Op, Suite};
    use overgen_scheduler::schedule;

    fn pool() -> Vec<FuCap> {
        vec![
            FuCap::new(Op::Add, DataType::I64),
            FuCap::new(Op::Mul, DataType::I64),
        ]
    }

    fn scheduled_setup() -> (overgen_mdfg::Mdfg, SysAdg, Schedule) {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 64)
            .array_input("b", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        (mdfg, sys, sched)
    }

    #[test]
    fn mutations_keep_graph_valid_often() {
        let caps = pool();
        let mut rng = Rng::seed_from_u64(11);
        let mut adg = mesh(&MeshSpec::default());
        let mut schedules = Vec::new();
        let mut ctx = TransformCtx {
            cap_pool: &caps,
            schedules: &mut schedules,
            preserving: false,
        };
        for _ in 0..200 {
            random_mutation(&mut adg, &mut ctx, &mut rng);
        }
        // The graph can transiently be invalid (that is what DSE rejection
        // handles) but must never panic and must keep at least one PE.
        assert!(adg.count_kind(NodeKind::Pe) >= 1);
    }

    #[test]
    fn collapse_rewrites_routes_and_preserves_validity() {
        let (mdfg, mut sys, sched) = scheduled_setup();
        // Find a switch used by some route interior.
        let mut victim = None;
        for path in sched.routes.values() {
            for n in &path[1..path.len().saturating_sub(1)] {
                if sys.adg.kind(*n) == Some(NodeKind::Switch) {
                    victim = Some(*n);
                    break;
                }
            }
        }
        let Some(victim) = victim else {
            // All routes are adjacent; nothing to collapse.
            return;
        };
        let mut schedules = vec![sched];
        collapse_node(&mut sys.adg, &mut schedules, victim);
        // victim gone, routes no longer reference it, links exist.
        assert!(!sys.adg.contains(victim));
        for path in schedules[0].routes.values() {
            assert!(!path.contains(&victim));
            for w in path.windows(2) {
                assert!(sys.adg.has_edge(w[0], w[1]), "bridge edge missing");
            }
        }
        // The schedule must still be repairable as-is (intact fast path).
        let (re, outcome) = overgen_scheduler::repair(&schedules[0], &mdfg, &sys).unwrap();
        assert_eq!(outcome, overgen_scheduler::RepairOutcome::Intact);
        let _ = re;
    }

    #[test]
    fn preserving_remove_pe_spares_used_ones() {
        let (_mdfg, mut sys, sched) = scheduled_setup();
        let used = sched.used_adg_nodes();
        let caps = pool();
        let mut schedules = vec![sched];
        let mut ctx = TransformCtx {
            cap_pool: &caps,
            schedules: &mut schedules,
            preserving: true,
        };
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            remove_pe(&mut sys.adg, &mut ctx, &mut rng);
        }
        for pe in used {
            if sys.adg.kind(pe) == Some(NodeKind::Pe)
                || ctx.schedules[0].assignment.values().any(|a| *a == pe)
            {
                assert!(sys.adg.contains(pe) || sys.adg.kind(pe).is_none());
            }
        }
        // every PE referenced by the schedule still exists
        for (_, hw) in ctx.schedules[0].assignment.iter() {
            assert!(sys.adg.contains(*hw));
        }
    }

    #[test]
    fn capability_pruning_shrinks_unused_pes_only() {
        let (_mdfg, mut sys, sched) = scheduled_setup();
        let used = sched.used_adg_nodes();
        let before: usize = sys
            .adg
            .nodes()
            .filter_map(|(_, n)| n.as_pe().map(|p| p.caps.len()))
            .sum();
        capability_pruning(&mut sys.adg, std::slice::from_ref(&sched));
        let after: usize = sys
            .adg
            .nodes()
            .filter_map(|(_, n)| n.as_pe().map(|p| p.caps.len()))
            .sum();
        assert!(after < before, "pruning had no effect");
        // used PEs untouched
        for pe in sys.adg.nodes_of_kind(NodeKind::Pe) {
            if used.contains(&pe) {
                let n = sys.adg.node(pe).unwrap().as_pe().unwrap();
                assert_eq!(n.caps.len(), 3, "used PE was pruned");
            }
        }
    }

    #[test]
    fn footprints_track_mutation_severity() {
        let (_mdfg, sys, sched) = scheduled_setup();
        let used_pe = sched.assignment.values().copied().next().unwrap();
        assert_eq!(
            removal_footprint(std::slice::from_ref(&sched), used_pe),
            ScheduleFootprint::Structural
        );
        let used = sched.used_adg_nodes();
        let unused_pe = sys
            .adg
            .nodes_of_kind(NodeKind::Pe)
            .into_iter()
            .find(|p| !used.contains(p))
            .expect("default mesh has spare PEs");
        assert_eq!(
            removal_footprint(std::slice::from_ref(&sched), unused_pe),
            ScheduleFootprint::RemoveUnused
        );
        // A degenerated mutation is always Pure, whatever its class.
        assert_eq!(
            footprint_of(&Mutation::Noop, ScheduleFootprint::Structural),
            ScheduleFootprint::Pure
        );
    }

    #[test]
    fn cheapness_ordering() {
        assert!(
            cheapness(&FuCap::new(Op::And, DataType::I8))
                < cheapness(&FuCap::new(Op::Div, DataType::F64))
        );
    }
}
