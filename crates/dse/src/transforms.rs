//! ADG transformations: random mutations plus the schedule-preserving
//! transformations of §V-B.
//!
//! The mutation machinery itself now lives in [`crate::rewrite`] — a
//! registry of declarative rules with recorded deltas and mechanically
//! inferred footprints. This module keeps the historical public surface
//! ([`random_mutation`], [`collapse_node`], [`capability_pruning`],
//! [`Mutation`], [`TransformCtx`]) as thin shims over the rule engine; the
//! RNG stream and results are bit-identical to the legacy hand-rolled
//! dispatch.

use overgen_telemetry::Rng;

use overgen_adg::{Adg, NodeId};
use overgen_scheduler::{Schedule, ScheduleFootprint};

pub use crate::rewrite::{Mutation, TransformCtx};

use crate::rewrite::{AdgDelta, RecordedAdg, RuleSet};

/// Apply one random mutation to `adg`, preserving schedules when
/// `ctx.preserving` (routes in `ctx.schedules` are rewritten in place).
///
/// Returns what happened plus the mutation's [`ScheduleFootprint`] — the
/// worst effect this *particular application* can have on the live
/// schedules (a removal of provably-unused hardware classifies as
/// [`ScheduleFootprint::RemoveUnused`] even outside preserving mode). The
/// footprint travels with the proposal into the evaluation cache key and
/// the repair engine's trace events; repair never trusts it for
/// correctness.
///
/// Since the rewrite refactor the footprint is *inferred* from the
/// application's recorded delta rather than hand-classified; the ported
/// rules infer exactly the legacy classes.
pub fn random_mutation(
    adg: &mut Adg,
    ctx: &mut TransformCtx<'_>,
    rng: &mut Rng,
) -> (Mutation, ScheduleFootprint) {
    let app = RuleSet::legacy().apply_random(adg, ctx, rng, 0);
    (app.mutation, app.inferred)
}

/// Node collapsing (§V-B, Figure 7a): delete a routing node and add direct
/// edges for every schedule route that passed through it, rewriting those
/// routes. Edge-delay preservation (Figure 7b) bumps the delay-FIFO depth
/// of destination PEs whose operand paths shortened.
pub fn collapse_node(adg: &mut Adg, schedules: &mut [Schedule], victim: NodeId) -> Mutation {
    let mut delta = AdgDelta::new(0);
    let mut recorded = RecordedAdg::new(adg, &mut delta);
    crate::rewrite::collapse_recorded(&mut recorded, schedules, victim)
}

/// Module-capability pruning (§V-B): drop a capability no mapped schedule
/// needs. Schedules only record hardware ids, so pruning is restricted to
/// PEs no schedule touches at all — and proceeds one capability at a time
/// (one cap of one unused PE per invocation), giving the annealer the
/// chance to reject harmful prunes instead of devastating the
/// spare-capacity pool in one step.
pub fn capability_pruning(adg: &mut Adg, schedules: &[Schedule]) -> Mutation {
    let mut delta = AdgDelta::new(0);
    let mut recorded = RecordedAdg::new(adg, &mut delta);
    crate::rewrite::capability_pruning_recorded(&mut recorded, schedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, NodeKind, SysAdg, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, FuCap, KernelBuilder, Op, Suite};
    use overgen_scheduler::schedule;

    fn pool() -> Vec<FuCap> {
        vec![
            FuCap::new(Op::Add, DataType::I64),
            FuCap::new(Op::Mul, DataType::I64),
        ]
    }

    fn scheduled_setup() -> (overgen_mdfg::Mdfg, SysAdg, Schedule) {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 64)
            .array_input("b", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        (mdfg, sys, sched)
    }

    #[test]
    fn mutations_keep_graph_valid_often() {
        let caps = pool();
        let mut rng = Rng::seed_from_u64(11);
        let mut adg = mesh(&MeshSpec::default());
        let mut schedules = Vec::new();
        let mut ctx = TransformCtx {
            cap_pool: &caps,
            schedules: &mut schedules,
            preserving: false,
        };
        for _ in 0..200 {
            random_mutation(&mut adg, &mut ctx, &mut rng);
        }
        // The graph can transiently be invalid (that is what DSE rejection
        // handles) but must never panic and must keep at least one PE.
        assert!(adg.count_kind(NodeKind::Pe) >= 1);
    }

    #[test]
    fn collapse_rewrites_routes_and_preserves_validity() {
        let (mdfg, mut sys, sched) = scheduled_setup();
        // Find a switch used by some route interior.
        let mut victim = None;
        for path in sched.routes.values() {
            for n in &path[1..path.len().saturating_sub(1)] {
                if sys.adg.kind(*n) == Some(NodeKind::Switch) {
                    victim = Some(*n);
                    break;
                }
            }
        }
        let Some(victim) = victim else {
            // All routes are adjacent; nothing to collapse.
            return;
        };
        let mut schedules = vec![sched];
        collapse_node(&mut sys.adg, &mut schedules, victim);
        // victim gone, routes no longer reference it, links exist.
        assert!(!sys.adg.contains(victim));
        for path in schedules[0].routes.values() {
            assert!(!path.contains(&victim));
            for w in path.windows(2) {
                assert!(sys.adg.has_edge(w[0], w[1]), "bridge edge missing");
            }
        }
        // The schedule must still be repairable as-is (intact fast path).
        let (re, outcome) = overgen_scheduler::repair(&schedules[0], &mdfg, &sys).unwrap();
        assert_eq!(outcome, overgen_scheduler::RepairOutcome::Intact);
        let _ = re;
    }

    #[test]
    fn capability_pruning_shrinks_unused_pes_only() {
        let (_mdfg, mut sys, sched) = scheduled_setup();
        let used = sched.used_adg_nodes();
        let before: usize = sys
            .adg
            .nodes()
            .filter_map(|(_, n)| n.as_pe().map(|p| p.caps.len()))
            .sum();
        capability_pruning(&mut sys.adg, std::slice::from_ref(&sched));
        let after: usize = sys
            .adg
            .nodes()
            .filter_map(|(_, n)| n.as_pe().map(|p| p.caps.len()))
            .sum();
        assert!(after < before, "pruning had no effect");
        // used PEs untouched
        for pe in sys.adg.nodes_of_kind(NodeKind::Pe) {
            if used.contains(&pe) {
                let n = sys.adg.node(pe).unwrap().as_pe().unwrap();
                assert_eq!(n.caps.len(), 3, "used PE was pruned");
            }
        }
    }
}
