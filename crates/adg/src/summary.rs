use std::fmt;

use overgen_ir::Op;

use crate::{Adg, AdgNode};

/// Aggregate specification of an accelerator ADG — the per-column content of
/// the paper's Table III ("Specification of Suite Specific Overlays").
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdgSummary {
    /// Number of processing elements.
    pub pes: usize,
    /// Number of switches.
    pub switches: usize,
    /// Average radix (total degree) over switches.
    pub avg_switch_radix: f64,
    /// Integer add / mul / div capability counts over all PEs.
    pub int_add: usize,
    /// Integer multiply capabilities.
    pub int_mul: usize,
    /// Integer divide capabilities.
    pub int_div: usize,
    /// Float add capabilities.
    pub flt_add: usize,
    /// Float multiply capabilities.
    pub flt_mul: usize,
    /// Float divide capabilities.
    pub flt_div: usize,
    /// Float square-root capabilities.
    pub flt_sqrt: usize,
    /// Scratchpad capacities in KiB, one entry per scratchpad.
    pub spad_caps_kb: Vec<u32>,
    /// Scratchpad bandwidths in bytes/cycle.
    pub spad_bws: Vec<u16>,
    /// Whether each scratchpad supports indirect access.
    pub spad_indirect: Vec<bool>,
    /// Counts of generate / recurrence / register engines.
    pub gen: usize,
    /// Recurrence engine count.
    pub rec: usize,
    /// Register engine count.
    pub reg: usize,
    /// Total input-port bandwidth in bytes.
    pub in_port_bw: u64,
    /// Total output-port bandwidth in bytes.
    pub out_port_bw: u64,
    /// Number of DMA engines.
    pub dmas: usize,
}

impl AdgSummary {
    /// Compute the summary of an ADG.
    pub fn of(adg: &Adg) -> Self {
        let mut s = AdgSummary::default();
        let mut radix_sum = 0usize;
        for (id, n) in adg.nodes() {
            match n {
                AdgNode::Pe(pe) => {
                    s.pes += 1;
                    for c in &pe.caps {
                        match (c.op, c.dtype.is_float()) {
                            (Op::Add | Op::Sub, false) => s.int_add += 1,
                            (Op::Mul, false) => s.int_mul += 1,
                            (Op::Div, false) => s.int_div += 1,
                            (Op::Add | Op::Sub, true) => s.flt_add += 1,
                            (Op::Mul, true) => s.flt_mul += 1,
                            (Op::Div, true) => s.flt_div += 1,
                            (Op::Sqrt, true) => s.flt_sqrt += 1,
                            _ => {}
                        }
                    }
                }
                AdgNode::Switch(_) => {
                    s.switches += 1;
                    radix_sum += adg.undirected_radix(id);
                }
                AdgNode::InPort(p) => s.in_port_bw += u64::from(p.width_bytes),
                AdgNode::OutPort(p) => s.out_port_bw += u64::from(p.width_bytes),
                AdgNode::Dma(_) => s.dmas += 1,
                AdgNode::Spad(sp) => {
                    s.spad_caps_kb.push(sp.capacity_kb);
                    s.spad_bws.push(sp.bw_bytes);
                    s.spad_indirect.push(sp.indirect);
                }
                AdgNode::Gen(_) => s.gen += 1,
                AdgNode::Rec(_) => s.rec += 1,
                AdgNode::Reg(_) => s.reg += 1,
            }
        }
        s.avg_switch_radix = if s.switches > 0 {
            radix_sum as f64 / s.switches as f64
        } else {
            0.0
        };
        s
    }

    /// Whether the accelerator has any floating-point capability.
    pub fn has_float(&self) -> bool {
        self.flt_add + self.flt_mul + self.flt_div + self.flt_sqrt > 0
    }
}

impl fmt::Display for AdgSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PEs                 {}", self.pes)?;
        writeln!(f, "Switches            {}", self.switches)?;
        writeln!(f, "Avg. Radix          {:.2}", self.avg_switch_radix)?;
        writeln!(
            f,
            "Int +/x/÷           {}/{}/{}",
            self.int_add, self.int_mul, self.int_div
        )?;
        writeln!(
            f,
            "Flt. +/x/÷/sqrt     {}/{}/{}/{}",
            self.flt_add, self.flt_mul, self.flt_div, self.flt_sqrt
        )?;
        let caps: Vec<String> = self.spad_caps_kb.iter().map(|c| c.to_string()).collect();
        writeln!(
            f,
            "Spad. Cap. (KB)     {}",
            if caps.is_empty() {
                "-".into()
            } else {
                caps.join(", ")
            }
        )?;
        let bws: Vec<String> = self.spad_bws.iter().map(|c| c.to_string()).collect();
        writeln!(
            f,
            "Spad. B/W (B/cyc)   {}",
            if bws.is_empty() {
                "-".into()
            } else {
                bws.join(", ")
            }
        )?;
        writeln!(
            f,
            "GEN/REC/REG         {}/{}/{}",
            self.gen, self.rec, self.reg
        )?;
        writeln!(f, "In Ports B/W (B)    {}", self.in_port_bw)?;
        write!(f, "Out Ports B/W (B)   {}", self.out_port_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::*;
    use crate::topology::{mesh, MeshSpec};
    use overgen_ir::DataType;
    use overgen_ir::FuCap;

    #[test]
    fn summary_of_mesh() {
        let spec = MeshSpec::default();
        let adg = mesh(&spec);
        let s = AdgSummary::of(&adg);
        assert_eq!(s.pes, spec.rows * spec.cols);
        assert!(s.switches > 0);
        assert!(s.avg_switch_radix > 1.0);
        assert!(s.in_port_bw > 0);
        assert_eq!(s.dmas, 1);
    }

    #[test]
    fn capability_counting() {
        let mut adg = Adg::new();
        adg.add_node(AdgNode::Pe(PeNode::with_caps([
            FuCap::new(Op::Add, DataType::I64),
            FuCap::new(Op::Mul, DataType::F64),
            FuCap::new(Op::Sqrt, DataType::F64),
        ])));
        let s = AdgSummary::of(&adg);
        assert_eq!(s.int_add, 1);
        assert_eq!(s.flt_mul, 1);
        assert_eq!(s.flt_sqrt, 1);
        assert!(s.has_float());
    }

    #[test]
    fn display_contains_rows() {
        let s = AdgSummary::of(&mesh(&MeshSpec::default()));
        let txt = s.to_string();
        assert!(txt.contains("PEs"));
        assert!(txt.contains("Avg. Radix"));
    }
}
