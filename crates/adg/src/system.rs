use crate::{Adg, AdgError};

/// System-level design parameters of an overlay (paper §III-B): the part of
/// the design space the nested *system DSE* explores exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemParams {
    /// Number of homogeneous tiles (control core + accelerator each).
    pub tiles: u32,
    /// Number of L2 banks (controls L2 bandwidth).
    pub l2_banks: u32,
    /// Total L2 capacity in KiB.
    pub l2_kb: u32,
    /// NoC (crossbar) bandwidth in bytes/cycle per link.
    pub noc_bw_bytes: u32,
    /// Number of DRAM channels (1 on the paper's FPGA runs; 2/4 in Q7).
    pub dram_channels: u32,
}

impl SystemParams {
    /// The paper's default single-channel system (Figure 8 shows 512 KB L2).
    pub fn single_tile() -> Self {
        SystemParams {
            tiles: 1,
            l2_banks: 4,
            l2_kb: 512,
            noc_bw_bytes: 32,
            dram_channels: 1,
        }
    }

    /// L2 bandwidth in bytes/cycle (one access per bank per cycle, 16-byte
    /// lines per bank access as in TileLink beats).
    pub fn l2_bw_bytes(&self) -> u64 {
        u64::from(self.l2_banks) * 16
    }

    /// DRAM bandwidth in bytes/cycle across channels. A single DDR4-2400
    /// channel at the overlay's ~100 MHz fabric clock supplies roughly 64
    /// bytes/fabric-cycle at peak; we use that as the per-channel figure.
    pub fn dram_bw_bytes(&self) -> u64 {
        u64::from(self.dram_channels) * 64
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams::single_tile()
    }
}

/// A system-level ADG: the complete overlay design spec (paper Figure 3's
/// "System-level ADG") — one accelerator ADG replicated over `sys.tiles`
/// homogeneous tiles, plus the shared memory system parameters.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SysAdg {
    /// Per-tile accelerator graph (tiles are homogeneous).
    pub adg: Adg,
    /// System parameters.
    pub sys: SystemParams,
}

impl SysAdg {
    /// Pair an accelerator ADG with system parameters.
    pub fn new(adg: Adg, sys: SystemParams) -> Self {
        SysAdg { adg, sys }
    }

    /// Validate the accelerator graph and the system parameters.
    ///
    /// # Errors
    ///
    /// Propagates ADG validation failures; rejects zero tiles/banks.
    pub fn validate(&self) -> Result<(), AdgError> {
        if self.sys.tiles == 0 {
            return Err(AdgError::Invalid("zero tiles".into()));
        }
        if self.sys.l2_banks == 0 {
            return Err(AdgError::Invalid("zero L2 banks".into()));
        }
        if self.sys.dram_channels == 0 {
            return Err(AdgError::Invalid("zero DRAM channels".into()));
        }
        self.adg.validate()
    }

    /// Configuration bitstream bytes for reconfiguring *one* tile.
    pub fn config_bytes(&self) -> u64 {
        self.adg.config_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mesh, MeshSpec};

    #[test]
    fn bandwidths() {
        let sys = SystemParams {
            tiles: 4,
            l2_banks: 8,
            l2_kb: 512,
            noc_bw_bytes: 64,
            dram_channels: 2,
        };
        assert_eq!(sys.l2_bw_bytes(), 128);
        assert_eq!(sys.dram_bw_bytes(), 128);
    }

    #[test]
    fn validate_rejects_zero_tiles() {
        let mut s = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        s.sys.tiles = 0;
        assert!(s.validate().is_err());
        s.sys.tiles = 2;
        s.validate().unwrap();
    }
}
