use std::collections::BTreeSet;

use overgen_ir::{DataType, FuCap, Op};

use crate::node::*;
use crate::{Adg, NodeId};

/// Specification of a mesh-style accelerator fabric, the "hand-designed
/// mesh-based accelerator overlay" used as the paper's *General Overlay*
/// (Q1) and as the DSE seed.
///
/// The generated topology places a `(rows+1) x (cols+1)` switch grid with a
/// `rows x cols` PE grid in the interstices (each PE fed by its north-west
/// switch and feeding its south-east switch), input ports on the north edge
/// and output ports on the south edge — the canonical DSAGEN/DySER layout.
/// With `rows = 4, cols = 6` this yields the paper's 24 PEs / 35 switches.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSpec {
    /// PE grid rows.
    pub rows: usize,
    /// PE grid columns.
    pub cols: usize,
    /// Capabilities of every PE.
    pub caps: BTreeSet<FuCap>,
    /// Number of input ports (north edge).
    pub in_ports: usize,
    /// Number of output ports (south edge).
    pub out_ports: usize,
    /// Width of each port in bytes.
    pub port_width_bytes: u16,
    /// DMA engine bandwidth (bytes/cycle).
    pub dma_bw: u16,
    /// Scratchpads to instantiate.
    pub spads: Vec<SpadNode>,
    /// Instantiate a generate engine.
    pub with_gen: bool,
    /// Instantiate a recurrence engine.
    pub with_rec: bool,
    /// Instantiate a register engine.
    pub with_reg: bool,
}

impl MeshSpec {
    /// Full capability set: every op at every datatype (the general
    /// overlay's "about 52% LUT overhead" datapath).
    pub fn full_caps() -> BTreeSet<FuCap> {
        let mut caps = BTreeSet::new();
        for op in Op::ALL {
            for dt in DataType::ALL {
                caps.insert(FuCap::new(op, dt));
            }
        }
        caps
    }

    /// The paper's General Overlay accelerator: 24 PEs, 35 switches, full
    /// FU coverage, 512-bit (64 B) vector ports totalling 224 B in / 160 B
    /// out, one 32 KiB indirect-capable scratchpad, and all stream engines.
    pub fn general() -> Self {
        MeshSpec {
            rows: 4,
            cols: 6,
            caps: Self::full_caps(),
            in_ports: 7,
            out_ports: 5,
            port_width_bytes: 32,
            dma_bw: 64,
            spads: vec![SpadNode {
                capacity_kb: 32,
                bw_bytes: 32,
                indirect: true,
            }],
            with_gen: true,
            with_rec: true,
            with_reg: true,
        }
    }
}

impl Default for MeshSpec {
    /// A small 2x2 fabric suitable for unit tests and quickstarts.
    fn default() -> Self {
        MeshSpec {
            rows: 2,
            cols: 2,
            caps: [
                FuCap::new(Op::Add, DataType::I64),
                FuCap::new(Op::Sub, DataType::I64),
                FuCap::new(Op::Mul, DataType::I64),
            ]
            .into_iter()
            .collect(),
            in_ports: 3,
            out_ports: 2,
            port_width_bytes: 8,
            dma_bw: 16,
            spads: vec![SpadNode {
                capacity_kb: 8,
                bw_bytes: 16,
                indirect: false,
            }],
            with_gen: true,
            with_rec: true,
            with_reg: true,
        }
    }
}

/// Build a mesh accelerator ADG from a [`MeshSpec`].
pub fn mesh(spec: &MeshSpec) -> Adg {
    let mut g = Adg::new();
    let srows = spec.rows + 1;
    let scols = spec.cols + 1;

    // Switch grid.
    let mut sw = vec![vec![NodeId::from_index(0); scols]; srows];
    for (r, row) in sw.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            let _ = (r, c);
            *slot = g.add_node(AdgNode::Switch(SwitchNode {}));
        }
    }
    // Bidirectional neighbour links.
    for r in 0..srows {
        for c in 0..scols {
            if c + 1 < scols {
                g.add_edge(sw[r][c], sw[r][c + 1]).unwrap();
                g.add_edge(sw[r][c + 1], sw[r][c]).unwrap();
            }
            if r + 1 < srows {
                g.add_edge(sw[r][c], sw[r + 1][c]).unwrap();
                g.add_edge(sw[r + 1][c], sw[r][c]).unwrap();
            }
        }
    }

    // PE grid: fed by NW switch, feeding SE switch.
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            let pe = g.add_node(AdgNode::Pe(PeNode::with_caps(spec.caps.iter().copied())));
            g.add_edge(sw[r][c], pe).unwrap();
            g.add_edge(sw[r][c + 1], pe).unwrap();
            g.add_edge(pe, sw[r + 1][c + 1]).unwrap();
            g.add_edge(pe, sw[r + 1][c]).unwrap();
        }
    }

    // Ports on north / south edges. Vector ports are multi-lane: a port of
    // `w` bytes attaches to ~w/8 edge switches so its lanes can spread into
    // the fabric (DSAGEN-style vector port interfaces).
    let lanes = (usize::from(spec.port_width_bytes) / 8).clamp(1, scols);
    let mut in_ports = Vec::new();
    for i in 0..spec.in_ports {
        let ip = g.add_node(AdgNode::InPort(InPortNode::with_width(
            spec.port_width_bytes,
        )));
        for l in 0..lanes {
            g.add_edge(ip, sw[0][(i + l) % scols]).unwrap();
        }
        in_ports.push(ip);
    }
    let mut out_ports = Vec::new();
    for i in 0..spec.out_ports {
        let op = g.add_node(AdgNode::OutPort(OutPortNode::with_width(
            spec.port_width_bytes,
        )));
        for l in 0..lanes {
            g.add_edge(sw[srows - 1][(i + l) % scols], op).unwrap();
        }
        out_ports.push(op);
    }

    // Stream engines. The baseline topology wires every engine to every
    // port (the "fixed fully-connected memory" of Figure 4a); the spatial
    // memory DSE then specialises this.
    let dma = g.add_node(AdgNode::Dma(DmaNode {
        bw_bytes: spec.dma_bw,
    }));
    for &ip in &in_ports {
        g.add_edge(dma, ip).unwrap();
    }
    for &op in &out_ports {
        g.add_edge(op, dma).unwrap();
    }
    for spad in &spec.spads {
        let sp = g.add_node(AdgNode::Spad(*spad));
        for &ip in &in_ports {
            g.add_edge(sp, ip).unwrap();
        }
        for &op in &out_ports {
            g.add_edge(op, sp).unwrap();
        }
    }
    if spec.with_gen {
        let gen = g.add_node(AdgNode::Gen(GenNode {
            bw_bytes: spec.port_width_bytes,
        }));
        for &ip in &in_ports {
            g.add_edge(gen, ip).unwrap();
        }
    }
    if spec.with_rec {
        let rec = g.add_node(AdgNode::Rec(RecNode {
            bw_bytes: spec.port_width_bytes,
        }));
        for &ip in &in_ports {
            g.add_edge(rec, ip).unwrap();
        }
        for &op in &out_ports {
            g.add_edge(op, rec).unwrap();
        }
    }
    if spec.with_reg {
        let reg = g.add_node(AdgNode::Reg(RegNode { bw_bytes: 8 }));
        for &op in &out_ports {
            g.add_edge(op, reg).unwrap();
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdgSummary, NodeKind};

    #[test]
    fn default_mesh_is_valid() {
        let g = mesh(&MeshSpec::default());
        g.validate().unwrap();
        assert_eq!(g.count_kind(NodeKind::Pe), 4);
        assert_eq!(g.count_kind(NodeKind::Switch), 9);
        assert_eq!(g.count_kind(NodeKind::InPort), 3);
    }

    #[test]
    fn general_matches_table_iii() {
        let g = mesh(&MeshSpec::general());
        g.validate().unwrap();
        let s = AdgSummary::of(&g);
        assert_eq!(s.pes, 24);
        assert_eq!(s.switches, 35);
        assert_eq!(s.in_port_bw, 224);
        assert_eq!(s.out_port_bw, 160);
        assert_eq!(s.int_add, 24 * 2 * 4); // add + sub per PE per int dtype
        assert_eq!(s.int_mul, 24 * 4);
        assert_eq!(s.flt_sqrt, 24 * 2); // f32 + f64 sqrt per PE
        assert_eq!(s.spad_caps_kb, vec![32]);
        assert!(s.spad_indirect[0]);
        assert_eq!((s.gen, s.rec, s.reg), (1, 1, 1));
        // switch radix should be in a plausible mesh range (Table III
        // reports 4.69; our PEs take two ingress/egress switch links each,
        // pushing the average somewhat higher)
        assert!(
            s.avg_switch_radix > 4.0 && s.avg_switch_radix < 9.0,
            "avg radix {}",
            s.avg_switch_radix
        );
    }

    #[test]
    fn ports_always_fed_and_drained() {
        for spec in [MeshSpec::default(), MeshSpec::general()] {
            let g = mesh(&spec);
            for ip in g.nodes_of_kind(NodeKind::InPort) {
                assert!(!g.preds(ip).is_empty());
            }
            for op in g.nodes_of_kind(NodeKind::OutPort) {
                assert!(!g.succs(op).is_empty());
            }
        }
    }
}
