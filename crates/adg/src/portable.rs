//! Loss-free plain-data mirror of an [`Adg`] for checkpointing.
//!
//! The slot-map's *history* is part of a graph's identity: dead slots shift
//! the ids future `add_node` calls hand out, and the fingerprint hashes
//! live ids (see `fingerprint.rs` — id-addressed schedule repair makes two
//! graphs with the same shape but different ids non-interchangeable).
//! Adjacency *order* matters too: the scheduler walks `succs`/`preds` in
//! stored order, so canonicalizing edges on the way out would silently
//! change placement decisions after a resume. [`PortableAdg`] therefore
//! mirrors the internal representation field for field — slots including
//! `None` holes, and both adjacency tables verbatim — so that
//! `Adg::from_portable(adg.to_portable())` reproduces a graph whose
//! fingerprint, ids, and iteration orders are all bit-identical.

use crate::graph::{Adg, AdgError, NodeId};
use crate::node::AdgNode;

/// Plain-data form of an [`Adg`]: everything public, no invariants beyond
/// what [`Adg::from_portable`] re-checks. Serialize it however you like;
/// the graph crate stays format-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableAdg {
    /// Node slots in id order; `None` marks a deleted slot (preserved so
    /// future id assignment matches the original graph).
    pub slots: Vec<Option<AdgNode>>,
    /// Outgoing adjacency per slot, as raw indices, in stored order.
    pub out_adj: Vec<Vec<u32>>,
    /// Incoming adjacency per slot, as raw indices, in stored order.
    pub in_adj: Vec<Vec<u32>>,
}

impl Adg {
    /// Export the graph into its portable mirror.
    pub fn to_portable(&self) -> PortableAdg {
        let raw = |adj: &[Vec<NodeId>]| -> Vec<Vec<u32>> {
            adj.iter()
                .map(|v| v.iter().map(|id| id.index() as u32).collect())
                .collect()
        };
        PortableAdg {
            slots: self.slots.clone(),
            out_adj: raw(&self.out_adj),
            in_adj: raw(&self.in_adj),
        }
    }

    /// Rebuild a graph from its portable mirror.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::Invalid`] when the tables are inconsistent:
    /// mismatched lengths, an edge endpoint out of range or pointing at a
    /// dead slot, or an `out_adj` entry without its `in_adj` twin. A value
    /// produced by [`Adg::to_portable`] always passes.
    pub fn from_portable(p: PortableAdg) -> Result<Adg, AdgError> {
        let n = p.slots.len();
        if p.out_adj.len() != n || p.in_adj.len() != n {
            return Err(AdgError::Invalid(format!(
                "portable ADG tables disagree: {} slots, {} out rows, {} in rows",
                n,
                p.out_adj.len(),
                p.in_adj.len()
            )));
        }
        let live = |i: u32| -> bool { p.slots.get(i as usize).is_some_and(Option::is_some) };
        for (i, row) in p.out_adj.iter().enumerate() {
            for &dst in row {
                if !live(dst) {
                    return Err(AdgError::Invalid(format!(
                        "portable ADG edge n{i} -> n{dst} targets a dead slot"
                    )));
                }
                if !p.in_adj[dst as usize].contains(&(i as u32)) {
                    return Err(AdgError::Invalid(format!(
                        "portable ADG edge n{i} -> n{dst} missing from in_adj"
                    )));
                }
            }
            if !row.is_empty() && p.slots[i].is_none() {
                return Err(AdgError::Invalid(format!(
                    "portable ADG dead slot n{i} has outgoing edges"
                )));
            }
        }
        for (i, row) in p.in_adj.iter().enumerate() {
            for &src in row {
                if !live(src) || !p.out_adj[src as usize].contains(&(i as u32)) {
                    return Err(AdgError::Invalid(format!(
                        "portable ADG in_adj entry n{src} -> n{i} has no out_adj twin"
                    )));
                }
            }
        }
        let ids = |adj: Vec<Vec<u32>>| -> Vec<Vec<NodeId>> {
            adj.into_iter()
                .map(|v| {
                    v.into_iter()
                        .map(|i| NodeId::from_index(i as usize))
                        .collect()
                })
                .collect()
        };
        Ok(Adg {
            slots: p.slots,
            out_adj: ids(p.out_adj),
            in_adj: ids(p.in_adj),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{DmaNode, InPortNode, OutPortNode, PeNode, SwitchNode};
    use overgen_ir::{DataType, FuCap, Op};

    fn graph_with_history() -> Adg {
        let mut g = Adg::new();
        let dma = g.add_node(AdgNode::Dma(DmaNode { bw_bytes: 16 }));
        let ip = g.add_node(AdgNode::InPort(InPortNode::with_width(8)));
        let trash = g.add_node(AdgNode::Switch(SwitchNode {}));
        let pe = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        let op = g.add_node(AdgNode::OutPort(OutPortNode::with_width(8)));
        g.add_edge(dma, ip).unwrap();
        g.add_edge(ip, pe).unwrap();
        g.add_edge(pe, op).unwrap();
        g.add_edge(op, dma).unwrap();
        g.remove_node(trash); // leave a hole mid-table
        g
    }

    #[test]
    fn round_trip_is_exact() {
        let g = graph_with_history();
        let back = Adg::from_portable(g.to_portable()).unwrap();
        assert_eq!(g.fingerprint(), back.fingerprint());
        // Future id assignment continues from the same point.
        let mut a = g.clone();
        let mut b = back;
        assert_eq!(
            a.add_node(AdgNode::Switch(SwitchNode {})),
            b.add_node(AdgNode::Switch(SwitchNode {}))
        );
    }

    #[test]
    fn adjacency_order_survives() {
        let mut g = Adg::new();
        let sw = g.add_node(AdgNode::Switch(SwitchNode {}));
        let p1 = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        let p2 = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        // Insert out of id order: canonicalizing would reorder succs.
        g.add_edge(sw, p2).unwrap();
        g.add_edge(sw, p1).unwrap();
        let back = Adg::from_portable(g.to_portable()).unwrap();
        assert_eq!(g.succs(sw), back.succs(sw));
        assert_eq!(back.succs(sw), &[p2, p1]);
    }

    #[test]
    fn inconsistent_tables_rejected() {
        let g = graph_with_history();
        let mut missing_in = g.to_portable();
        missing_in.in_adj[1].clear();
        assert!(matches!(
            Adg::from_portable(missing_in),
            Err(AdgError::Invalid(_))
        ));

        let mut dangling = g.to_portable();
        dangling.out_adj[0].push(99);
        assert!(matches!(
            Adg::from_portable(dangling),
            Err(AdgError::Invalid(_))
        ));

        let mut short = g.to_portable();
        short.out_adj.pop();
        assert!(matches!(
            Adg::from_portable(short),
            Err(AdgError::Invalid(_))
        ));
    }
}
