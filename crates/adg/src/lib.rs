//! Architecture description graph (ADG) for OverGen overlays.
//!
//! The ADG is the paper's representation of a spatial accelerator (§II-A,
//! Figure 2c): a graph whose nodes are processing elements, switches,
//! synchronization ports, and — the paper's key extension (§IV) — *memory
//! stream engines* (DMA, scratchpads, recurrence/generate/register engines)
//! that participate in the spatial topology rather than sitting behind a
//! fixed crossbar.
//!
//! A [`SysAdg`] pairs one accelerator ADG (replicated per tile) with the
//! system-level parameters the unified DSE explores: tile count, L2 banks
//! and capacity, NoC bandwidth (§III-B).
//!
//! # Example
//!
//! ```
//! use overgen_adg::{Adg, AdgNode, PeNode, InPortNode, OutPortNode, DmaNode};
//! use overgen_ir::{FuCap, Op, DataType};
//!
//! let mut adg = Adg::new();
//! let dma = adg.add_node(AdgNode::Dma(DmaNode { bw_bytes: 16 }));
//! let ip = adg.add_node(AdgNode::InPort(InPortNode::with_width(8)));
//! let pe = adg.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(Op::Add, DataType::I64)])));
//! let op = adg.add_node(AdgNode::OutPort(OutPortNode::with_width(8)));
//! adg.add_edge(dma, ip)?;
//! adg.add_edge(ip, pe)?;
//! adg.add_edge(pe, op)?;
//! adg.add_edge(op, dma)?;
//! assert!(adg.validate().is_ok());
//! # Ok::<(), overgen_adg::AdgError>(())
//! ```

mod fingerprint;
mod graph;
mod node;
mod portable;
mod summary;
mod system;
mod topology;

pub use fingerprint::StableHasher;
pub use graph::{Adg, AdgError, NodeId};
pub use node::{
    AdgNode, DmaNode, GenNode, InPortNode, NodeKind, OutPortNode, PeNode, RecNode, RegNode,
    SpadNode, SwitchNode,
};
pub use portable::PortableAdg;
pub use summary::AdgSummary;
pub use system::{SysAdg, SystemParams};
pub use topology::{mesh, MeshSpec};
