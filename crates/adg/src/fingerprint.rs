//! Canonical 64-bit fingerprints of ADGs for evaluation caching.
//!
//! The DSE proposes thousands of candidate graphs and frequently revisits
//! structurally identical ones (rejected proposals, saturated resizes,
//! multi-chain overlap). [`Adg::fingerprint`] gives each design point a
//! stable identity: an FNV-1a hash over the live nodes in id order, their
//! full parameter payloads, and the edge set in sorted order — so the
//! fingerprint is independent of edge insertion history but sensitive to
//! everything the scheduler and models can observe, including [`NodeId`]s
//! (schedule repair is id-addressed, so two graphs with the same shape but
//! different ids are *not* interchangeable).
//!
//! The hash is deterministic across runs and platforms: no pointer values,
//! no `DefaultHasher` random keys, floats by bit pattern.

use crate::graph::{Adg, NodeId};
use crate::node::AdgNode;
use crate::system::SysAdg;

/// A deterministic streaming hasher (64-bit FNV-1a). Unlike
/// `std::collections::hash_map::DefaultHasher`, the output is stable
/// across processes, which is what cache keys and trace-level assertions
/// need. Exposed so downstream crates (the DSE cache) can extend a
/// fingerprint with their own context.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorb a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Absorb a float by IEEE-754 bit pattern (`-0.0` and `0.0` differ;
    /// all NaNs with the same payload collide, which is fine for keys).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

fn write_node(h: &mut StableHasher, id: NodeId, node: &AdgNode) {
    h.write_u64(id.index() as u64);
    match node {
        AdgNode::Pe(pe) => {
            h.write_str("pe");
            h.write_u64(pe.caps.len() as u64);
            for cap in &pe.caps {
                // BTreeSet iterates in sorted order; discriminants are
                // stable per source definition.
                h.write_u64(cap.op as u64);
                h.write_u64(cap.dtype as u64);
            }
            h.write_u64(u64::from(pe.delay_fifo_depth));
        }
        AdgNode::Switch(_) => h.write_str("switch"),
        AdgNode::InPort(p) => {
            h.write_str("in_port");
            h.write_u64(u64::from(p.width_bytes));
            h.write_bool(p.padding);
            h.write_bool(p.stream_state);
        }
        AdgNode::OutPort(p) => {
            h.write_str("out_port");
            h.write_u64(u64::from(p.width_bytes));
        }
        AdgNode::Dma(d) => {
            h.write_str("dma");
            h.write_u64(u64::from(d.bw_bytes));
        }
        AdgNode::Spad(s) => {
            h.write_str("spad");
            h.write_u64(u64::from(s.capacity_kb));
            h.write_u64(u64::from(s.bw_bytes));
            h.write_bool(s.indirect);
        }
        AdgNode::Gen(g) => {
            h.write_str("gen");
            h.write_u64(u64::from(g.bw_bytes));
        }
        AdgNode::Rec(r) => {
            h.write_str("rec");
            h.write_u64(u64::from(r.bw_bytes));
        }
        AdgNode::Reg(r) => {
            h.write_str("reg");
            h.write_u64(u64::from(r.bw_bytes));
        }
    }
}

impl Adg {
    /// Canonical 64-bit fingerprint of this graph: live nodes in id order
    /// with full parameter payloads, plus the edge set in sorted order.
    /// Two graphs with equal fingerprints are interchangeable for
    /// scheduling and modelling (modulo 64-bit collisions).
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// Absorb this graph's canonical form into an existing hasher, for
    /// callers composing larger cache keys.
    pub fn fingerprint_into(&self, h: &mut StableHasher) {
        h.write_str("adg");
        h.write_u64(self.node_count() as u64);
        for (id, node) in self.nodes() {
            write_node(h, id, node);
        }
        let mut edges: Vec<(NodeId, NodeId)> = self.edges().collect();
        edges.sort_unstable();
        h.write_u64(edges.len() as u64);
        for (src, dst) in edges {
            h.write_u64(src.index() as u64);
            h.write_u64(dst.index() as u64);
        }
    }
}

impl SysAdg {
    /// Fingerprint of the full overlay spec: the per-tile [`Adg`] plus all
    /// [`SystemParams`](crate::SystemParams) fields.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// Absorb the full overlay spec into an existing hasher.
    pub fn fingerprint_into(&self, h: &mut StableHasher) {
        self.adg.fingerprint_into(h);
        h.write_str("sys");
        h.write_u64(u64::from(self.sys.tiles));
        h.write_u64(u64::from(self.sys.l2_banks));
        h.write_u64(u64::from(self.sys.l2_kb));
        h.write_u64(u64::from(self.sys.noc_bw_bytes));
        h.write_u64(u64::from(self.sys.dram_channels));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{DmaNode, InPortNode, OutPortNode, PeNode, SwitchNode};
    use crate::{mesh, MeshSpec, SystemParams};
    use overgen_ir::{DataType, FuCap, Op};

    fn tiny() -> Adg {
        let mut g = Adg::new();
        let dma = g.add_node(AdgNode::Dma(DmaNode { bw_bytes: 16 }));
        let ip = g.add_node(AdgNode::InPort(InPortNode::with_width(8)));
        let pe = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        let op = g.add_node(AdgNode::OutPort(OutPortNode::with_width(8)));
        g.add_edge(dma, ip).unwrap();
        g.add_edge(ip, pe).unwrap();
        g.add_edge(pe, op).unwrap();
        g.add_edge(op, dma).unwrap();
        g
    }

    #[test]
    fn identical_graphs_identical_fingerprints() {
        assert_eq!(tiny().fingerprint(), tiny().fingerprint());
        let m = MeshSpec::general();
        assert_eq!(mesh(&m).fingerprint(), mesh(&m).fingerprint());
    }

    #[test]
    fn clone_preserves_fingerprint() {
        let g = mesh(&MeshSpec::general());
        assert_eq!(g.fingerprint(), g.clone().fingerprint());
    }

    #[test]
    fn edge_insertion_order_is_canonicalized() {
        let mut a = Adg::new();
        let sw = a.add_node(AdgNode::Switch(SwitchNode {}));
        let p1 = a.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        let p2 = a.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        let mut b = a.clone();
        a.add_edge(sw, p1).unwrap();
        a.add_edge(sw, p2).unwrap();
        b.add_edge(sw, p2).unwrap();
        b.add_edge(sw, p1).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn parameter_changes_change_fingerprint() {
        let base = tiny();
        let fp = base.fingerprint();

        let mut wider = base.clone();
        for (id, _) in base.nodes() {
            if let Some(AdgNode::InPort(p)) = wider.node_mut(id) {
                p.width_bytes *= 2;
            }
        }
        assert_ne!(fp, wider.fingerprint());

        let mut deeper = base.clone();
        for (id, _) in base.nodes() {
            if let Some(pe) = deeper.node_mut(id).and_then(AdgNode::as_pe_mut) {
                pe.delay_fifo_depth += 1;
            }
        }
        assert_ne!(fp, deeper.fingerprint());
    }

    #[test]
    fn structural_changes_change_fingerprint() {
        let g = tiny();
        let fp = g.fingerprint();
        let mut extra = g.clone();
        extra.add_node(AdgNode::Switch(SwitchNode {}));
        assert_ne!(fp, extra.fingerprint());

        let mut fewer_edges = g.clone();
        let (src, dst) = g.edges().next().unwrap();
        fewer_edges.remove_edge(src, dst);
        assert_ne!(fp, fewer_edges.fingerprint());
    }

    #[test]
    fn slot_history_is_visible() {
        // Same live structure, different ids: NOT interchangeable for
        // id-addressed schedule repair, so fingerprints must differ.
        let mut a = Adg::new();
        let trash = a.add_node(AdgNode::Switch(SwitchNode {}));
        a.remove_node(trash);
        let mut plain = Adg::new();
        let ia = a.add_node(AdgNode::Switch(SwitchNode {}));
        let ip = plain.add_node(AdgNode::Switch(SwitchNode {}));
        assert_ne!(ia.index(), ip.index());
        assert_ne!(a.fingerprint(), plain.fingerprint());
    }

    #[test]
    fn sys_params_feed_sys_fingerprint() {
        let adg = tiny();
        let s1 = SysAdg::new(adg.clone(), SystemParams::default());
        let mut s2 = SysAdg::new(adg, SystemParams::default());
        assert_eq!(s1.fingerprint(), s1.fingerprint());
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        s2.sys.tiles += 1;
        assert_ne!(s1.fingerprint(), s2.fingerprint());
    }

    #[test]
    fn fingerprint_matches_known_vector() {
        // Pin the byte-level encoding: silently changing it would
        // invalidate any externally persisted cache keys.
        let mut h = StableHasher::new();
        h.write_str("adg");
        assert_eq!(h.finish(), {
            let mut h2 = StableHasher::new();
            h2.write_u64(3);
            h2.write_bytes(b"adg");
            h2.finish()
        });
    }
}
