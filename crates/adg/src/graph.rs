use std::fmt;

use crate::node::{AdgNode, NodeKind};

/// Stable identifier of an ADG node.
///
/// Ids survive deletions of *other* nodes (slot-map semantics), which is the
/// property schedule repair (paper §V-A) relies on: a schedule referencing
/// untouched hardware remains valid across DSE mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index (for compact per-node side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Only meaningful for ids previously
    /// obtained from the same [`Adg`].
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors raised by graph mutations and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdgError {
    /// Referenced node does not exist (or was deleted).
    NoSuchNode(NodeId),
    /// Edge endpoints have kinds that may not connect.
    IllegalEdge {
        /// Source kind.
        src: NodeKind,
        /// Destination kind.
        dst: NodeKind,
    },
    /// The edge already exists.
    DuplicateEdge(NodeId, NodeId),
    /// Validation: node is disconnected or violates a structural rule.
    Invalid(String),
}

impl fmt::Display for AdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdgError::NoSuchNode(id) => write!(f, "no such node {id}"),
            AdgError::IllegalEdge { src, dst } => {
                write!(f, "illegal edge from {src} to {dst}")
            }
            AdgError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            AdgError::Invalid(msg) => write!(f, "invalid ADG: {msg}"),
        }
    }
}

impl std::error::Error for AdgError {}

/// The architecture description graph: a directed graph of [`AdgNode`]s.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Adg {
    pub(crate) slots: Vec<Option<AdgNode>>,
    /// Outgoing adjacency per slot (indices parallel `slots`).
    pub(crate) out_adj: Vec<Vec<NodeId>>,
    /// Incoming adjacency per slot.
    pub(crate) in_adj: Vec<Vec<NodeId>>,
}

impl Adg {
    /// An empty graph.
    pub fn new() -> Self {
        Adg::default()
    }

    /// Add a node, returning its stable id.
    pub fn add_node(&mut self, node: AdgNode) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Some(node));
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Remove a node and all incident edges. Returns the node if it existed.
    pub fn remove_node(&mut self, id: NodeId) -> Option<AdgNode> {
        let node = self.slots.get_mut(id.index())?.take()?;
        let outs = std::mem::take(&mut self.out_adj[id.index()]);
        for dst in outs {
            self.in_adj[dst.index()].retain(|n| *n != id);
        }
        let ins = std::mem::take(&mut self.in_adj[id.index()]);
        for src in ins {
            self.out_adj[src.index()].retain(|n| *n != id);
        }
        Some(node)
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> Option<&AdgNode> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Mutably access a node.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut AdgNode> {
        self.slots.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    /// Kind of a node, if it exists.
    pub fn kind(&self, id: NodeId) -> Option<NodeKind> {
        self.node(id).map(AdgNode::kind)
    }

    /// Whether the node id refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.node(id).is_some()
    }

    /// Add a directed edge.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is missing, the connection is
    /// architecturally illegal ([`NodeKind::may_connect`]), or the edge
    /// already exists.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), AdgError> {
        let sk = self.kind(src).ok_or(AdgError::NoSuchNode(src))?;
        let dk = self.kind(dst).ok_or(AdgError::NoSuchNode(dst))?;
        if !sk.may_connect(dk) {
            return Err(AdgError::IllegalEdge { src: sk, dst: dk });
        }
        if self.out_adj[src.index()].contains(&dst) {
            return Err(AdgError::DuplicateEdge(src, dst));
        }
        self.out_adj[src.index()].push(dst);
        self.in_adj[dst.index()].push(src);
        Ok(())
    }

    /// Remove a directed edge; returns whether it existed.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        let before = self.out_adj[src.index()].len();
        self.out_adj[src.index()].retain(|n| *n != dst);
        if self.out_adj[src.index()].len() != before {
            self.in_adj[dst.index()].retain(|n| *n != src);
            true
        } else {
            false
        }
    }

    /// Whether a directed edge exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_adj
            .get(src.index())
            .is_some_and(|v| v.contains(&dst))
    }

    /// Outgoing neighbours of a node.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        self.out_adj
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Incoming neighbours of a node.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        self.in_adj
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total degree (radix) of a node.
    pub fn radix(&self, id: NodeId) -> usize {
        self.succs(id).len() + self.preds(id).len()
    }

    /// Number of distinct neighbours (a bidirectional link counts once) —
    /// the radix convention of the paper's Table III.
    pub fn undirected_radix(&self, id: NodeId) -> usize {
        let mut set: std::collections::BTreeSet<NodeId> = self.succs(id).iter().copied().collect();
        set.extend(self.preds(id).iter().copied());
        set.len()
    }

    /// Iterator over live `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &AdgNode)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|n| (NodeId(i as u32), n)))
    }

    /// Ids of live nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind() == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of live nodes of a kind.
    pub fn count_kind(&self, kind: NodeKind) -> usize {
        self.nodes().filter(|(_, n)| n.kind() == kind).count()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_adj.iter().map(Vec::len).sum()
    }

    /// Iterator over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |d| (NodeId(i as u32), *d)))
    }

    /// Estimated configuration-bitstream size in bytes for reconfiguring
    /// this fabric (drives overlay reconfiguration time; §VI-B).
    ///
    /// Each fabric node carries a configuration word per routing/function
    /// choice; ports and engines carry a descriptor each.
    pub fn config_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for (id, n) in self.nodes() {
            bytes += match n.kind() {
                NodeKind::Pe => 8 + 2 * self.radix(id) as u64,
                NodeKind::Switch => 2 * self.radix(id) as u64,
                NodeKind::InPort | NodeKind::OutPort => 8,
                _ => 16,
            };
        }
        bytes
    }

    /// Structural validation of the whole graph.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::Invalid`] when a fabric or port node is fully
    /// disconnected, an input port has no feeding engine, or an output port
    /// has no draining engine.
    pub fn validate(&self) -> Result<(), AdgError> {
        for (id, n) in self.nodes() {
            match n.kind() {
                NodeKind::InPort
                    if !self
                        .preds(id)
                        .iter()
                        .any(|p| self.kind(*p).is_some_and(NodeKind::is_engine)) =>
                {
                    return Err(AdgError::Invalid(format!(
                        "input port {id} has no feeding stream engine"
                    )));
                }
                NodeKind::OutPort if self.succs(id).is_empty() => {
                    return Err(AdgError::Invalid(format!(
                        "output port {id} has no draining stream engine"
                    )));
                }
                NodeKind::Pe | NodeKind::Switch if self.radix(id) == 0 => {
                    return Err(AdgError::Invalid(format!(
                        "fabric node {id} is disconnected"
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::*;
    use overgen_ir::{DataType, FuCap, Op};

    fn tiny() -> (Adg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Adg::new();
        let dma = g.add_node(AdgNode::Dma(DmaNode { bw_bytes: 16 }));
        let ip = g.add_node(AdgNode::InPort(InPortNode::with_width(8)));
        let pe = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        let op = g.add_node(AdgNode::OutPort(OutPortNode::with_width(8)));
        g.add_edge(dma, ip).unwrap();
        g.add_edge(ip, pe).unwrap();
        g.add_edge(pe, op).unwrap();
        g.add_edge(op, dma).unwrap();
        (g, dma, ip, pe, op)
    }

    #[test]
    fn build_and_validate() {
        let (g, ..) = tiny();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn illegal_edge_rejected() {
        let (mut g, dma, _, pe, _) = tiny();
        let err = g.add_edge(dma, pe).unwrap_err();
        assert!(matches!(err, AdgError::IllegalEdge { .. }));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut g, dma, ip, ..) = tiny();
        assert!(matches!(
            g.add_edge(dma, ip),
            Err(AdgError::DuplicateEdge(..))
        ));
    }

    #[test]
    fn remove_node_removes_edges_and_keeps_ids_stable() {
        let (mut g, dma, ip, pe, op) = tiny();
        let sw = g.add_node(AdgNode::Switch(SwitchNode {}));
        g.add_edge(ip, sw).unwrap();
        g.add_edge(sw, pe).unwrap();
        assert!(g.remove_node(sw).is_some());
        // surviving ids still resolve
        assert!(g.contains(dma) && g.contains(ip) && g.contains(pe) && g.contains(op));
        assert!(!g.contains(sw));
        // no dangling adjacency
        assert!(!g.succs(ip).contains(&sw));
        assert_eq!(g.edge_count(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn validation_catches_unfed_port() {
        let mut g = Adg::new();
        let ip = g.add_node(AdgNode::InPort(InPortNode::with_width(8)));
        let pe = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        g.add_edge(ip, pe).unwrap();
        assert!(matches!(g.validate(), Err(AdgError::Invalid(_))));
    }

    #[test]
    fn radix_counts_both_directions() {
        let (g, _, ip, ..) = tiny();
        assert_eq!(g.radix(ip), 2);
    }

    #[test]
    fn config_bytes_positive_and_monotone() {
        let (mut g, ..) = tiny();
        let before = g.config_bytes();
        let sw = g.add_node(AdgNode::Switch(SwitchNode {}));
        let pe2 = g.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Mul,
            DataType::I64,
        )])));
        g.add_edge(sw, pe2).unwrap();
        assert!(g.config_bytes() > before);
    }

    #[test]
    fn remove_edge() {
        let (mut g, dma, ip, ..) = tiny();
        assert!(g.remove_edge(dma, ip));
        assert!(!g.remove_edge(dma, ip));
        assert!(!g.has_edge(dma, ip));
    }
}
