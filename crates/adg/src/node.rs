use std::collections::BTreeSet;
use std::fmt;

use overgen_ir::{DataType, FuCap, Op};

/// A processing element: a dedicated-instruction functional unit set with
/// per-operand delay FIFOs (paper §VI, limitations §VI-E note the dedicated
/// execution model).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeNode {
    /// Functional-unit capabilities this PE supports.
    pub caps: BTreeSet<FuCap>,
    /// Depth of the per-operand delay FIFOs used to balance pipeline paths
    /// (edge-delay preservation grows this, §V-B).
    pub delay_fifo_depth: u8,
}

impl PeNode {
    /// A PE with the given capabilities and the default delay-FIFO depth.
    pub fn with_caps(caps: impl IntoIterator<Item = FuCap>) -> Self {
        PeNode {
            caps: caps.into_iter().collect(),
            delay_fifo_depth: 2,
        }
    }

    /// Whether the PE can execute `op` at `dtype`.
    pub fn supports(&self, op: Op, dtype: DataType) -> bool {
        self.caps.contains(&FuCap::new(op, dtype))
    }

    /// Widest datatype among the capabilities (drives FU sizing).
    pub fn max_bits(&self) -> u32 {
        self.caps.iter().map(|c| c.dtype.bits()).max().unwrap_or(64)
    }

    /// Whether any capability is floating point (maps to DSP blocks).
    pub fn has_float(&self) -> bool {
        self.caps.iter().any(|c| c.dtype.is_float())
    }
}

/// An operand-routing switch. Its radix (total degree) is a property of the
/// graph, not the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchNode {}

/// A synchronization port feeding data *into* the compute fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InPortNode {
    /// Port width in bytes: the maximum ingest rate per cycle.
    pub width_bytes: u16,
    /// Supports automatic padding of non-vector-width streams (§III-B).
    pub padding: bool,
    /// Carries stream-state metadata (first/last of a loop dimension),
    /// needed for variable trip-count streams.
    pub stream_state: bool,
}

impl InPortNode {
    /// A port of the given width with both pattern features enabled.
    pub fn with_width(width_bytes: u16) -> Self {
        InPortNode {
            width_bytes,
            padding: true,
            stream_state: true,
        }
    }
}

/// A synchronization port draining data *out of* the compute fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OutPortNode {
    /// Port width in bytes: the maximum egest rate per cycle.
    pub width_bytes: u16,
}

impl OutPortNode {
    /// A port of the given width.
    pub fn with_width(width_bytes: u16) -> Self {
        OutPortNode { width_bytes }
    }
}

/// DMA stream engine: accesses the shared L2 (and through it DRAM) over the
/// NoC (§III-B, §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DmaNode {
    /// Bytes per cycle the engine can move.
    pub bw_bytes: u16,
}

/// Scratchpad stream engine: a private, banked on-tile memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpadNode {
    /// Capacity in KiB (double-buffering space included by the compiler).
    pub capacity_kb: u32,
    /// Bytes per cycle for reads (writes modelled symmetric).
    pub bw_bytes: u16,
    /// Whether parallel indirect access is supported (needs reordering
    /// hardware; §III-B).
    pub indirect: bool,
}

/// Generate engine: produces affine value sequences without memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GenNode {
    /// Bytes per cycle of generated values.
    pub bw_bytes: u16,
}

/// Recurrence engine: forwards loop-carried values from output ports back
/// to input ports, avoiding memory round trips (§IV-B recurrent reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecNode {
    /// Bytes per cycle forwarded.
    pub bw_bytes: u16,
}

/// Register engine: drains scalars from an output port to the control core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegNode {
    /// Bytes per cycle drained.
    pub bw_bytes: u16,
}

/// Any node of the architecture description graph.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AdgNode {
    /// Processing element.
    Pe(PeNode),
    /// Routing switch.
    Switch(SwitchNode),
    /// Fabric input port.
    InPort(InPortNode),
    /// Fabric output port.
    OutPort(OutPortNode),
    /// DMA stream engine (shared L2 / DRAM).
    Dma(DmaNode),
    /// Scratchpad stream engine.
    Spad(SpadNode),
    /// Affine value generate engine.
    Gen(GenNode),
    /// Recurrence stream engine.
    Rec(RecNode),
    /// Register (scalar collect) engine.
    Reg(RegNode),
}

impl AdgNode {
    /// Discriminant of the node.
    pub fn kind(&self) -> NodeKind {
        match self {
            AdgNode::Pe(_) => NodeKind::Pe,
            AdgNode::Switch(_) => NodeKind::Switch,
            AdgNode::InPort(_) => NodeKind::InPort,
            AdgNode::OutPort(_) => NodeKind::OutPort,
            AdgNode::Dma(_) => NodeKind::Dma,
            AdgNode::Spad(_) => NodeKind::Spad,
            AdgNode::Gen(_) => NodeKind::Gen,
            AdgNode::Rec(_) => NodeKind::Rec,
            AdgNode::Reg(_) => NodeKind::Reg,
        }
    }

    /// The PE payload, if this is a PE.
    pub fn as_pe(&self) -> Option<&PeNode> {
        match self {
            AdgNode::Pe(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable PE payload.
    pub fn as_pe_mut(&mut self) -> Option<&mut PeNode> {
        match self {
            AdgNode::Pe(p) => Some(p),
            _ => None,
        }
    }

    /// The scratchpad payload, if this is a scratchpad.
    pub fn as_spad(&self) -> Option<&SpadNode> {
        match self {
            AdgNode::Spad(s) => Some(s),
            _ => None,
        }
    }

    /// Stream-engine bandwidth, if this node is a stream engine.
    pub fn engine_bw(&self) -> Option<u16> {
        match self {
            AdgNode::Dma(d) => Some(d.bw_bytes),
            AdgNode::Spad(s) => Some(s.bw_bytes),
            AdgNode::Gen(g) => Some(g.bw_bytes),
            AdgNode::Rec(r) => Some(r.bw_bytes),
            AdgNode::Reg(r) => Some(r.bw_bytes),
            _ => None,
        }
    }
}

/// Discriminant of [`AdgNode`] without payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// Processing element.
    Pe,
    /// Routing switch.
    Switch,
    /// Fabric input port.
    InPort,
    /// Fabric output port.
    OutPort,
    /// DMA engine.
    Dma,
    /// Scratchpad engine.
    Spad,
    /// Generate engine.
    Gen,
    /// Recurrence engine.
    Rec,
    /// Register engine.
    Reg,
}

impl NodeKind {
    /// Whether this kind is a memory/stream engine.
    pub fn is_engine(self) -> bool {
        matches!(
            self,
            NodeKind::Dma | NodeKind::Spad | NodeKind::Gen | NodeKind::Rec | NodeKind::Reg
        )
    }

    /// Whether this kind lives inside the compute fabric.
    pub fn is_fabric(self) -> bool {
        matches!(self, NodeKind::Pe | NodeKind::Switch)
    }

    /// Whether a directed edge `self -> dst` is architecturally legal.
    ///
    /// Engines feed input ports; output ports feed engines; input ports feed
    /// the fabric (or short-circuit to output ports for pure data-movement
    /// DFGs); fabric nodes feed fabric nodes and output ports. Direct
    /// PE-to-PE edges are legal — node collapsing (§V-B) creates them.
    pub fn may_connect(self, dst: NodeKind) -> bool {
        use NodeKind::*;
        match self {
            Dma | Spad | Gen | Rec => matches!(dst, InPort),
            Reg => false, // register engine only consumes
            InPort => matches!(dst, Switch | Pe | OutPort),
            Switch => matches!(dst, Switch | Pe | OutPort),
            Pe => matches!(dst, Switch | Pe | OutPort),
            OutPort => matches!(dst, Dma | Spad | Rec | Reg),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Pe => "pe",
            NodeKind::Switch => "switch",
            NodeKind::InPort => "in_port",
            NodeKind::OutPort => "out_port",
            NodeKind::Dma => "dma",
            NodeKind::Spad => "spad",
            NodeKind::Gen => "gen",
            NodeKind::Rec => "rec",
            NodeKind::Reg => "reg",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_supports() {
        let pe = PeNode::with_caps([
            FuCap::new(Op::Add, DataType::I64),
            FuCap::new(Op::Mul, DataType::F32),
        ]);
        assert!(pe.supports(Op::Add, DataType::I64));
        assert!(!pe.supports(Op::Add, DataType::I32));
        assert!(pe.has_float());
        assert_eq!(pe.max_bits(), 64);
    }

    #[test]
    fn edge_legality() {
        use NodeKind::*;
        assert!(Dma.may_connect(InPort));
        assert!(!Dma.may_connect(Pe));
        assert!(InPort.may_connect(Pe));
        assert!(InPort.may_connect(OutPort));
        assert!(Pe.may_connect(Pe)); // node collapsing result
        assert!(OutPort.may_connect(Rec));
        assert!(!OutPort.may_connect(Gen)); // gen only produces
        assert!(!Reg.may_connect(InPort)); // reg only consumes
        assert!(!Pe.may_connect(InPort));
    }

    #[test]
    fn kind_classification() {
        assert!(NodeKind::Spad.is_engine());
        assert!(!NodeKind::Pe.is_engine());
        assert!(NodeKind::Switch.is_fabric());
        assert!(!NodeKind::InPort.is_fabric());
    }

    #[test]
    fn engine_bw_accessor() {
        assert_eq!(AdgNode::Dma(DmaNode { bw_bytes: 32 }).engine_bw(), Some(32));
        assert_eq!(AdgNode::Switch(SwitchNode {}).engine_bw(), None);
    }
}
