//! The AutoDSE-style bottleneck-guided explorer.
//!
//! AutoDSE's key idea (Sohrabizadeh et al.): instead of searching the full
//! pragma cross-product, identify the current bottleneck and push only the
//! pragma that relieves it, re-evaluating with the Merlin/HLS toolchain at
//! every step. Each candidate evaluation costs real tool time, which is
//! what Figure 15 accounts.

use overgen_ir::Kernel;
use overgen_model::resources::{FpgaDevice, XCVU9P};
use overgen_model::TimeModel;

use crate::design::{evaluate, HlsDesign, HlsPragmas};

/// Explorer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoDseConfig {
    /// Device budget.
    pub device: FpgaDevice,
    /// Fraction of the device one kernel may use.
    pub budget_frac: f64,
    /// Maximum candidates evaluated before stopping.
    pub max_candidates: usize,
    /// Minimum relative improvement to keep pushing a direction.
    pub min_gain: f64,
    /// Maximum pragma factor Merlin explores (coarse-grained parallel
    /// factors beyond ~8-16 rarely close timing or route on the VCU118).
    pub max_factor: u32,
    /// DRAM channels available.
    pub dram_channels: u32,
    /// Time model for candidate-evaluation accounting.
    pub time: TimeModel,
}

impl Default for AutoDseConfig {
    fn default() -> Self {
        AutoDseConfig {
            device: XCVU9P,
            budget_frac: 0.75,
            max_candidates: 24,
            min_gain: 0.03,
            max_factor: 8,
            dram_channels: 1,
            time: TimeModel::default(),
        }
    }
}

/// Result of one AutoDSE run on one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoDseResult {
    /// Best design found.
    pub best: HlsDesign,
    /// Candidates evaluated.
    pub candidates: usize,
    /// Simulated DSE hours (Merlin candidate evaluations).
    pub dse_hours: f64,
    /// Simulated synthesis + P&R hours for the final design.
    pub synth_hours: f64,
    /// Whether the pre-built result database short-circuited exploration.
    pub from_database: bool,
}

impl AutoDseResult {
    /// Total hours: exploration plus final implementation (Figure 15 bars).
    pub fn total_hours(&self) -> f64 {
        self.dse_hours + self.synth_hours
    }
}

/// Kernels whose best configuration is in AutoDSE's pre-built database
/// (the paper names `gemm`).
const DATABASE: [(&str, HlsPragmas); 1] = [(
    "gemm",
    HlsPragmas {
        unroll: 16,
        partition: 16,
    },
)];

/// Run the bottleneck-guided exploration for one kernel.
pub fn explore(kernel: &Kernel, cfg: &AutoDseConfig) -> AutoDseResult {
    let time = &cfg.time;

    if let Some((_, pragmas)) = DATABASE.iter().find(|(n, _)| *n == kernel.name()) {
        let best = evaluate(kernel, pragmas, &cfg.device, cfg.dram_channels);
        let synth_hours = time.hls_flow_hours(&best.resources, &cfg.device);
        return AutoDseResult {
            best,
            candidates: 1,
            dse_hours: time.hls_candidate_hours,
            synth_hours,
            from_database: true,
        };
    }

    let mut pragmas = HlsPragmas::default();
    let mut best = evaluate(kernel, &pragmas, &cfg.device, cfg.dram_channels);
    let mut candidates = 1usize;

    while candidates < cfg.max_candidates {
        // Identify the bottleneck: would doubling unroll or partition help
        // more? (AutoDSE evaluates the candidate the bottleneck analysis
        // proposes; we charge one candidate per evaluation.)
        let try_unroll = HlsPragmas {
            unroll: pragmas.unroll * 2,
            ..pragmas
        };
        let try_partition = HlsPragmas {
            partition: pragmas.partition * 2,
            ..pragmas
        };
        // Compute and memory parallelism are coupled (unroll needs ports);
        // the bottleneck analysis also proposes relieving both at once.
        let try_both = HlsPragmas {
            unroll: pragmas.unroll * 2,
            partition: pragmas.partition * 2,
        };
        let du = evaluate(kernel, &try_unroll, &cfg.device, cfg.dram_channels);
        let dp = evaluate(kernel, &try_partition, &cfg.device, cfg.dram_channels);
        let db = evaluate(kernel, &try_both, &cfg.device, cfg.dram_channels);
        candidates += 3;

        let mut options = [(try_unroll, du), (try_partition, dp), (try_both, db)];
        options.sort_by(|a, b| a.1.seconds.total_cmp(&b.1.seconds));
        let (cand_pragmas, cand) = options.into_iter().next().expect("non-empty");
        let fits = cfg.device.fits(&cand.resources, cfg.budget_frac);
        let within_caps =
            cand_pragmas.unroll <= cfg.max_factor && cand_pragmas.partition <= cfg.max_factor;
        let gain = (best.seconds - cand.seconds) / best.seconds;
        if !fits || !within_caps || gain < cfg.min_gain {
            break;
        }
        pragmas = cand_pragmas;
        best = cand;
    }

    let synth_hours = time.hls_flow_hours(&best.resources, &cfg.device);
    AutoDseResult {
        best,
        candidates,
        dse_hours: candidates as f64 * time.hls_candidate_hours,
        synth_hours,
        from_database: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn vecadd() -> Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 65536)
            .array_input("b", 65536)
            .array_output("c", 65536)
            .loop_const("i", 65536)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn gemm_like(name: &str) -> Kernel {
        KernelBuilder::new(name, Suite::MachSuite, DataType::I64)
            .array_input("a", 64 * 64)
            .array_input("b", 64 * 64)
            .array_output("c", 64 * 64)
            .loop_const("i", 64)
            .loop_const("j", 64)
            .loop_const("k", 64)
            .accum(
                "c",
                expr::idx_scaled("i", 64) + expr::idx("j"),
                expr::load("a", expr::idx_scaled("i", 64) + expr::idx("k"))
                    * expr::load("b", expr::idx_scaled("k", 64) + expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn explorer_improves_over_baseline() {
        let r = explore(&vecadd(), &AutoDseConfig::default());
        let base = evaluate(&vecadd(), &HlsPragmas::default(), &XCVU9P, 1);
        assert!(r.best.seconds < base.seconds);
        assert!(r.candidates > 1);
        assert!(r.total_hours() > r.synth_hours);
    }

    #[test]
    fn database_shortcuts_gemm() {
        let r = explore(&gemm_like("gemm"), &AutoDseConfig::default());
        assert!(r.from_database);
        assert_eq!(r.candidates, 1);
        // the same structure without the database name explores longer
        let r2 = explore(&gemm_like("notgemm"), &AutoDseConfig::default());
        assert!(!r2.from_database);
        assert!(r2.dse_hours > r.dse_hours);
    }

    #[test]
    fn respects_resource_budget() {
        // vecadd's on-chip buffers already cost ~16% of BRAM at unroll 1,
        // so a 30% budget leaves little headroom for pragma growth.
        let tight = AutoDseConfig {
            budget_frac: 0.30,
            ..Default::default()
        };
        let loose = AutoDseConfig::default();
        let rt = explore(&vecadd(), &tight);
        let rl = explore(&vecadd(), &loose);
        assert!(tight.device.fits(&rt.best.resources, 0.30));
        assert!(rl.best.resources.lut >= rt.best.resources.lut);
    }

    #[test]
    fn dse_hours_scale_with_candidates() {
        let r = explore(&vecadd(), &AutoDseConfig::default());
        let expected = r.candidates as f64 * TimeModel::default().hls_candidate_hours;
        assert!((r.dse_hours - expected).abs() < 1e-9);
    }

    #[test]
    fn per_kernel_hours_in_paper_magnitude() {
        // Figure 15: AutoDSE totals ~10 h per kernel.
        let r = explore(&gemm_like("mm"), &AutoDseConfig::default());
        assert!(
            r.total_hours() > 2.0 && r.total_hours() < 25.0,
            "hours {}",
            r.total_hours()
        );
    }
}
