//! The AutoDSE / HLS baseline of the OverGen evaluation.
//!
//! The paper compares against AutoDSE (Merlin Compiler + Vitis HLS), a
//! bottleneck-guided explorer over HLS pragmas. Neither tool exists in a
//! pure-Rust offline environment, so this crate provides an analytic
//! substitute that reproduces the *behaviours* the paper measures:
//!
//! - a **pipeline model** ([`design`]): cycles from loop trip counts,
//!   initiation interval, pipeline depth, and an AXI/DRAM bandwidth bound;
//! - an **initiation-interval analysis** ([`ii`]) encoding the two HLS
//!   pathologies of Table IV — variable loop trip counts and small-stride
//!   ("inefficient strided") access — and their disappearance under manual
//!   kernel tuning;
//! - an **AutoDSE-style explorer** ([`explorer`]): repeatedly identify the
//!   bottleneck (compute vs. memory), double the corresponding pragma
//!   (unroll / array partition), re-evaluate, and account simulated
//!   Merlin/Vivado candidate-evaluation time — plus the pre-built result
//!   database shortcut the paper mentions for `gemm`.
//!
//! # Example
//!
//! ```
//! use overgen_hls::{explore, AutoDseConfig};
//! use overgen_ir::{expr, DataType, KernelBuilder, Suite};
//!
//! let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
//!     .array_input("a", 4096).array_input("b", 4096).array_output("c", 4096)
//!     .loop_const("i", 4096)
//!     .assign("c", expr::idx("i"),
//!             expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")))
//!     .build().unwrap();
//! let result = explore(&k, &AutoDseConfig::default());
//! assert!(result.best.cycles > 0.0);
//! assert!(result.dse_hours > 0.0);
//! ```

pub mod design;
pub mod explorer;
pub mod ii;

pub use design::{evaluate, HlsDesign, HlsPragmas};
pub use explorer::{explore, AutoDseConfig, AutoDseResult};
pub use ii::initiation_interval;
