//! Initiation-interval analysis (paper Table IV).
//!
//! Vitis HLS achieves II = 1 on clean, fixed-trip, unit-stride pipelines.
//! Two code patterns break that (paper Q2):
//!
//! - **variable loop trip counts** (and the imperfect/guarded nests that
//!   come with them): the pipeline cannot be flattened, so each dynamic
//!   inner-loop start pays the scheduling recurrence;
//! - **inefficient strided access**: small strides on the innermost
//!   dimension defeat BRAM port packing and DRAM coalescing.
//!
//! Kernel tuning (fixed maximum trip counts with guards; strength-reduced
//! strides) restores II = 1 or close to it.
//!
//! The structural model below derives II from kernel traits; for the seven
//! kernels the paper measured (Table IV) the exact Vivado values are pinned
//! so the Q2 experiment reproduces the table verbatim.

use overgen_ir::Kernel;

/// Table IV: measured (untuned, tuned) initiation intervals.
const TABLE_IV: [(&str, u32, u32); 7] = [
    ("cholesky", 10, 5),
    ("crs", 4, 2),
    ("fft", 2, 1),
    ("bgr2grey", 9, 1),
    ("blur", 6, 1),
    ("channel-ext", 8, 1),
    ("stencil-3d", 6, 1),
];

/// Initiation interval the HLS toolchain achieves for a kernel.
///
/// Tuned kernels (see [`overgen_ir::Tuning`]) use the post-tuning column.
pub fn initiation_interval(kernel: &Kernel) -> u32 {
    let tuned = kernel.tuning().tuned;
    if let Some(&(_, untuned, tuned_ii)) = TABLE_IV.iter().find(|(n, _, _)| *n == kernel.name()) {
        return if tuned { tuned_ii } else { untuned };
    }
    structural_ii(kernel, tuned)
}

/// Structural fallback for kernels without pinned measurements.
fn structural_ii(kernel: &Kernel, tuned: bool) -> u32 {
    if tuned {
        return 1;
    }
    let t = kernel.traits();
    let mut ii = 1u32;
    if t.variable_trip_count {
        // dynamic inner-loop restarts; worse when the body is guarded
        ii = ii.max(if t.guarded { 6 } else { 4 });
    }
    if t.strided_innermost {
        // defeated port packing: one element per (stride) beats
        ii = ii.max(6);
    }
    if t.indirect {
        // gather: dependence distance through the index load
        ii = ii.max(3);
    }
    ii
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn named(name: &str, tuned: bool) -> Kernel {
        let mut b = KernelBuilder::new(name, Suite::Dsp, DataType::F64)
            .array_input("a", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign("c", expr::idx("i"), expr::load("a", expr::idx("i")));
        if tuned {
            b = b.tuned("test");
        }
        b.build().unwrap()
    }

    #[test]
    fn table_iv_values_pinned() {
        assert_eq!(initiation_interval(&named("cholesky", false)), 10);
        assert_eq!(initiation_interval(&named("cholesky", true)), 5);
        assert_eq!(initiation_interval(&named("blur", false)), 6);
        assert_eq!(initiation_interval(&named("blur", true)), 1);
        assert_eq!(initiation_interval(&named("stencil-3d", false)), 6);
    }

    #[test]
    fn clean_kernel_gets_ii_1() {
        assert_eq!(initiation_interval(&named("vecadd", false)), 1);
    }

    #[test]
    fn structural_penalties() {
        let var = KernelBuilder::new("varloop", Suite::Dsp, DataType::F64)
            .array_input("a", 64)
            .array_output("c", 64)
            .loop_const("i", 8)
            .loop_variable("k", 8, 4.0)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i") + expr::idx("k")),
            )
            .build()
            .unwrap();
        assert!(initiation_interval(&var) >= 4);

        let strided = KernelBuilder::new("strided", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 256)
            .loop_const("i", 256)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx_scaled("i", 4)),
            )
            .build()
            .unwrap();
        assert_eq!(initiation_interval(&strided), 6);
    }

    #[test]
    fn tuning_restores_ii_1_structurally() {
        let strided = KernelBuilder::new("strided", Suite::Vision, DataType::I16)
            .array_input("a", 1024)
            .array_output("c", 256)
            .loop_const("i", 256)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx_scaled("i", 4)),
            )
            .tuned("strength reduction")
            .build()
            .unwrap();
        assert_eq!(initiation_interval(&strided), 1);
    }
}
