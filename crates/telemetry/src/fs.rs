//! Atomic result-file writes: tmp + rename, so an interrupted experiment
//! never leaves a half-written file behind.

use std::io::Write;
use std::path::Path;

/// Write `contents` to `path` atomically: the bytes land in a temporary
/// sibling file which is then renamed over the destination. Readers see
/// either the old complete file or the new complete file, never a torn one.
///
/// # Errors
///
/// Propagates filesystem errors (the temporary file is cleaned up).
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!(
        "{}.tmp{}",
        path.extension().and_then(|e| e.to_str()).unwrap_or(""),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("overgen-telemetry-fs-test");
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        // no stray temp files
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(stray.is_empty(), "left temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
