//! The in-tree PRNG: xoshiro256++ seeded through SplitMix64.
//!
//! Replaces the `rand` crate so default builds need no registry access.
//! Streams are *not* bit-compatible with `rand::StdRng`; call sites keep
//! their `u64` seeds and stay deterministic for a given seed, which is the
//! property the DSE, model training, and trace tests rely on.

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single `u64` seed into state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator from a single `u64` (same call shape as
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..14u32)`,
    /// `rng.gen_range(1..=4usize)`, or `rng.gen_range(0.0..4.0)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased-enough uniform integer in `[0, span)` via the widening
    /// multiply trick (`span` must be non-zero).
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// The raw xoshiro256++ state, for checkpointing. Feeding the value to
    /// [`Rng::from_state`] reproduces the stream exactly from this point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured with [`Rng::state`].
    ///
    /// An all-zero state is a fixed point of xoshiro256++ (the stream would
    /// be constant zero), so it is re-seeded defensively; checkpoints never
    /// contain one because `seed_from_u64` cannot produce it.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Rng::seed_from_u64(0);
        }
        Rng { s }
    }

    /// Derive an independent child generator, advancing `self` by one draw.
    ///
    /// The child's state is re-expanded through SplitMix64 from one output
    /// of the parent, so parent and child streams do not overlap in
    /// practice and the derivation is fully deterministic: the n-th split
    /// of a seeded generator is the same on every run. Multi-chain DSE uses
    /// this to give each annealing chain its own stream from one user seed.
    pub fn split(&mut self) -> Rng {
        let mut sm = self.next_u64();
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let neg = rng.gen_range(-8i64..-2);
            assert!((-8..-2).contains(&neg));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // mean of U[0,1) over 10k draws
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((hits as f64 / 10_000.0 - 0.7).abs() < 0.02, "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn split_is_deterministic_and_divergent() {
        let mut a = Rng::seed_from_u64(17);
        let mut b = Rng::seed_from_u64(17);
        let mut ca = a.split();
        let mut cb = b.split();
        // Same parent seed => same child stream, and the parents stay in
        // lock-step after the split.
        for _ in 0..32 {
            assert_eq!(ca.next_u64(), cb.next_u64());
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Child and parent streams differ, as do successive children.
        let mut p = Rng::seed_from_u64(17);
        let mut c1 = p.split();
        let mut c2 = p.split();
        let draws = |r: &mut Rng| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>();
        let (d1, d2, dp) = (draws(&mut c1), draws(&mut c2), draws(&mut p));
        assert_ne!(d1, d2);
        assert_ne!(d1, dp);
    }
}
