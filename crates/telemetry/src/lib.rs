//! # overgen-telemetry
//!
//! Zero-dependency observability for the OverGen suite: hierarchical spans,
//! a registry of atomic metrics, and structured events serialized as JSONL.
//! `std`-only — no crates.io dependencies — so the tier-1 build stays green
//! offline.
//!
//! ## Event schema
//!
//! Every line in a trace is one JSON object with three fixed keys followed
//! by event-specific fields, in insertion order:
//!
//! ```json
//! {"seq":12,"t":34,"type":"dse.accept","iter":7,"delta":-0.25}
//! ```
//!
//! - `seq` — collector-global sequence number (dense, starts at 0).
//! - `t` — timestamp: microseconds since collector creation in
//!   [`ClockMode::Wall`], or a logical event counter in
//!   [`ClockMode::Deterministic`] (traces byte-stable per seed).
//! - `type` — dotted event kind, e.g. `dse.accept`, `sched.place`,
//!   `sim.truncated`, `span`, `metrics`.
//!
//! Span close events add `name`, `depth`, `start`, and `dur`.
//!
//! ## Usage
//!
//! ```
//! use overgen_telemetry::{event, span, Collector, ClockMode, RingSink};
//!
//! let ring = RingSink::new(1024);
//! let collector = Collector::new(ring.clone(), ClockMode::Deterministic);
//! let _install = overgen_telemetry::install(collector.clone());
//!
//! {
//!     let _span = span!("dse.iteration", iter = 3u64);
//!     event!("dse.accept", delta = -0.25f64);
//!     collector.registry().counter("dse.accepted").inc();
//! }
//! collector.snapshot_metrics();
//! assert_eq!(ring.len(), 3); // accept event, span close, metrics snapshot
//! ```
//!
//! When no collector is installed, `span!`/`event!` are cheap no-ops, so
//! library crates instrument unconditionally and binaries opt in.

pub mod capture;
pub mod clock;
pub mod fs;
pub mod json;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod rng;
pub mod sink;
mod span;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use capture::{capture, capture_isolated, replay, CapturedTrace, PortableOp};
pub use clock::{Clock, ClockMode};
pub use metrics::{Counter, Gauge, Histogram, MetricKind, MetricSnapshot, Registry};
pub use profile::{
    current_profiler, install_profiler, CacheStats, Phase, PhaseTimer, ProfileSnapshot, Profiler,
};
pub use rng::Rng;
pub use sink::{FileSink, NullSink, RingSink, Sink};
pub use span::SpanGuard;

use capture::CaptureOp;

use json::Obj;

/// A typed event-field value; the macros build these via `From`.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on write).
    Str(String),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        })*
    };
}

impl_field_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

fn push_fields(mut obj: Obj, fields: &[(&str, FieldValue)]) -> Obj {
    for (k, v) in fields {
        obj = match v {
            FieldValue::U64(n) => obj.u64(k, *n),
            FieldValue::I64(n) => obj.i64(k, *n),
            FieldValue::F64(n) => obj.f64(k, *n),
            FieldValue::Bool(b) => obj.bool(k, *b),
            FieldValue::Str(s) => obj.str(k, s),
        };
    }
    obj
}

/// Where a collector's events go: straight to a [`Sink`] (stamped with
/// `seq`/`t` at emit time) or into an in-memory capture buffer to be
/// re-stamped later by [`replay`].
enum Backend {
    Sink(Arc<dyn Sink>),
    Capture(Mutex<Vec<CaptureOp>>),
}

/// The telemetry hub: a metrics [`Registry`], a [`Sink`] for JSONL events,
/// a [`Clock`], and a sequence counter. Shared via `Arc`; installed
/// per-thread with [`install`].
pub struct Collector {
    registry: Registry,
    backend: Backend,
    clock: Clock,
    seq: AtomicU64,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("clock", &self.clock)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Create a collector writing to `sink` with the given clock mode.
    pub fn new(sink: Arc<dyn Sink>, mode: ClockMode) -> Arc<Self> {
        Arc::new(Collector {
            registry: Registry::new(),
            backend: Backend::Sink(sink),
            clock: Clock::new(mode),
            seq: AtomicU64::new(0),
        })
    }

    /// A capture collector recording ops instead of stamping lines; shares
    /// `registry` with its parent so metric updates land directly.
    pub(crate) fn capture(registry: Registry) -> Arc<Self> {
        Arc::new(Collector {
            registry,
            backend: Backend::Capture(Mutex::new(Vec::new())),
            clock: Clock::new(ClockMode::Deterministic),
            seq: AtomicU64::new(0),
        })
    }

    /// Drain the capture buffer (empty for sink-backed collectors).
    pub(crate) fn take_ops(&self) -> Vec<CaptureOp> {
        match &self.backend {
            Backend::Sink(_) => Vec::new(),
            Backend::Capture(ops) => std::mem::take(&mut ops.lock().unwrap()),
        }
    }

    /// Convenience: a deterministic collector plus its in-memory ring, for
    /// tests and byte-stable traces.
    pub fn ring(cap: usize) -> (Arc<Self>, Arc<RingSink>) {
        let ring = RingSink::new(cap);
        (Collector::new(ring.clone(), ClockMode::Deterministic), ring)
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Current timestamp from this collector's clock.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// The clock mode this collector runs in.
    pub fn clock_mode(&self) -> ClockMode {
        self.clock.mode()
    }

    /// The trace cursor: the `seq` the next emitted line will carry and the
    /// next deterministic clock tick. Reading it consumes nothing, so a
    /// checkpoint can record exactly where its trace prefix ends.
    pub fn cursor(&self) -> (u64, u64) {
        (self.seq.load(Ordering::Relaxed), self.clock.peek())
    }

    /// Jump this collector's sequence counter and deterministic clock to a
    /// cursor captured with [`Collector::cursor`], so a resumed run's lines
    /// continue the original trace's `seq`/`t` stream byte-identically.
    /// Wall clocks cannot be restored; only the sequence moves there.
    pub fn restore_cursor(&self, seq: u64, tick: u64) {
        self.seq.store(seq, Ordering::Relaxed);
        self.clock.restore(tick);
    }

    /// Emit one event line: `{"seq":..,"t":..,"type":kind, ...fields}`.
    pub fn emit(&self, kind: &str, fields: &[(&str, FieldValue)]) {
        match &self.backend {
            Backend::Sink(sink) => {
                let obj = self.header(kind);
                sink.write_line(&push_fields(obj, fields).finish());
            }
            Backend::Capture(ops) => ops.lock().unwrap().push(CaptureOp::Event {
                kind: kind.to_string(),
                fields: capture::own_fields(fields),
            }),
        }
    }

    /// Emit a `metrics` event embedding the full registry snapshot.
    pub fn snapshot_metrics(&self) {
        match &self.backend {
            Backend::Sink(sink) => {
                let line = self
                    .header("metrics")
                    .raw("metrics", &self.registry.snapshot_json())
                    .finish();
                sink.write_line(&line);
            }
            Backend::Capture(ops) => ops.lock().unwrap().push(CaptureOp::Metrics),
        }
    }

    /// Flush the underlying sink (no-op while capturing).
    pub fn flush(&self) {
        if let Backend::Sink(sink) = &self.backend {
            sink.flush();
        }
    }

    fn header(&self, kind: &str) -> Obj {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        Obj::new()
            .u64("seq", seq)
            .u64("t", self.now())
            .str("type", kind)
    }

    pub(crate) fn emit_span(
        &self,
        name: &str,
        depth: u64,
        start: u64,
        end: u64,
        fields: &[(&str, FieldValue)],
    ) {
        let Backend::Sink(sink) = &self.backend else {
            debug_assert!(false, "emit_span on a capture collector");
            return;
        };
        let obj = self
            .header("span")
            .str("name", name)
            .u64("depth", depth)
            .u64("start", start)
            .u64("dur", end.saturating_sub(start));
        sink.write_line(&push_fields(obj, fields).finish());
    }

    /// Span-enter hook: for a sink backend, returns the start timestamp
    /// (consuming one clock tick); for capture, records the open and
    /// returns the matching token.
    pub(crate) fn span_open(&self) -> u64 {
        match &self.backend {
            Backend::Sink(_) => self.now(),
            Backend::Capture(ops) => {
                let token = capture::next_token();
                ops.lock().unwrap().push(CaptureOp::SpanOpen { token });
                token
            }
        }
    }

    /// Span-exit hook; `handle` is whatever [`Collector::span_open`]
    /// returned for this span.
    pub(crate) fn span_close(
        &self,
        handle: u64,
        name: &str,
        depth: u64,
        fields: &[(&str, FieldValue)],
    ) {
        match &self.backend {
            Backend::Sink(_) => {
                let end = self.now();
                self.emit_span(name, depth, handle, end, fields);
            }
            Backend::Capture(ops) => ops.lock().unwrap().push(CaptureOp::SpanClose {
                token: handle,
                name: name.to_string(),
                rel_depth: depth,
                fields: capture::own_fields(fields),
            }),
        }
    }

    /// Replay recorded ops into this collector, rebasing span depths onto
    /// `base_depth`. Sink backends re-stamp `seq`/`t`; capture backends
    /// splice the ops into their own buffer (nested capture).
    pub(crate) fn replay_ops(&self, ops: &[CaptureOp], base_depth: u64) {
        match &self.backend {
            Backend::Sink(_) => capture::replay_into_sink(self, ops, base_depth),
            Backend::Capture(dst) => {
                let mut dst = dst.lock().unwrap();
                dst.extend(ops.iter().map(|op| match op {
                    CaptureOp::SpanClose {
                        token,
                        name,
                        rel_depth,
                        fields,
                    } => CaptureOp::SpanClose {
                        token: *token,
                        name: name.clone(),
                        rel_depth: base_depth + rel_depth,
                        fields: fields.clone(),
                    },
                    other => other.clone(),
                }));
            }
        }
    }
}

thread_local! {
    static INSTALLED: RefCell<Vec<Arc<Collector>>> = const { RefCell::new(Vec::new()) };
}

/// Install `collector` as this thread's current collector until the returned
/// guard drops. Installs nest (tests can stack them); the innermost wins.
#[must_use = "the collector is uninstalled when this guard drops"]
pub fn install(collector: Arc<Collector>) -> InstallGuard {
    INSTALLED.with(|s| s.borrow_mut().push(collector));
    InstallGuard { _priv: () }
}

/// Guard returned by [`install`]; pops the collector on drop.
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The innermost installed collector on this thread, if any.
pub fn current() -> Option<Arc<Collector>> {
    INSTALLED.with(|s| s.borrow().last().cloned())
}

/// Emit a structured event against the current collector (no-op when none
/// is installed):
///
/// ```
/// # use overgen_telemetry::event;
/// event!("dse.accept", iter = 4u64, delta = -0.5, preserving = true);
/// ```
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if let Some(__c) = $crate::current() {
            __c.emit(
                $kind,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Open a span; the returned guard records a `span` event when dropped.
/// Bind it — `let _span = span!("dse.iteration", iter = i);` — or the span
/// closes immediately.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::SpanGuard::enter(
            $name,
            vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_macro_emits_ordered_lines() {
        let (c, ring) = Collector::ring(64);
        let _g = install(c);
        event!("a.first", x = 1u64);
        event!("a.second", s = "hi", ok = true);
        let lines = ring.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"seq":0,"t":0,"type":"a.first","x":1}"#);
        assert_eq!(
            lines[1],
            r#"{"seq":1,"t":1,"type":"a.second","s":"hi","ok":true}"#
        );
    }

    #[test]
    fn noop_without_collector() {
        // No install: must not panic and must emit nothing anywhere.
        event!("ghost", x = 1u64);
        let _span = span!("ghost.span");
        assert!(current().is_none());
    }

    #[test]
    fn span_nesting_depths_and_order() {
        let (c, ring) = Collector::ring(64);
        let _g = install(c);
        {
            let _outer = span!("outer", tag = "o");
            {
                let _inner = span!("inner");
            }
        }
        let lines = ring.lines();
        assert_eq!(lines.len(), 2);
        // Inner closes first.
        let inner = json::parse(&lines[0]).unwrap();
        let outer = json::parse(&lines[1]).unwrap();
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(inner.get("depth").unwrap().as_u64(), Some(1));
        assert_eq!(outer.get("name").unwrap().as_str(), Some("outer"));
        assert_eq!(outer.get("depth").unwrap().as_u64(), Some(0));
        assert_eq!(outer.get("tag").unwrap().as_str(), Some("o"));
        // Outer encloses inner in logical time.
        let o_start = outer.get("start").unwrap().as_u64().unwrap();
        let i_start = inner.get("start").unwrap().as_u64().unwrap();
        assert!(o_start < i_start);
    }

    #[test]
    fn install_nests_innermost_wins() {
        let (c1, r1) = Collector::ring(8);
        let (c2, r2) = Collector::ring(8);
        let _g1 = install(c1);
        {
            let _g2 = install(c2);
            event!("to.second");
        }
        event!("to.first");
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1);
        assert!(r1.lines()[0].contains("to.first"));
        assert!(r2.lines()[0].contains("to.second"));
    }

    #[test]
    fn metrics_snapshot_event() {
        let (c, ring) = Collector::ring(8);
        c.registry().counter("n").add(5);
        c.snapshot_metrics();
        let v = json::parse(&ring.lines()[0]).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            v.get("metrics").unwrap().get("n").unwrap().as_u64(),
            Some(5)
        );
    }

    #[test]
    fn deterministic_traces_are_byte_identical() {
        let run = || {
            let (c, ring) = Collector::ring(64);
            let _g = install(c.clone());
            let mut rng = Rng::seed_from_u64(7);
            for i in 0..10u64 {
                let _s = span!("it", i = i);
                if rng.gen_bool(0.5) {
                    event!("hit", v = rng.gen_range(0..100u64));
                }
            }
            c.snapshot_metrics();
            ring.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
